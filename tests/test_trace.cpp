// The observability layer: span tracer (ring buffers, drain semantics,
// Chrome trace output, clock-offset merge) and the metrics registry
// (histogram bucket edges, snapshot merge), plus an end-to-end cluster run
// asserting the coordinator merges causally ordered worker spans.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "domain/cluster.hpp"
#include "domain/metrics.hpp"
#include "domain/simulation.hpp"
#include "util/ic.hpp"
#include "util/trace.hpp"

namespace bonsai {
namespace {

namespace metrics = bonsai::metrics;
namespace trace = bonsai::trace;

// The tracer is a process-wide singleton shared by every test in this binary:
// leave it disabled and empty on the way out.
struct TracerGuard {
  TracerGuard() {
    trace::Tracer::instance().set_enabled(true);
    trace::Tracer::instance().drain_all();
    trace::Tracer::instance().dropped();
  }
  ~TracerGuard() {
    trace::Tracer::instance().set_enabled(false);
    trace::Tracer::instance().drain_all();
    trace::Tracer::instance().dropped();
  }
};

TEST(Tracer, DisabledScopesEmitNothing) {
  trace::Tracer::instance().set_enabled(false);
  trace::Tracer::instance().drain_all();
  {
    trace::ScopedSpan span("never.recorded", 0, 0, 1);
    span.set_bytes(128);
  }
  EXPECT_TRUE(trace::Tracer::instance().drain_all().empty());
}

TEST(Tracer, NestedScopesRecordInEndOrderAndNest) {
  TracerGuard guard;
  {
    trace::ScopedSpan outer("outer", 1, 1, 3);
    trace::ScopedSpan inner("inner", 1, 1, 3);
    inner.set_peer(0);
    inner.set_bytes(64);
  }
  const std::vector<trace::Span> spans = trace::Tracer::instance().drain_thread();
  ASSERT_EQ(spans.size(), 2u);
  // Destruction order: inner ends (and records) first.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_GE(spans[0].begin_ns, spans[1].begin_ns);  // inner nests in outer
  EXPECT_LE(spans[0].end_ns, spans[1].end_ns);
  EXPECT_EQ(spans[0].peer, 0);
  EXPECT_EQ(spans[0].bytes, 64);
  EXPECT_EQ(spans[1].peer, -2);  // untouched sentinel
  EXPECT_EQ(spans[1].bytes, -1);
  EXPECT_EQ(spans[1].rank, 1);
  EXPECT_EQ(spans[1].step, 3);
}

TEST(Tracer, ConcurrentLanesKeepPerLaneOrderAndLoseNothing) {
  TracerGuard guard;
  constexpr int kLanes = 8;
  constexpr int kPerLane = 500;
  std::vector<std::thread> lanes;
  for (int lane = 0; lane < kLanes; ++lane)
    lanes.emplace_back([lane] {
      for (int i = 0; i < kPerLane; ++i) {
        trace::ScopedSpan span("lane.unit", lane, lane, i);
        (void)span;
      }
    });
  for (std::thread& t : lanes) t.join();

  const std::vector<trace::Span> spans = trace::Tracer::instance().drain_all();
  ASSERT_EQ(spans.size(), static_cast<std::size_t>(kLanes * kPerLane));
  EXPECT_EQ(trace::Tracer::instance().dropped(), 0u);
  // Per lane: all steps present, in recording order, with begin <= end.
  for (int lane = 0; lane < kLanes; ++lane) {
    std::int64_t expect_step = 0;
    for (const trace::Span& s : spans) {
      if (s.lane != lane) continue;
      EXPECT_EQ(s.step, expect_step++);
      EXPECT_LE(s.begin_ns, s.end_ns);
    }
    EXPECT_EQ(expect_step, kPerLane);
  }
}

TEST(Tracer, RingOverflowDropsOldestAndCounts) {
  TracerGuard guard;
  constexpr std::uint64_t kExtra = 100;
  const std::size_t total = trace::Tracer::kRingCapacity + kExtra;
  trace::RawSpan raw;
  raw.name = "overflow.unit";
  for (std::size_t i = 0; i < total; ++i) {
    raw.step = static_cast<std::int64_t>(i);
    trace::Tracer::instance().emit(raw);
  }
  const std::vector<trace::Span> spans = trace::Tracer::instance().drain_thread();
  ASSERT_EQ(spans.size(), trace::Tracer::kRingCapacity);
  // Oldest kExtra spans were overwritten; order is preserved.
  EXPECT_EQ(spans.front().step, static_cast<std::int64_t>(kExtra));
  EXPECT_EQ(spans.back().step, static_cast<std::int64_t>(total - 1));
  EXPECT_EQ(trace::Tracer::instance().dropped(), kExtra);
  EXPECT_EQ(trace::Tracer::instance().dropped(), 0u);  // counter resets
}

TEST(Metrics, HistogramBucketBoundaries) {
  metrics::Registry reg;
  const std::vector<double> bounds = {1.0, 2.0, 4.0};
  // counts[i] counts value <= bounds[i]; a value exactly on a bound lands in
  // that bucket, anything past the last bound overflows.
  reg.observe("h", bounds, 1.0);
  reg.observe("h", bounds, 1.5);
  reg.observe("h", bounds, 2.0);
  reg.observe("h", bounds, 4.0);
  reg.observe("h", bounds, 4.0001);
  reg.observe("h", bounds, 0.0);
  const metrics::Snapshot snap = reg.snapshot();
  const metrics::HistogramData& h = snap.histograms.at("h");
  ASSERT_EQ(h.bounds, bounds);
  ASSERT_EQ(h.counts.size(), 4u);
  EXPECT_EQ(h.counts[0], 2u);  // 0.0, 1.0
  EXPECT_EQ(h.counts[1], 2u);  // 1.5, 2.0
  EXPECT_EQ(h.counts[2], 1u);  // 4.0
  EXPECT_EQ(h.counts[3], 1u);  // 4.0001 overflow
  EXPECT_EQ(h.count, 6u);
  EXPECT_DOUBLE_EQ(h.sum, 1.0 + 1.5 + 2.0 + 4.0 + 4.0001 + 0.0);
}

TEST(Metrics, Pow2BoundsSpanTheRequestedExponents) {
  const std::vector<double> b = metrics::pow2_bounds(4, 7);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 16.0);
  EXPECT_EQ(b[1], 32.0);
  EXPECT_EQ(b[2], 64.0);
  EXPECT_EQ(b[3], 128.0);
}

TEST(Metrics, MergeSumsCountersAndHistogramsGaugesTakeLatest) {
  metrics::Snapshot a, b;
  a.counters["c"] = 2.0;
  a.counters["only_a"] = 1.0;
  a.gauges["g"] = 10.0;
  a.histograms["h"] = {{1.0, 2.0}, {1, 0, 1}, 2, 3.0};
  b.counters["c"] = 3.0;
  b.gauges["g"] = 20.0;
  b.gauges["only_b"] = 5.0;
  b.histograms["h"] = {{1.0, 2.0}, {0, 2, 0}, 2, 3.5};
  metrics::merge(a, b);
  EXPECT_EQ(a.counters.at("c"), 5.0);
  EXPECT_EQ(a.counters.at("only_a"), 1.0);
  EXPECT_EQ(a.gauges.at("g"), 20.0);  // from wins
  EXPECT_EQ(a.gauges.at("only_b"), 5.0);
  const metrics::HistogramData& h = a.histograms.at("h");
  EXPECT_EQ(h.counts, (std::vector<std::uint64_t>{1, 2, 1}));
  EXPECT_EQ(h.count, 4u);
  EXPECT_DOUBLE_EQ(h.sum, 6.5);

  metrics::Snapshot bad;
  bad.histograms["h"] = {{1.0, 3.0}, {0, 0, 0}, 0, 0.0};
  EXPECT_THROW(metrics::merge(a, bad), std::runtime_error);
}

TEST(Trace, ChromeJsonIsWellFormedAndEscaped) {
  std::vector<trace::Span> spans(2);
  spans[0].name = "weird\"name\\with\nnewline";
  spans[0].begin_ns = 1500;       // 1.500 us
  spans[0].end_ns = 4750;         // dur 3.250 us
  spans[0].rank = -1;             // coordinator -> pid 0
  spans[0].lane = -1;             // driver thread -> tid 0
  spans[1].name = "gravity.remote";
  spans[1].begin_ns = 2000;
  spans[1].end_ns = 3000;
  spans[1].rank = 2;
  spans[1].lane = 2;
  spans[1].step = 4;
  spans[1].peer = -1;             // a real peer: the coordinator
  spans[1].bytes = 4096;

  std::ostringstream os;
  trace::write_chrome_trace(os, spans, {{-1, "coordinator"}, {2, "rank 2"}});
  const std::string json = os.str();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
  EXPECT_NE(json.find("\\\"name\\\\with\\n"), std::string::npos);   // escaping
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);          // metadata
  EXPECT_NE(json.find("\"ts\":1.500,\"dur\":3.250,\"pid\":0,\"tid\":0"),
            std::string::npos);
  EXPECT_NE(json.find("\"pid\":3,\"tid\":2"), std::string::npos);   // rank 2
  EXPECT_NE(json.find("\"step\":4,\"peer\":-1,\"bytes\":4096"), std::string::npos);
  // Balanced braces/brackets (no raw quotes leak from the weird name).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Trace, ClockOffsetMergeRestoresCausalOrder) {
  // Two fake workers whose steady clocks are wildly skewed against the
  // coordinator's: A runs 5 s ahead, B 3 s behind. True (coordinator-clock)
  // timeline: StepBegin posted at 1 ms; A exports a LET over [2 ms, 3 ms];
  // B's matching remote-gravity runs [3.5 ms, 4.5 ms]; both send their trace
  // frames at 5 ms, arriving 10 us later. Raw local timestamps order the two
  // spans backwards; the NTP-style shift must restore causality exactly
  // (symmetric delays).
  constexpr std::int64_t kSkewA = 5'000'000'000;
  constexpr std::int64_t kSkewB = -3'000'000'000;
  constexpr std::int64_t kFlight = 10'000;

  auto sync_for = [](std::int64_t skew) {
    trace::ClockSync s;
    s.coord_post_ns = 1'000'000;
    s.worker_recv_ns = 1'000'000 + kFlight + skew;
    s.worker_send_ns = 5'000'000 + skew;
    s.coord_arrive_ns = 5'000'000 + kFlight;
    return s;
  };
  const std::int64_t off_a = trace::estimate_clock_offset(sync_for(kSkewA));
  const std::int64_t off_b = trace::estimate_clock_offset(sync_for(kSkewB));
  EXPECT_EQ(off_a, -kSkewA);
  EXPECT_EQ(off_b, -kSkewB);

  std::vector<trace::Span> a_spans(1), b_spans(1);
  a_spans[0].name = "let.export";
  a_spans[0].begin_ns = 2'000'000 + kSkewA;
  a_spans[0].end_ns = 3'000'000 + kSkewA;
  a_spans[0].rank = 0;
  a_spans[0].peer = 1;
  b_spans[0].name = "gravity.remote";
  b_spans[0].begin_ns = 3'500'000 + kSkewB;
  b_spans[0].end_ns = 4'500'000 + kSkewB;
  b_spans[0].rank = 1;
  b_spans[0].peer = 0;

  // Unshifted, the import appears to *precede* the export by seconds.
  ASSERT_LT(b_spans[0].end_ns, a_spans[0].begin_ns);

  trace::shift_spans(a_spans, off_a);
  trace::shift_spans(b_spans, off_b);
  EXPECT_EQ(a_spans[0].begin_ns, 2'000'000);
  EXPECT_EQ(a_spans[0].end_ns, 3'000'000);
  EXPECT_EQ(b_spans[0].begin_ns, 3'500'000);
  // The merged timeline is causal again: the LET left A before B consumed it.
  EXPECT_LT(a_spans[0].end_ns, b_spans[0].begin_ns);
}

// End-to-end: a 2-rank SPMD mesh cluster with in-process workers (the
// on_listen seam) traces a step; the coordinator's merged report must carry
// remote-gravity spans from every rank, causally ordered against the peer's
// LET export even after the per-worker clock shifts.
TEST(ClusterTrace, MergedSpansCoverEveryRankAndStayCausal) {
  struct WorkerPool {
    std::vector<std::thread> threads;
    ~WorkerPool() {
      for (std::thread& t : threads)
        if (t.joinable()) t.join();
    }
  };
  WorkerPool pool;

  domain::SimConfig sim;
  sim.nranks = 2;
  sim.theta = 0.4;
  sim.eps = 1e-3;
  sim.dt = 0.0;
  sim.trace = true;

  domain::ClusterConfig cfg;
  cfg.sim = sim;
  cfg.mode = domain::ClusterMode::kSpmd;
  cfg.topology = domain::SocketTopology::kMesh;
  cfg.spawn_workers = false;
  cfg.on_listen = [&pool](std::uint16_t port) {
    for (int r = 0; r < 2; ++r)
      pool.threads.emplace_back([port, r] {
        try {
          domain::run_worker("127.0.0.1", port, r, /*threads=*/1,
                             domain::SocketTopology::kMesh, /*listen_port=*/0);
        } catch (...) {
          // Teardown races surface as socket errors inside the worker.
        }
      });
  };

  domain::StepReport rep;
  {
    domain::ClusterSimulation cluster(cfg);
    cluster.init(make_plummer(1024, 17));
    rep = cluster.step();
  }
  trace::Tracer::instance().set_enabled(false);
  trace::Tracer::instance().drain_all();

  ASSERT_FALSE(rep.spans.empty());
  for (int r = 0; r < 2; ++r) {
    const int peer = 1 - r;
    const auto remote = std::find_if(
        rep.spans.begin(), rep.spans.end(), [&](const trace::Span& s) {
          return s.name == "gravity.remote" && s.rank == r && s.peer == peer;
        });
    ASSERT_NE(remote, rep.spans.end()) << "no remote-gravity span on rank " << r;
    // The peer's matching LET export must have begun before this import
    // finished decoding + walking (it produced the frame being consumed).
    const auto exported = std::find_if(
        rep.spans.begin(), rep.spans.end(), [&](const trace::Span& s) {
          return s.name == "let.export" && s.rank == peer && s.peer == r;
        });
    ASSERT_NE(exported, rep.spans.end()) << "no LET export span on rank " << peer;
    EXPECT_LT(exported->begin_ns, remote->end_ns);
    // And both workers' step envelopes made it into the merge.
    EXPECT_NE(std::find_if(rep.spans.begin(), rep.spans.end(),
                           [&](const trace::Span& s) {
                             return s.name == "worker.step" && s.rank == r;
                           }),
              rep.spans.end());
  }
  // The coordinator's own driver spans are on the merged timeline too.
  EXPECT_NE(std::find_if(rep.spans.begin(), rep.spans.end(),
                         [](const trace::Span& s) { return s.rank == -1; }),
            rep.spans.end());
  // Metrics mirror the legacy aggregates exactly.
  ASSERT_FALSE(rep.metrics.counters.empty());
  double posted = 0.0;
  for (const auto& [name, value] : rep.metrics.counters)
    if (name.rfind("transport.post.bytes{", 0) == 0) posted += value;
  double legacy = 0.0;
  for (const auto& t : rep.traffic) legacy += static_cast<double>(t.bytes);
  EXPECT_DOUBLE_EQ(posted, legacy);
}

}  // namespace
}  // namespace bonsai
