// Job-server subsystem: snapshot files round-trip bit-for-bit, admission
// control rejects with the limit's name, the rank-pool scheduler runs jobs
// concurrently and preempts by priority, a preempted-and-resumed job ends
// bit-for-bit identical to an uninterrupted run, and per-job metrics/bench
// outputs never mix jobs.
#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "domain/simulation.hpp"
#include "serve/client.hpp"
#include "serve/net.hpp"
#include "serve/server.hpp"
#include "serve/snapshot.hpp"
#include "util/ic.hpp"

namespace bonsai {
namespace {

namespace wire = domain::wire;
using serve::JobServer;
using serve::ServerConfig;

constexpr const char* kHost = "127.0.0.1";

// The deterministic job config the server runs: lockstep, one thread per
// rank, count balancing (the bit-for-bit resume contract).
domain::SimConfig job_sim_config(int ranks, const wire::JobSpec& spec) {
  domain::SimConfig cfg;
  cfg.nranks = ranks;
  cfg.theta = spec.theta;
  cfg.eps = spec.eps;
  cfg.dt = spec.dt;
  cfg.kernel = spec.kernel;
  cfg.async = false;
  cfg.threads_per_rank = 1;
  cfg.balance = domain::BalanceMode::kCount;
  return cfg;
}

ServerConfig test_server_config(const std::string& tag) {
  ServerConfig cfg;
  cfg.port = 0;
  cfg.spool_dir = testing::TempDir() + "bonsai-serve-" + tag;
  return cfg;
}

wire::JobSpec small_job(std::uint64_t n, std::int32_t steps) {
  wire::JobSpec spec;
  spec.n = n;
  spec.seed = 42;
  spec.steps = steps;
  spec.theta = 0.5;
  spec.dt = 1e-3;
  return spec;
}

// Poll a job until `pred` holds or the deadline passes; returns last status.
template <typename Pred>
wire::JobStatusMsg poll_until(std::uint16_t port, std::int32_t id, Pred pred,
                              int timeout_ms = 30000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  wire::JobStatusMsg st;
  while (std::chrono::steady_clock::now() < deadline) {
    st = serve::job_status(kHost, port, id);
    if (pred(st)) return st;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return st;
}

void expect_same_particles(const ParticleSet& a, const ParticleSet& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.x, b.x);  // bit-for-bit doubles throughout
  EXPECT_EQ(a.y, b.y);
  EXPECT_EQ(a.z, b.z);
  EXPECT_EQ(a.vx, b.vx);
  EXPECT_EQ(a.vy, b.vy);
  EXPECT_EQ(a.vz, b.vz);
  EXPECT_EQ(a.ax, b.ax);
  EXPECT_EQ(a.ay, b.ay);
  EXPECT_EQ(a.az, b.az);
  EXPECT_EQ(a.pot, b.pot);
}

// Regression for a TSan finding: server shutdown calls Listener::close()
// from outside the accept loop's thread, so the descriptor handover must be
// synchronized — close() must unblock a concurrent blocking accept() (which
// then reports end-of-serving), never race on the fd.
TEST(Listener, CloseFromAnotherThreadUnblocksAccept) {
  serve::Listener listener(0);
  ASSERT_GT(listener.port(), 0);
  std::optional<serve::FrameSocket> accepted;
  std::thread acceptor([&] { accepted = listener.accept(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // park in accept
  listener.close();
  acceptor.join();
  EXPECT_FALSE(accepted.has_value());
  EXPECT_NO_THROW(listener.close());  // idempotent after handover
}

TEST(Snapshot, FileRoundTripsCheckpointBitForBit) {
  domain::SimConfig cfg;
  cfg.nranks = 3;
  cfg.async = false;
  cfg.threads_per_rank = 1;
  cfg.dt = 1e-3;
  domain::Simulation sim(cfg);
  sim.init(make_plummer(1024, 5));
  sim.step();
  sim.step();

  wire::SnapshotMsg snap;
  snap.job_id = 7;
  snap.next_step = sim.next_step();
  snap.sets = sim.checkpoint_sets();

  const std::string path = testing::TempDir() + "bonsai-ckpt-roundtrip.snap";
  serve::write_snapshot_file(path, snap);
  const wire::SnapshotMsg back = serve::read_snapshot_file(path);
  EXPECT_EQ(back.job_id, 7);
  EXPECT_EQ(back.next_step, 2);
  ASSERT_EQ(back.sets.size(), 3u);
  for (std::size_t r = 0; r < 3; ++r) {
    expect_same_particles(back.sets[r], snap.sets[r]);
    EXPECT_EQ(back.sets[r].key, snap.sets[r].key);
  }

  // Restoring the file into a fresh Simulation continues bit-for-bit with
  // the original (same config, lockstep/1-thread/count).
  domain::Simulation restored(cfg);
  restored.restore(back.sets, back.next_step);
  sim.step();
  restored.step();
  expect_same_particles(restored.gather(), sim.gather());

  EXPECT_THROW(serve::read_snapshot_file(path + ".missing"), std::runtime_error);
}

TEST(Snapshot, FlattenConcatenatesRankSetsInOrder) {
  wire::SnapshotMsg snap;
  snap.sets.resize(2);
  snap.sets[0] = make_plummer(10, 1);
  snap.sets[1] = make_plummer(6, 2);
  snap.sets[1].ax[0] = 3.5;
  snap.sets[1].key[0] = 77;
  const ParticleSet flat = serve::flatten_snapshot(snap);
  ASSERT_EQ(flat.size(), 16u);
  EXPECT_EQ(flat.x[0], snap.sets[0].x[0]);
  EXPECT_EQ(flat.x[10], snap.sets[1].x[0]);
  EXPECT_EQ(flat.ax[10], 3.5);  // forces and keys survive the flatten
  EXPECT_EQ(flat.key[10], 77u);
}

TEST(Serve, WithJobLabelExtendsExistingLabelSets) {
  EXPECT_EQ(serve::with_job_label("step.elapsed_s", 3), "step.elapsed_s{job=3}");
  EXPECT_EQ(serve::with_job_label("wire.let.bytes{rank=2}", 14),
            "wire.let.bytes{rank=2,job=14}");
}

TEST(Serve, ServerRunsTwoJobsConcurrently) {
  ServerConfig cfg = test_server_config("concurrent");
  cfg.limits.pool_slots = 2;
  JobServer server(cfg);

  // Explicit one-slot jobs: a lone auto-sized job would take the whole pool
  // (its share of resident particles is 1.0 at submit time).
  wire::JobSpec spec = small_job(2048, 8);
  spec.ranks = 1;
  const auto j1 = serve::submit_job(kHost, server.port(), spec);
  const auto j2 = serve::submit_job(kHost, server.port(), spec);
  ASSERT_NE(j1.state, wire::JobState::kRejected) << j1.reason;
  ASSERT_NE(j2.state, wire::JobState::kRejected) << j2.reason;
  ASSERT_NE(j1.job_id, j2.job_id);

  // Both must hold a slot at once: poll until both report kRunning in the
  // same sweep.
  bool both_running = false;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!both_running && std::chrono::steady_clock::now() < deadline) {
    const auto s1 = serve::job_status(kHost, server.port(), j1.job_id);
    const auto s2 = serve::job_status(kHost, server.port(), j2.job_id);
    if (s1.state == wire::JobState::kCompleted || s2.state == wire::JobState::kCompleted)
      break;  // too fast to observe overlap — the wait asserts below still run
    both_running = s1.state == wire::JobState::kRunning &&
                   s2.state == wire::JobState::kRunning;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(both_running) << "jobs never overlapped on the pool";

  const auto r1 = serve::wait_job(kHost, server.port(), j1.job_id);
  const auto r2 = serve::wait_job(kHost, server.port(), j2.job_id);
  EXPECT_EQ(r1.state, wire::JobState::kCompleted);
  EXPECT_EQ(r2.state, wire::JobState::kCompleted);
  EXPECT_EQ(r1.steps_done, 8);
  EXPECT_EQ(r1.parts.size(), 2048u);
  EXPECT_EQ(r2.parts.size(), 2048u);
  EXPECT_LT(r1.potential, 0.0);
}

TEST(Serve, AdmissionRejectsNamingTheViolatedLimit) {
  {
    ServerConfig cfg = test_server_config("admit-jobs");
    cfg.limits.pool_slots = 1;
    cfg.limits.max_concurrent_jobs = 1;
    JobServer server(cfg);
    const auto ok = serve::submit_job(kHost, server.port(), small_job(2048, 50));
    ASSERT_NE(ok.state, wire::JobState::kRejected) << ok.reason;
    const auto rej = serve::submit_job(kHost, server.port(), small_job(2048, 1));
    EXPECT_EQ(rej.state, wire::JobState::kRejected);
    EXPECT_NE(rej.reason.find("max_concurrent_jobs=1"), std::string::npos) << rej.reason;
    serve::cancel_job(kHost, server.port(), ok.job_id);
    serve::wait_job(kHost, server.port(), ok.job_id);
  }
  {
    ServerConfig cfg = test_server_config("admit-parts");
    cfg.limits.pool_slots = 1;
    cfg.limits.max_resident_particles = 1000;
    JobServer server(cfg);
    const auto rej = serve::submit_job(kHost, server.port(), small_job(2000, 1));
    EXPECT_EQ(rej.state, wire::JobState::kRejected);
    EXPECT_NE(rej.reason.find("max_resident_particles=1000"), std::string::npos)
        << rej.reason;
    // A fitting job is still admitted afterwards.
    const auto ok = serve::submit_job(kHost, server.port(), small_job(512, 1));
    EXPECT_NE(ok.state, wire::JobState::kRejected) << ok.reason;
    EXPECT_EQ(serve::wait_job(kHost, server.port(), ok.job_id).state,
              wire::JobState::kCompleted);
  }
}

TEST(Serve, CancelQueuedAndRunningJobs) {
  ServerConfig cfg = test_server_config("cancel");
  cfg.limits.pool_slots = 1;
  JobServer server(cfg);

  const auto running = serve::submit_job(kHost, server.port(), small_job(4096, 100));
  const auto queued = serve::submit_job(kHost, server.port(), small_job(4096, 100));
  ASSERT_NE(running.state, wire::JobState::kRejected) << running.reason;
  ASSERT_EQ(queued.state, wire::JobState::kQueued);  // pool of 1 is taken
  poll_until(server.port(), running.job_id,
             [](const wire::JobStatusMsg& s) { return s.state == wire::JobState::kRunning; });

  // The queued job holds no slots: cancellation is immediate.
  const auto c2 = serve::cancel_job(kHost, server.port(), queued.job_id);
  EXPECT_EQ(c2.state, wire::JobState::kCancelled);

  // The running job cancels at its next step boundary.
  serve::cancel_job(kHost, server.port(), running.job_id);
  const auto r1 = serve::wait_job(kHost, server.port(), running.job_id);
  EXPECT_EQ(r1.state, wire::JobState::kCancelled);
  EXPECT_LT(r1.steps_done, 100);

  const auto metrics = serve::fetch_metrics(kHost, server.port());
  EXPECT_EQ(metrics.counters.at("server.jobs.cancelled"), 2.0);

  // Cancelling an unknown id is a clean rejection, not a hang.
  EXPECT_EQ(serve::cancel_job(kHost, server.port(), 999).state,
            wire::JobState::kRejected);
}

TEST(Serve, PreemptedJobResumesBitForBitWithUninterruptedRun) {
  ServerConfig cfg = test_server_config("preempt");
  cfg.limits.pool_slots = 2;
  JobServer server(cfg);

  // Low-priority job holding the whole pool.
  wire::JobSpec low = small_job(3000, 8);
  low.ranks = 2;
  low.priority = 0;
  const auto j1 = serve::submit_job(kHost, server.port(), low);
  ASSERT_NE(j1.state, wire::JobState::kRejected) << j1.reason;
  poll_until(server.port(), j1.job_id, [](const wire::JobStatusMsg& s) {
    return s.state == wire::JobState::kRunning && s.steps_done >= 1;
  });

  // A higher-priority job that cannot fit forces a checkpoint-suspend.
  wire::JobSpec high = small_job(2048, 2);
  high.ranks = 2;
  high.priority = 5;
  const auto j2 = serve::submit_job(kHost, server.port(), high);
  ASSERT_EQ(j2.state, wire::JobState::kQueued);  // pool is full until the preempt

  const auto r2 = serve::wait_job(kHost, server.port(), j2.job_id);
  EXPECT_EQ(r2.state, wire::JobState::kCompleted);
  const auto r1 = serve::wait_job(kHost, server.port(), j1.job_id);
  ASSERT_EQ(r1.state, wire::JobState::kCompleted);
  EXPECT_EQ(r1.steps_done, 8);

  const auto metrics = serve::fetch_metrics(kHost, server.port());
  ASSERT_TRUE(metrics.counters.count("server.jobs.preempted"))
      << "high-priority job never forced a suspend";
  EXPECT_GE(metrics.counters.at("server.jobs.preempted"), 1.0);
  EXPECT_GE(metrics.counters.at("server.jobs.resumed"), 1.0);

  // Reference: the same job uninterrupted, in-process, same deterministic
  // config. The preempt/resume cycle must not change a single bit.
  domain::Simulation ref(job_sim_config(2, low));
  ref.init(make_plummer(low.n, low.seed));
  for (int s = 0; s < low.steps; ++s) ref.step();
  expect_same_particles(r1.parts, ref.gather());
}

TEST(Serve, SnapshotOfRunningJobAndMetricsIsolation) {
  ServerConfig cfg = test_server_config("isolate");
  cfg.limits.pool_slots = 2;
  cfg.bench_dir = testing::TempDir() + "bonsai-serve-isolate-bench";
  JobServer server(cfg);

  wire::JobSpec a = small_job(1024, 4);
  wire::JobSpec b = small_job(2048, 4);
  a.ranks = 1;
  b.ranks = 1;
  const auto ja = serve::submit_job(kHost, server.port(), a);
  const auto jb = serve::submit_job(kHost, server.port(), b);

  const auto ra = serve::wait_job(kHost, server.port(), ja.job_id);
  const auto rb = serve::wait_job(kHost, server.port(), jb.job_id);
  ASSERT_EQ(ra.state, wire::JobState::kCompleted);
  ASSERT_EQ(rb.state, wire::JobState::kCompleted);

  // A completed job's snapshot is its result as one set.
  const wire::SnapshotMsg snap = serve::fetch_snapshot(kHost, server.port(), ja.job_id);
  ASSERT_EQ(snap.sets.size(), 1u);
  expect_same_particles(snap.sets[0], ra.parts);

  // Metric isolation: each job's gauge carries its own n and nothing else's.
  const auto metrics = serve::fetch_metrics(kHost, server.port());
  const std::string ga = serve::with_job_label("job.num_particles", ja.job_id);
  const std::string gb = serve::with_job_label("job.num_particles", jb.job_id);
  ASSERT_TRUE(metrics.gauges.count(ga));
  ASSERT_TRUE(metrics.gauges.count(gb));
  EXPECT_EQ(metrics.gauges.at(ga), 1024.0);
  EXPECT_EQ(metrics.gauges.at(gb), 2048.0);
  const std::string la = "job=" + std::to_string(ja.job_id);
  const std::string lb = "job=" + std::to_string(jb.job_id);
  for (const auto& [name, v] : metrics.counters) {
    if (name.rfind("server.", 0) == 0) continue;  // server-level counters
    EXPECT_TRUE(name.find(la) != std::string::npos || name.find(lb) != std::string::npos)
        << "unlabeled job metric leaked: " << name;
  }

  // Bench isolation: each job's JSON names its own config, 4 steps each.
  const std::vector<std::pair<int, int>> expect = {{ja.job_id, 1024}, {jb.job_id, 2048}};
  for (const auto& [id, n] : expect) {
    std::ifstream in(cfg.bench_dir + "/job-" + std::to_string(id) + ".json");
    ASSERT_TRUE(in.good()) << "missing bench for job " << id;
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string body = ss.str();
    EXPECT_NE(body.find("\"num_particles\": " + std::to_string(n)), std::string::npos);
    EXPECT_NE(body.find("\"transport\": \"serve\""), std::string::npos);
    EXPECT_EQ(body.find("\"num_particles\": " + std::to_string(n == 1024 ? 2048 : 1024)),
              std::string::npos)
        << "cross-job data in bench for job " << id;
  }
}

}  // namespace
}  // namespace bonsai
