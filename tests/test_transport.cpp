// Transport conformance suite: one parameterized contract check run
// identically over every Transport backend (InProcTransport plus the star
// and mesh SocketTransport topologies today), so the next backend (MPI) has
// a ready-made acceptance test. The contract under test is what channel.*
// and the exchanges are written against:
//
//   * post() is nonblocking and frames are delivered to `dst` intact;
//   * per (src, dst) pair, frames arrive in post order (FIFO);
//   * frames from concurrent posters all arrive, each source's order kept;
//   * large frames survive byte-for-byte;
//   * close() on a local endpoint lets pending frames drain, then recv()
//     returns nullopt instead of blocking (fail fast, never hang).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "domain/transport.hpp"
#include "domain/wire.hpp"

namespace bonsai {
namespace {

namespace wire = domain::wire;

constexpr int kRanks = 3;

// A transport endpoint set under test: at(r) returns the Transport object
// that owns local endpoint r (one shared object in-process, one per worker
// over sockets — exactly how production code holds them).
class Harness {
 public:
  virtual ~Harness() = default;
  virtual domain::Transport& at(int rank) = 0;
};

class InProcHarness final : public Harness {
 public:
  InProcHarness() : t_(kRanks) {}
  domain::Transport& at(int) override { return t_; }

 private:
  domain::InProcTransport t_;
};

class SocketHarness final : public Harness {
 public:
  explicit SocketHarness(domain::SocketTopology topology) {
    coord_ = domain::SocketTransport::listen(0, kRanks, topology);
    std::vector<std::thread> connectors;
    workers_.resize(kRanks);
    for (int r = 0; r < kRanks; ++r)
      connectors.emplace_back([this, r, topology] {
        auto& slot = workers_[static_cast<std::size_t>(r)];
        if (topology == domain::SocketTopology::kMesh) {
          slot = domain::SocketTransport::connect_mesh("127.0.0.1", coord_->port(), r,
                                                       /*listen_port=*/0);
          slot->mesh_with_peers(/*timeout_ms=*/30000);
        } else {
          slot = domain::SocketTransport::connect("127.0.0.1", coord_->port(), r);
        }
      });
    coord_->accept_workers(/*timeout_ms=*/30000);
    for (std::thread& t : connectors) t.join();
  }

  domain::Transport& at(int rank) override {
    return *workers_[static_cast<std::size_t>(rank)];
  }

  domain::SocketTransport& coordinator() { return *coord_; }
  domain::SocketTransport& worker(int rank) {
    return *workers_[static_cast<std::size_t>(rank)];
  }
  void kill_worker(int rank) { workers_[static_cast<std::size_t>(rank)].reset(); }

 private:
  std::unique_ptr<domain::SocketTransport> coord_;  // alive to route frames
  std::vector<std::unique_ptr<domain::SocketTransport>> workers_;
};

enum class Backend { kInProc, kSocketStar, kSocketMesh };

std::unique_ptr<Harness> make_harness(Backend b) {
  if (b == Backend::kInProc) return std::make_unique<InProcHarness>();
  return std::make_unique<SocketHarness>(b == Backend::kSocketMesh
                                             ? domain::SocketTopology::kMesh
                                             : domain::SocketTopology::kStar);
}

class TransportConformance : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override { h_ = make_harness(GetParam()); }
  std::unique_ptr<Harness> h_;
};

// Payload helper: a valid wire frame carrying a recognizable value, so the
// socket path (which routes on its own header, not the payload) and the
// in-process path move identical bytes.
std::vector<std::uint8_t> tagged(int value) { return wire::encode_hello(value); }

int tag_of(const std::vector<std::uint8_t>& frame) { return wire::decode_hello(frame).rank; }

TEST_P(TransportConformance, FifoPerSourceDestinationPair) {
  for (int i = 0; i < 64; ++i) h_->at(0).post(0, 1, tagged(i));
  for (int i = 0; i < 64; ++i) {
    auto frame = h_->at(1).recv(1);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(tag_of(*frame), i);
  }
}

TEST_P(TransportConformance, InterleavedSourcesKeepPerSourceOrder) {
  // Two sources, one destination: global arrival order is unspecified, but
  // each source's sequence must stay monotone and nothing may be lost.
  constexpr int kPerSource = 50;
  for (int i = 0; i < kPerSource; ++i) {
    h_->at(0).post(0, 2, tagged(i));
    h_->at(1).post(1, 2, tagged(1000 + i));
  }
  int next0 = 0, next1 = 1000;
  for (int i = 0; i < 2 * kPerSource; ++i) {
    auto frame = h_->at(2).recv(2);
    ASSERT_TRUE(frame.has_value());
    const int tag = tag_of(*frame);
    if (tag < 1000) {
      EXPECT_EQ(tag, next0++);
    } else {
      EXPECT_EQ(tag, next1++);
    }
  }
  EXPECT_EQ(next0, kPerSource);
  EXPECT_EQ(next1, 1000 + kPerSource);
}

TEST_P(TransportConformance, ConcurrentPostersAllDeliver) {
  // Concurrent posting threads per source rank; the consumer must see every
  // frame exactly once with per-source order preserved.
  constexpr int kPerSource = 200;
  std::vector<std::thread> posters;
  for (int src : {0, 1}) {
    posters.emplace_back([this, src] {
      for (int i = 0; i < kPerSource; ++i)
        h_->at(src).post(src, 2, tagged(src * 10000 + i));
    });
  }
  std::vector<int> next = {0, 10000};
  for (int i = 0; i < 2 * kPerSource; ++i) {
    auto frame = h_->at(2).recv(2);
    ASSERT_TRUE(frame.has_value());
    const int tag = tag_of(*frame);
    const std::size_t src = tag < 10000 ? 0 : 1;
    EXPECT_EQ(tag, next[src]++);
  }
  for (std::thread& t : posters) t.join();
  EXPECT_EQ(next[0], kPerSource);
  EXPECT_EQ(next[1], 10000 + kPerSource);
}

TEST_P(TransportConformance, LargeFramesArriveIntact) {
  // A multi-megabyte frame (a dense LET or migration burst) must cross the
  // backend byte-for-byte; write a full header so traffic recorders can
  // parse it, then fill the payload with a position-dependent pattern.
  constexpr std::size_t kPayload = 4u << 20;
  std::vector<std::uint8_t> frame = wire::encode_hello(7);
  frame.resize(wire::kHeaderBytes + kPayload);
  for (std::size_t i = wire::kHeaderBytes; i < frame.size(); ++i)
    frame[i] = static_cast<std::uint8_t>((i * 131) >> 3);
  const std::vector<std::uint8_t> sent = frame;
  h_->at(0).post(0, 1, std::move(frame));
  auto got = h_->at(1).recv(1);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, sent);
}

TEST_P(TransportConformance, CloseFailsFastInsteadOfBlocking) {
  // Deliver (and drain) a frame first so the backend is demonstrably live,
  // then close the local endpoint: recv() must report completion instead of
  // blocking forever — the failure paths rely on exactly this.
  h_->at(0).post(0, 1, tagged(11));
  auto a = h_->at(1).recv(1);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(tag_of(*a), 11);
  h_->at(1).close(1);
  EXPECT_FALSE(h_->at(1).recv(1).has_value());
  EXPECT_FALSE(h_->at(1).recv(1).has_value());  // idempotent
}

TEST(InProcTransport, PendingFramesStayReceivableAfterClose) {
  // The drain-then-complete half of the close contract, checked where frame
  // arrival is synchronous with post() and therefore deterministic.
  domain::InProcTransport t(2);
  t.post(0, 1, tagged(11));
  t.post(0, 1, tagged(22));
  t.close(1);
  auto a = t.recv(1);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(tag_of(*a), 11);
  auto b = t.recv(1);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(tag_of(*b), 22);
  EXPECT_FALSE(t.recv(1).has_value());
}

INSTANTIATE_TEST_SUITE_P(Backends, TransportConformance,
                         ::testing::Values(Backend::kInProc, Backend::kSocketStar,
                                           Backend::kSocketMesh),
                         [](const ::testing::TestParamInfo<Backend>& pinfo) {
                           switch (pinfo.param) {
                             case Backend::kInProc: return "InProc";
                             case Backend::kSocketStar: return "SocketStar";
                             default: return "SocketMesh";
                           }
                         });

// The recorder decorator is transport-agnostic; spot-check it over the
// in-process backend (every backend sees the same frames by construction).
TEST(TrafficRecordingTransport, RecordsPerPeerPerType) {
  domain::InProcTransport inner(2);
  domain::TrafficRecordingTransport rec(inner);
  rec.post(0, 1, wire::encode_hello(1));
  rec.post(0, 1, wire::encode_hello(2));
  rec.post(1, 0, wire::encode_shutdown());
  rec.record(1, -1, static_cast<std::uint16_t>(wire::FrameType::kStepResult), 64);

  const std::vector<wire::PeerTraffic> t = rec.take();
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0].src, 0);
  EXPECT_EQ(t[0].dst, 1);
  EXPECT_EQ(t[0].type, static_cast<std::uint16_t>(wire::FrameType::kHello));
  EXPECT_EQ(t[0].frames, 2u);
  EXPECT_EQ(t[0].bytes, 2 * wire::encode_hello(1).size());
  EXPECT_EQ(t[1].src, 1);
  EXPECT_EQ(t[1].dst, -1);
  EXPECT_EQ(t[1].frames, 1u);
  EXPECT_EQ(t[2].type, static_cast<std::uint16_t>(wire::FrameType::kShutdown));
  EXPECT_TRUE(rec.take().empty());  // drained

  // Frames pass through unmodified.
  EXPECT_EQ(wire::decode_hello(*inner.recv(1)).rank, 1);
  EXPECT_EQ(wire::decode_hello(*inner.recv(1)).rank, 2);
}

// --- Socket failure paths ----------------------------------------------------

TEST(SocketTransport, MeshKeepsPeerFramesOffTheCoordinator) {
  // The point of the topology: worker↔worker frames ride the pair sockets,
  // so the coordinator's routed matrix stays empty; in the star it carries
  // every one of them.
  for (const auto topology :
       {domain::SocketTopology::kStar, domain::SocketTopology::kMesh}) {
    SocketHarness h(topology);
    for (int src = 0; src < kRanks; ++src)
      for (int dst = 0; dst < kRanks; ++dst)
        if (src != dst) h.at(src).post(src, dst, tagged(src));
    for (int dst = 0; dst < kRanks; ++dst)
      for (int k = 0; k + 1 < kRanks; ++k) ASSERT_TRUE(h.at(dst).recv(dst).has_value());
    const std::vector<wire::PeerTraffic> routed = h.coordinator().take_routed();
    if (topology == domain::SocketTopology::kMesh) {
      EXPECT_TRUE(routed.empty());
    } else {
      std::uint64_t frames = 0;
      for (const wire::PeerTraffic& t : routed) frames += t.frames;
      EXPECT_EQ(frames, static_cast<std::uint64_t>(kRanks * (kRanks - 1)));
    }
  }
}

TEST(SocketTransport, OrderlyPeerCloseIsNamedInCloseReason) {
  // A worker that goes away cleanly must surface as "closed connection" on
  // the coordinator — distinguishable from a socket error — and unblock
  // recv() instead of hanging it.
  SocketHarness h(domain::SocketTopology::kStar);
  h.kill_worker(1);
  // Workers 0 and 2 are still up, but any worker link loss closes the
  // coordinator's mailbox (its step protocol needs all of them).
  EXPECT_FALSE(h.coordinator().recv(domain::kCoordinatorRank).has_value());
  const std::string reason = h.coordinator().close_reason();
  EXPECT_NE(reason.find("worker 1"), std::string::npos) << reason;
  EXPECT_NE(reason.find("closed connection"), std::string::npos) << reason;
}

TEST(SocketTransport, MidStreamWriteFailurePoisonsThePeerByName) {
  // Once a write fails, part of a routing header may be on the wire: the
  // peer must be marked dead so later posts fail fast with its name instead
  // of desyncing the stream into garbage decodes.
  SocketHarness h(domain::SocketTopology::kStar);
  h.kill_worker(1);
  // The kernel buffers a few frames after the peer vanishes; keep posting
  // until the failure surfaces (bounded: buffers are finite).
  std::vector<std::uint8_t> big(1u << 16, 0xab);
  bool threw = false;
  std::string what;
  for (int i = 0; i < 100000 && !threw; ++i) {
    try {
      h.coordinator().post(domain::kCoordinatorRank, 1, big);
    } catch (const std::exception& e) {
      threw = true;
      what = e.what();
    }
  }
  ASSERT_TRUE(threw);
  EXPECT_NE(what.find("worker 1"), std::string::npos) << what;
  // Poisoned: the very next post fails immediately, still naming the peer.
  try {
    h.coordinator().post(domain::kCoordinatorRank, 1, tagged(1));
    FAIL() << "post to a dead peer must throw";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("worker 1"), std::string::npos) << e.what();
  }
  // Other peers are untouched.
  h.coordinator().post(domain::kCoordinatorRank, 0, tagged(5));
  auto frame = h.at(0).recv(0);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(tag_of(*frame), 5);
}

TEST(SocketTransport, ForwardFailureDoesNotPoisonTheSourceLink) {
  // Worker 1 dies while worker 0 keeps routing frames to it through the
  // coordinator. Only the *destination* link may be poisoned: worker 0's own
  // link must stay healthy, so the teardown Shutdown still reaches it.
  SocketHarness h(domain::SocketTopology::kStar);
  h.kill_worker(1);
  // Enough volume that the coordinator's forward write fails at least once
  // (the kernel buffers the first frames; rank 1's fd then RSTs).
  std::vector<std::uint8_t> big = tagged(0);
  big.resize(1u << 16, 0xcd);
  for (int i = 0; i < 400; ++i) h.at(0).post(0, 1, big);
  // The coordinator -> worker 0 direction must still deliver.
  h.coordinator().post(domain::kCoordinatorRank, 0, tagged(9));
  auto frame = h.at(0).recv(0);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(tag_of(*frame), 9);
}

TEST(SocketTransportMesh, PeerThatNeverDialsFailsTimedAndNamed) {
  // Partial-mesh fuzz: rank 0 completes the rendezvous (hello + directory)
  // but never dials its higher-ranked peers. Rank 2 waits for inbound
  // connections from ranks 0 and 1; only rank 1 dials, so rank 2's mesh
  // setup must fail after its deadline naming rank 0 — not hang.
  auto coord = domain::SocketTransport::listen(0, 3, domain::SocketTopology::kMesh);
  std::unique_ptr<domain::SocketTransport> w0, w1, w2;
  std::vector<std::thread> connectors;
  connectors.emplace_back([&] {
    w0 = domain::SocketTransport::connect_mesh("127.0.0.1", coord->port(), 0, 0);
  });
  connectors.emplace_back([&] {
    w1 = domain::SocketTransport::connect_mesh("127.0.0.1", coord->port(), 1, 0);
  });
  connectors.emplace_back([&] {
    w2 = domain::SocketTransport::connect_mesh("127.0.0.1", coord->port(), 2, 0);
  });
  coord->accept_workers(/*timeout_ms=*/30000);
  for (std::thread& t : connectors) t.join();

  // Rank 1 dials rank 2 (its only higher peer) and then times out waiting
  // for rank 0's inbound connection.
  std::thread w1_mesh([&] {
    try {
      w1->mesh_with_peers(/*timeout_ms=*/1500);
      ADD_FAILURE() << "rank 1 mesh must fail without rank 0";
    } catch (const std::exception& e) {
      EXPECT_NE(std::string(e.what()).find("rank(s) 0"), std::string::npos) << e.what();
    }
  });
  try {
    w2->mesh_with_peers(/*timeout_ms=*/1500);
    FAIL() << "rank 2 mesh must fail without rank 0";
  } catch (const std::exception& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("timed out"), std::string::npos) << what;
    EXPECT_NE(what.find("rank(s) 0"), std::string::npos) << what;
  }
  w1_mesh.join();
}

TEST(Wire, MergeTrafficSumsMatchingCells) {
  std::vector<wire::PeerTraffic> into = {{0, 1, 1, 2, 100}, {1, 0, 2, 1, 50}};
  const std::vector<wire::PeerTraffic> add = {{0, 1, 1, 3, 200}, {2, 0, 1, 1, 10}};
  wire::merge_traffic(into, add);
  ASSERT_EQ(into.size(), 3u);
  EXPECT_EQ(into[0].frames, 5u);
  EXPECT_EQ(into[0].bytes, 300u);
  EXPECT_EQ(into[1].src, 1);
  EXPECT_EQ(into[2].src, 2);
  EXPECT_EQ(into[2].bytes, 10u);
}

}  // namespace
}  // namespace bonsai
