// Structural and multipole invariants of the octree builder.
#include "tree/octree.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "tree/particle.hpp"
#include "util/random.hpp"

namespace bonsai {
namespace {

ParticleSet random_cloud(std::size_t n, std::uint64_t seed, double radius = 1.0) {
  Xoshiro256 rng(seed);
  ParticleSet parts;
  parts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Non-uniform (clustered) cloud: radius^2 bias concentrates the centre.
    const Vec3d dir = rng.unit_sphere();
    const double r = radius * rng.uniform() * rng.uniform();
    Particle p;
    p.pos = dir * r;
    p.vel = {0.0, 0.0, 0.0};
    p.mass = rng.uniform(0.5, 1.5);
    p.id = i;
    parts.add(p);
  }
  return parts;
}

struct BuiltTree {
  ParticleSet parts;
  sfc::KeySpace space;
  Octree tree;
};

BuiltTree build_cloud(std::size_t n, std::uint64_t seed, int nleaf,
                      double theta = 0.4) {
  BuiltTree bt;
  bt.parts = random_cloud(n, seed);
  bt.space = sfc::KeySpace(bt.parts.bounds());
  sort_by_keys(bt.parts, bt.space);
  bt.tree.build(bt.parts, nleaf);
  bt.tree.compute_properties(bt.parts, theta);
  return bt;
}

class OctreeNleafTest : public ::testing::TestWithParam<int> {};

TEST_P(OctreeNleafTest, LeavesPartitionParticles) {
  const int nleaf = GetParam();
  auto bt = build_cloud(3000, 101, nleaf);
  std::vector<int> covered(bt.parts.size(), 0);
  std::size_t leaves = 0;
  for (const TreeNode& node : bt.tree.nodes()) {
    if (!node.is_leaf()) continue;
    ++leaves;
    for (std::uint32_t i = node.part_begin; i < node.part_end; ++i) ++covered[i];
  }
  EXPECT_EQ(leaves, bt.tree.num_leaves());
  for (std::size_t i = 0; i < covered.size(); ++i)
    ASSERT_EQ(covered[i], 1) << "particle " << i << " in " << covered[i] << " leaves";
}

TEST_P(OctreeNleafTest, LeafSizeRespected) {
  const int nleaf = GetParam();
  auto bt = build_cloud(3000, 103, nleaf);
  for (const TreeNode& node : bt.tree.nodes()) {
    if (!node.is_leaf()) continue;
    if (node.level < sfc::kMaxLevel) {
      ASSERT_LE(node.count(), static_cast<std::uint32_t>(nleaf));
    }
  }
}

TEST_P(OctreeNleafTest, ChildRangesPartitionParent) {
  const int nleaf = GetParam();
  auto bt = build_cloud(3000, 107, nleaf);
  const auto nodes = bt.tree.nodes();
  for (const TreeNode& node : nodes) {
    if (node.is_leaf()) continue;
    std::uint32_t covered = 0;
    sfc::Key prev_end = node.key_begin;
    for (std::uint8_t c = 0; c < node.num_children; ++c) {
      const TreeNode& ch = nodes[static_cast<std::size_t>(node.first_child) + c];
      covered += ch.count();
      ASSERT_GT(ch.count(), 0u) << "empty children must not be materialized";
      ASSERT_EQ(ch.level, node.level + 1);
      // Key ranges are nested, ordered and non-overlapping.
      ASSERT_GE(ch.key_begin, prev_end);
      ASSERT_LE(ch.key_end, node.key_end);
      prev_end = ch.key_end;
    }
    ASSERT_EQ(covered, node.count());
  }
}

INSTANTIATE_TEST_SUITE_P(LeafSizes, OctreeNleafTest, ::testing::Values(1, 8, 16, 64));

TEST(Octree, ParticleKeysInsideNodeKeyRange) {
  auto bt = build_cloud(2000, 109, 16);
  for (const TreeNode& node : bt.tree.nodes()) {
    for (std::uint32_t i = node.part_begin; i < node.part_end; ++i) {
      ASSERT_GE(bt.parts.key[i], node.key_begin);
      ASSERT_LT(bt.parts.key[i], node.key_end);
    }
  }
}

TEST(Octree, BoxesContainParticlesAndNest) {
  auto bt = build_cloud(2000, 113, 16);
  const auto nodes = bt.tree.nodes();
  for (const TreeNode& node : nodes) {
    for (std::uint32_t i = node.part_begin; i < node.part_end; ++i)
      ASSERT_TRUE(node.box.contains(bt.parts.pos(i)));
    if (!node.is_leaf()) {
      for (std::uint8_t c = 0; c < node.num_children; ++c) {
        const TreeNode& ch = nodes[static_cast<std::size_t>(node.first_child) + c];
        ASSERT_TRUE(node.box.contains(ch.box.lo));
        ASSERT_TRUE(node.box.contains(ch.box.hi));
      }
    }
  }
}

TEST(Octree, RootMonopoleMatchesGlobal) {
  auto bt = build_cloud(5000, 127, 16);
  const TreeNode& root = bt.tree.root();
  EXPECT_NEAR(root.mp.mass, bt.parts.total_mass(), 1e-9 * bt.parts.total_mass());
  Vec3d com{};
  for (std::size_t i = 0; i < bt.parts.size(); ++i)
    com += bt.parts.mass[i] * bt.parts.pos(i);
  com /= bt.parts.total_mass();
  EXPECT_NEAR(root.mp.com.x, com.x, 1e-9);
  EXPECT_NEAR(root.mp.com.y, com.y, 1e-9);
  EXPECT_NEAR(root.mp.com.z, com.z, 1e-9);
}

TEST(Octree, InternalMultipolesMatchDirectComputation) {
  // Parallel-axis combination must equal the moment computed from scratch.
  auto bt = build_cloud(4000, 131, 16);
  const auto nodes = bt.tree.nodes();
  for (std::size_t k = 0; k < nodes.size(); k += 7) {  // sample nodes
    const TreeNode& node = nodes[k];
    if (node.count() == 0) continue;
    Multipole ref;
    for (std::uint32_t i = node.part_begin; i < node.part_end; ++i) {
      ref.mass += bt.parts.mass[i];
      ref.com += bt.parts.mass[i] * bt.parts.pos(i);
    }
    ref.com /= ref.mass;
    for (std::uint32_t i = node.part_begin; i < node.part_end; ++i)
      ref.quad.add_outer(bt.parts.pos(i) - ref.com, bt.parts.mass[i]);

    ASSERT_NEAR(node.mp.mass, ref.mass, 1e-9 * ref.mass);
    ASSERT_NEAR(norm(node.mp.com - ref.com), 0.0, 1e-9);
    for (int q = 0; q < 6; ++q)
      ASSERT_NEAR(node.mp.quad.q[q], ref.quad.q[q], 1e-7 * (1.0 + std::abs(ref.quad.q[q])));
  }
}

TEST(Octree, QuadrupoleTraceNonNegative) {
  // Q = sum m r r^T is positive semi-definite, so tr(Q) >= 0 always.
  auto bt = build_cloud(3000, 137, 16);
  for (const TreeNode& node : bt.tree.nodes())
    ASSERT_GE(node.mp.quad.trace(), -1e-12);
}

TEST(Octree, RcritScalesInverselyWithTheta) {
  auto bt = build_cloud(1000, 139, 16, 0.4);
  std::vector<double> rc04;
  for (const TreeNode& n : bt.tree.nodes()) rc04.push_back(n.rcrit);
  set_opening_angle(bt.tree.mutable_nodes(), 0.8);
  const auto nodes = bt.tree.nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].count() == 0) continue;
    // l/0.8 + d < l/0.4 + d.
    ASSERT_LT(nodes[i].rcrit, rc04[i] + 1e-12);
  }
}

TEST(Octree, EmptySetYieldsEmptyRoot) {
  ParticleSet parts;
  sfc::KeySpace space(AABB{{0, 0, 0}, {1, 1, 1}});
  Octree tree;
  tree.build(parts);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.root().count(), 0u);
}

TEST(Octree, SingleParticle) {
  ParticleSet parts;
  parts.add({{0.25, 0.5, 0.75}, {0, 0, 0}, 2.5, 0});
  sfc::KeySpace space(parts.bounds());
  sort_by_keys(parts, space);
  Octree tree;
  tree.build(parts);
  tree.compute_properties(parts, 0.4);
  EXPECT_EQ(tree.nodes().size(), 1u);
  EXPECT_EQ(tree.root().count(), 1u);
  EXPECT_DOUBLE_EQ(tree.root().mp.mass, 2.5);
  EXPECT_NEAR(norm(tree.root().mp.com - Vec3d(0.25, 0.5, 0.75)), 0.0, 1e-12);
  EXPECT_NEAR(tree.root().mp.quad.trace(), 0.0, 1e-20);
}

TEST(Octree, CoincidentParticlesTerminateAtMaxLevel) {
  // 100 particles at the same position can never be split below nleaf;
  // construction must still terminate (leaf at kMaxLevel).
  ParticleSet parts;
  for (int i = 0; i < 100; ++i) parts.add({{0.5, 0.5, 0.5}, {0, 0, 0}, 1.0, static_cast<std::uint64_t>(i)});
  parts.add({{0.1, 0.1, 0.1}, {0, 0, 0}, 1.0, 100});
  sfc::KeySpace space(AABB{{0, 0, 0}, {1, 1, 1}});
  sort_by_keys(parts, space);
  Octree tree;
  tree.build(parts, 16);
  tree.compute_properties(parts, 0.4);
  std::uint32_t covered = 0;
  for (const TreeNode& n : tree.nodes())
    if (n.is_leaf()) covered += n.count();
  EXPECT_EQ(covered, parts.size());
}

TEST(Octree, UnsortedInputRejected) {
  ParticleSet parts = random_cloud(100, 149);
  sfc::KeySpace space(parts.bounds());
  for (std::size_t i = 0; i < parts.size(); ++i) parts.key[i] = space.key(parts.pos(i));
  // Deliberately not sorted: builder must refuse rather than mis-build.
  bool sorted = std::is_sorted(parts.key.begin(), parts.key.end());
  if (!sorted) {
    Octree tree;
    EXPECT_THROW(tree.build(parts), std::logic_error);
  }
}

TEST(Octree, DepthGrowsWithClustering) {
  auto spread = build_cloud(2000, 151, 16);
  // Same count squeezed into a tiny ball inside a huge key space.
  ParticleSet tight;
  Xoshiro256 rng(153);
  for (int i = 0; i < 2000; ++i) {
    Particle p;
    p.pos = Vec3d{0.5, 0.5, 0.5} + rng.unit_sphere() * (1e-6 * rng.uniform());
    p.mass = 1.0;
    p.id = static_cast<std::uint64_t>(i);
    tight.add(p);
  }
  sfc::KeySpace space(AABB{{0, 0, 0}, {1, 1, 1}});
  sort_by_keys(tight, space);
  Octree tight_tree;
  tight_tree.build(tight, 16);
  EXPECT_GT(tight_tree.max_depth(), spread.tree.max_depth());
}

}  // namespace
}  // namespace bonsai
