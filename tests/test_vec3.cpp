#include "util/vec3.hpp"

#include <gtest/gtest.h>

#include "util/aabb.hpp"

namespace bonsai {
namespace {

TEST(Vec3, ArithmeticBasics) {
  const Vec3d a{1.0, 2.0, 3.0};
  const Vec3d b{-4.0, 5.0, 0.5};
  EXPECT_EQ(a + b, Vec3d(-3.0, 7.0, 3.5));
  EXPECT_EQ(a - b, Vec3d(5.0, -3.0, 2.5));
  EXPECT_EQ(a * 2.0, Vec3d(2.0, 4.0, 6.0));
  EXPECT_EQ(2.0 * a, a * 2.0);
  EXPECT_EQ(a / 2.0, Vec3d(0.5, 1.0, 1.5));
  EXPECT_EQ(-a, Vec3d(-1.0, -2.0, -3.0));
}

TEST(Vec3, CompoundAssignment) {
  Vec3d v{1.0, 1.0, 1.0};
  v += Vec3d{1.0, 2.0, 3.0};
  v *= 2.0;
  v -= Vec3d{0.0, 0.0, 8.0};
  v /= 2.0;
  EXPECT_EQ(v, Vec3d(2.0, 3.0, 0.0));
}

TEST(Vec3, DotCrossNorm) {
  const Vec3d x{1.0, 0.0, 0.0};
  const Vec3d y{0.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(dot(x, y), 0.0);
  EXPECT_EQ(cross(x, y), Vec3d(0.0, 0.0, 1.0));
  const Vec3d v{3.0, 4.0, 12.0};
  EXPECT_DOUBLE_EQ(norm2(v), 169.0);
  EXPECT_DOUBLE_EQ(norm(v), 13.0);
}

TEST(Vec3, IndexingMatchesMembers) {
  Vec3d v{7.0, 8.0, 9.0};
  EXPECT_DOUBLE_EQ(v[0], 7.0);
  EXPECT_DOUBLE_EQ(v[1], 8.0);
  EXPECT_DOUBLE_EQ(v[2], 9.0);
  v[2] = -1.0;
  EXPECT_DOUBLE_EQ(v.z, -1.0);
}

TEST(Vec3, MinMaxComponentwise) {
  const Vec3d a{1.0, 5.0, -2.0};
  const Vec3d b{0.0, 7.0, -1.0};
  EXPECT_EQ(min(a, b), Vec3d(0.0, 5.0, -2.0));
  EXPECT_EQ(max(a, b), Vec3d(1.0, 7.0, -1.0));
}

TEST(AABB, ExpandAndContain) {
  AABB box;
  EXPECT_FALSE(box.valid());
  box.expand(Vec3d{0.0, 0.0, 0.0});
  box.expand(Vec3d{1.0, 2.0, 3.0});
  EXPECT_TRUE(box.valid());
  EXPECT_TRUE(box.contains(Vec3d{0.5, 1.0, 1.5}));
  EXPECT_FALSE(box.contains(Vec3d{1.5, 1.0, 1.5}));
  EXPECT_EQ(box.center(), Vec3d(0.5, 1.0, 1.5));
  EXPECT_DOUBLE_EQ(box.max_side(), 3.0);
}

TEST(AABB, MinDistToPoint) {
  AABB box{{0.0, 0.0, 0.0}, {1.0, 1.0, 1.0}};
  EXPECT_DOUBLE_EQ(box.min_dist2(Vec3d{0.5, 0.5, 0.5}), 0.0);      // inside
  EXPECT_DOUBLE_EQ(box.min_dist2(Vec3d{2.0, 0.5, 0.5}), 1.0);      // face
  EXPECT_DOUBLE_EQ(box.min_dist2(Vec3d{2.0, 2.0, 0.5}), 2.0);      // edge
  EXPECT_DOUBLE_EQ(box.min_dist2(Vec3d{2.0, 2.0, 2.0}), 3.0);      // corner
  EXPECT_DOUBLE_EQ(box.min_dist2(Vec3d{-1.0, 0.5, 0.5}), 1.0);
}

TEST(AABB, MinDistBoxToBox) {
  AABB a{{0.0, 0.0, 0.0}, {1.0, 1.0, 1.0}};
  AABB overlapping{{0.5, 0.5, 0.5}, {2.0, 2.0, 2.0}};
  EXPECT_DOUBLE_EQ(a.min_dist2(overlapping), 0.0);
  EXPECT_TRUE(a.overlaps(overlapping));
  AABB apart{{3.0, 0.0, 0.0}, {4.0, 1.0, 1.0}};
  EXPECT_DOUBLE_EQ(a.min_dist2(apart), 4.0);
  EXPECT_FALSE(a.overlaps(apart));
}

TEST(AABB, BoundingCubeIsCubicAndContains) {
  AABB thin{{0.0, 0.0, 0.0}, {8.0, 2.0, 1.0}};
  const AABB cube = thin.bounding_cube();
  const Vec3d s = cube.size();
  EXPECT_DOUBLE_EQ(s.x, s.y);
  EXPECT_DOUBLE_EQ(s.y, s.z);
  EXPECT_TRUE(cube.contains(thin.lo));
  EXPECT_TRUE(cube.contains(thin.hi));
  EXPECT_EQ(cube.center(), thin.center());
}

}  // namespace
}  // namespace bonsai
