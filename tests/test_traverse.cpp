// Accuracy and accounting of the Barnes-Hut tree walk against the direct
// O(N^2) reference.
#include "tree/traverse.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "tree/direct.hpp"
#include "tree/kernels.hpp"
#include "tree/octree.hpp"
#include "util/compare.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"

namespace bonsai {
namespace {

ParticleSet clustered_cloud(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  ParticleSet parts;
  parts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3d dir = rng.unit_sphere();
    const double r = rng.uniform() * rng.uniform();  // centrally concentrated
    parts.add({dir * r, {0, 0, 0}, 1.0 / static_cast<double>(n), i});
  }
  return parts;
}

struct WalkSetup {
  ParticleSet parts;
  Octree tree;
  std::vector<TargetGroup> groups;
};

WalkSetup make_setup(std::size_t n, std::uint64_t seed, double theta, int ncrit = 64,
                 int nleaf = 16) {
  WalkSetup s;
  s.parts = clustered_cloud(n, seed);
  sfc::KeySpace space(s.parts.bounds());
  sort_by_keys(s.parts, space);
  s.tree.build(s.parts, nleaf);
  s.tree.compute_properties(s.parts, theta);
  s.groups = make_groups(s.parts, ncrit);
  return s;
}

TEST(MakeGroups, SizesAndBoxes) {
  WalkSetup s = make_setup(1000, 211, 0.4, 64);
  std::uint32_t covered = 0;
  for (const TargetGroup& g : s.groups) {
    EXPECT_LE(g.end - g.begin, 64u);
    covered += g.end - g.begin;
    for (std::uint32_t i = g.begin; i < g.end; ++i)
      ASSERT_TRUE(g.box.contains(s.parts.pos(i)));
  }
  EXPECT_EQ(covered, s.parts.size());
  EXPECT_EQ(s.groups.size(), (1000 + 63) / 64u);
}

TEST(MakeGroups, RejectsNonPositiveNcrit) {
  ParticleSet parts = clustered_cloud(16, 307);
  EXPECT_THROW(make_groups(parts, 0), std::logic_error);
  EXPECT_THROW(make_groups(parts, -5), std::logic_error);
  // The contract also holds for an empty set: capacity is validated first.
  ParticleSet empty;
  EXPECT_THROW(make_groups(empty, 0), std::logic_error);
}

TEST(MakeGroups, EmptySetYieldsNoGroups) {
  ParticleSet empty;
  EXPECT_TRUE(make_groups(empty, 1).empty());
  EXPECT_TRUE(make_groups(empty, 64).empty());
}

TEST(Traverse, EmptyGroupSpanIsNoOp) {
  WalkSetup s = make_setup(200, 311, 0.4);
  s.parts.zero_forces();
  const auto stats = traverse_groups(s.tree.view(s.parts), s.parts, {}, TraversalConfig{},
                                     /*self=*/true);
  EXPECT_EQ(stats.p2p + stats.p2c, 0u);
  for (std::size_t i = 0; i < s.parts.size(); ++i)
    EXPECT_DOUBLE_EQ(norm(s.parts.acc(i)), 0.0);
}

TEST(Traverse, ZeroWidthGroupIsNoOp) {
  WalkSetup s = make_setup(200, 313, 0.4);
  s.parts.zero_forces();
  TargetGroup g;
  g.begin = g.end = 7;  // empty target range, box invalid by construction
  const auto stats =
      traverse_one_group(s.tree.view(s.parts), s.parts, g, TraversalConfig{}, true);
  EXPECT_EQ(stats.p2p + stats.p2c, 0u);
}

TEST(Traverse, TinyThetaReproducesDirectExactly) {
  // With an (effectively) zero opening angle the MAC never accepts, the walk
  // degenerates to all-pairs p-p, and results match direct summation to
  // floating-point roundoff (identical kernel, different summation order).
  WalkSetup s = make_setup(500, 223, 1e-9);
  TraversalConfig cfg;
  cfg.theta = 1e-9;
  cfg.eps = 0.01;
  s.parts.zero_forces();
  const InteractionStats stats =
      traverse_groups(s.tree.view(s.parts), s.parts, s.groups, cfg, /*self=*/true);
  // Multi-particle cells always have a finite box, hence an enormous rcrit at
  // theta ~ 0, and are always opened. Single-particle cells have rcrit = 0 and
  // may be accepted, which is *exact* (point mass, Q = 0), so each of the
  // N(N-1) ordered pairs is evaluated exactly once, as p-p or point p-c.
  EXPECT_EQ(stats.p2p + stats.p2c, 500u * 499u);

  ParticleSet ref = s.parts;
  direct_forces(ref, cfg.eps);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_NEAR(norm(s.parts.acc(i) - ref.acc(i)), 0.0, 1e-11 * std::max(1.0, norm(ref.acc(i))));
    ASSERT_NEAR(s.parts.pot[i], ref.pot[i], 1e-11 * std::abs(ref.pot[i]));
  }
}

class ThetaAccuracyTest : public ::testing::TestWithParam<double> {};

TEST_P(ThetaAccuracyTest, ForceErrorBounded) {
  const double theta = GetParam();
  WalkSetup s = make_setup(3000, 227, theta);
  TraversalConfig cfg;
  cfg.theta = theta;
  cfg.eps = 1e-3;
  s.parts.zero_forces();
  traverse_groups(s.tree.view(s.parts), s.parts, s.groups, cfg, true);

  ParticleSet ref = s.parts;
  direct_forces(ref, cfg.eps);
  const double med = median_acc_error(s.parts, ref);
  // Empirical Barnes-Hut + quadrupole error envelopes (generous bounds).
  const double bound = theta <= 0.3 ? 2e-5 : theta <= 0.5 ? 2e-4 : 2e-3;
  EXPECT_LT(med, bound) << "theta=" << theta;
}

INSTANTIATE_TEST_SUITE_P(OpeningAngles, ThetaAccuracyTest,
                         ::testing::Values(0.2, 0.4, 0.6, 0.8));

TEST(Traverse, ErrorGrowsWithTheta) {
  std::vector<double> med;
  for (double theta : {0.2, 0.5, 0.9}) {
    WalkSetup s = make_setup(2000, 229, theta);
    TraversalConfig cfg;
    cfg.theta = theta;
    cfg.eps = 1e-3;
    s.parts.zero_forces();
    traverse_groups(s.tree.view(s.parts), s.parts, s.groups, cfg, true);
    ParticleSet ref = s.parts;
    direct_forces(ref, cfg.eps);
    med.push_back(median_acc_error(s.parts, ref));
  }
  EXPECT_LT(med[0], med[1]);
  EXPECT_LT(med[1], med[2]);
}

TEST(Traverse, QuadrupoleBeatsMonopole) {
  WalkSetup s = make_setup(2000, 233, 0.6);
  TraversalConfig cfg;
  cfg.theta = 0.6;
  cfg.eps = 1e-3;

  ParticleSet with_quad = s.parts;
  with_quad.zero_forces();
  traverse_groups(s.tree.view(with_quad), with_quad, s.groups, cfg, true);

  cfg.quadrupole = false;
  ParticleSet mono = s.parts;
  mono.zero_forces();
  traverse_groups(s.tree.view(mono), mono, s.groups, cfg, true);

  ParticleSet ref = s.parts;
  direct_forces(ref, cfg.eps);

  const double err_quad = median_acc_error(with_quad, ref);
  const double err_mono = median_acc_error(mono, ref);
  EXPECT_LT(err_quad, err_mono * 0.5)
      << "quadrupole should substantially reduce the error";
}

TEST(Traverse, WorkGrowsAsThetaShrinks) {
  // §IV: calculation cost grows roughly as theta^-3. Halving theta must
  // increase the evaluated work substantially (we assert a soft 1.5x to stay
  // robust across tree shapes; the theta ablation bench fits the exponent).
  std::vector<std::uint64_t> flops;
  for (double theta : {0.8, 0.4, 0.2}) {
    WalkSetup s = make_setup(8000, 239, theta);
    TraversalConfig cfg;
    cfg.theta = theta;
    cfg.eps = 1e-3;
    s.parts.zero_forces();
    const auto stats = traverse_groups(s.tree.view(s.parts), s.parts, s.groups, cfg, true);
    flops.push_back(stats.flops());
  }
  EXPECT_GT(flops[1], static_cast<std::uint64_t>(1.5 * static_cast<double>(flops[0])));
  // At N = 8000 the theta = 0.2 walk approaches the all-pairs bound, so the
  // second halving shows compressed growth.
  EXPECT_GT(flops[2], static_cast<std::uint64_t>(1.25 * static_cast<double>(flops[1])));
}

TEST(Traverse, GroupAndSingleWalksAgree) {
  // The group MAC is more conservative in aggregate but both walks must stay
  // within the theta error envelope of each other.
  WalkSetup s = make_setup(1500, 241, 0.4);
  TraversalConfig cfg;
  cfg.theta = 0.4;
  cfg.eps = 1e-3;

  ParticleSet grouped = s.parts;
  grouped.zero_forces();
  traverse_groups(s.tree.view(grouped), grouped, s.groups, cfg, true);

  ParticleSet single = s.parts;
  single.zero_forces();
  for (std::uint32_t i = 0; i < single.size(); ++i)
    traverse_single(s.tree.view(single), single, i, cfg, true);

  RunningStats rel;
  for (std::size_t i = 0; i < grouped.size(); ++i) {
    const double d = norm(grouped.acc(i) - single.acc(i));
    rel.add(d / std::max(norm(single.acc(i)), 1e-300));
  }
  EXPECT_LT(rel.mean(), 5e-4);
}

TEST(Traverse, SelfPotentialExcluded) {
  // Potential must not include the self-term -m_i/eps.
  ParticleSet parts;
  parts.add({{0.0, 0.0, 0.0}, {0, 0, 0}, 1.0, 0});
  parts.add({{1.0, 0.0, 0.0}, {0, 0, 0}, 1.0, 1});
  sfc::KeySpace space(parts.bounds());
  sort_by_keys(parts, space);
  Octree tree;
  tree.build(parts);
  tree.compute_properties(parts, 0.4);
  TraversalConfig cfg;
  cfg.theta = 0.4;
  cfg.eps = 0.1;
  parts.zero_forces();
  auto groups = make_groups(parts, 64);
  traverse_groups(tree.view(parts), parts, groups, cfg, true);
  const double expected = -1.0 / std::sqrt(1.0 + 0.01);
  EXPECT_NEAR(parts.pot[0], expected, 1e-12);
  EXPECT_NEAR(parts.pot[1], expected, 1e-12);
}

TEST(Traverse, DisjointSourceNeedsNoSelfSkip) {
  // Forces from a remote set (the LET use case): traversal of a source tree
  // over different targets must equal direct source->target summation within
  // the MAC error envelope.
  ParticleSet sources = clustered_cloud(2000, 251);
  for (std::size_t i = 0; i < sources.size(); ++i)
    sources.x[i] += 10.0;  // displace the source cloud

  ParticleSet targets = clustered_cloud(500, 257);

  sfc::KeySpace space(sources.bounds());
  sort_by_keys(sources, space);
  Octree tree;
  tree.build(sources, 16);
  tree.compute_properties(sources, 0.4);

  TraversalConfig cfg;
  cfg.theta = 0.4;
  cfg.eps = 0.0;
  targets.zero_forces();
  auto groups = make_groups(targets, 64);
  traverse_groups(tree.view(sources), targets, groups, cfg, /*self=*/false);

  ParticleSet ref = targets;
  ref.zero_forces();
  direct_forces_between(sources, ref, cfg.eps);

  EXPECT_LT(median_acc_error(targets, ref), 2e-4);
}

TEST(Traverse, EmptySourcesAndTargets) {
  ParticleSet empty;
  sfc::KeySpace space(AABB{{0, 0, 0}, {1, 1, 1}});
  Octree tree;
  tree.build(empty);
  tree.compute_properties(empty, 0.4);

  ParticleSet targets = clustered_cloud(10, 263);
  targets.zero_forces();
  auto groups = make_groups(targets, 64);
  const auto stats = traverse_groups(tree.view(empty), targets, groups, TraversalConfig{}, false);
  EXPECT_EQ(stats.p2p + stats.p2c, 0u);
  for (std::size_t i = 0; i < targets.size(); ++i)
    EXPECT_DOUBLE_EQ(norm(targets.acc(i)), 0.0);

  // Empty target set is a no-op as well.
  ParticleSet no_targets;
  auto no_groups = make_groups(no_targets, 64);
  EXPECT_TRUE(no_groups.empty());
}

TEST(Traverse, PPKernelFloatAndDoubleAgree) {
  ForceAccum<double> fd{};
  ForceAccum<float> ff{};
  pp_kernel<double>(0.0, 0.0, 0.0, 1.0, 2.0, 3.0, 1.5, 0.01, fd);
  pp_kernel<float>(0.0f, 0.0f, 0.0f, 1.0f, 2.0f, 3.0f, 1.5f, 0.01f, ff);
  EXPECT_NEAR(fd.ax, static_cast<double>(ff.ax), 1e-6);
  EXPECT_NEAR(fd.pot, static_cast<double>(ff.pot), 1e-6);
}

TEST(Traverse, PCKernelMatchesPointMass) {
  // A cell whose quadrupole vanishes must reduce exactly to the p-p kernel.
  Multipole cell;
  cell.mass = 2.0;
  cell.com = {3.0, -1.0, 2.0};
  ForceAccum<double> fc{}, fp{};
  pc_kernel({0.5, 0.5, 0.5}, cell, 0.0, fc);
  pp_kernel<double>(0.5, 0.5, 0.5, 3.0, -1.0, 2.0, 2.0, 0.0, fp);
  EXPECT_NEAR(fc.ax, fp.ax, 1e-14);
  EXPECT_NEAR(fc.ay, fp.ay, 1e-14);
  EXPECT_NEAR(fc.az, fp.az, 1e-14);
  EXPECT_NEAR(fc.pot, fp.pot, 1e-14);
}

TEST(Traverse, PCKernelConvergesToDirectSumWithDistance) {
  // Multipole error of a fixed cluster must fall rapidly with distance
  // (remaining error is the neglected octupole, O(r^-4) in acceleration).
  Xoshiro256 rng(269);
  ParticleSet cluster;
  for (int i = 0; i < 200; ++i)
    cluster.add({rng.unit_sphere() * rng.uniform(), {0, 0, 0}, 1.0, static_cast<std::uint64_t>(i)});

  Multipole mp;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    mp.mass += cluster.mass[i];
    mp.com += cluster.mass[i] * cluster.pos(i);
  }
  mp.com /= mp.mass;
  for (std::size_t i = 0; i < cluster.size(); ++i)
    mp.quad.add_outer(cluster.pos(i) - mp.com, cluster.mass[i]);

  double prev_err = 1e300;
  for (double dist : {4.0, 8.0, 16.0, 32.0}) {
    const Vec3d target{dist, 0.3, -0.2};
    ForceAccum<double> approx{};
    pc_kernel(target, mp, 0.0, approx);
    ParticleSet probe;
    probe.add({target, {0, 0, 0}, 1.0, 0});
    probe.zero_forces();
    direct_forces_between(cluster, probe, 0.0);
    const double err = norm(Vec3d{approx.ax, approx.ay, approx.az} - probe.acc(0)) /
                       norm(probe.acc(0));
    EXPECT_LT(err, prev_err * 0.3) << "at distance " << dist;
    prev_err = err;
  }
}

TEST(Direct, SubsetMatchesFull) {
  ParticleSet parts = clustered_cloud(400, 271);
  ParticleSet full = parts;
  direct_forces(full, 1e-3);
  std::vector<std::uint32_t> subset{0, 17, 399, 200};
  direct_forces_subset(parts, 1e-3, subset);
  for (std::uint32_t i : subset) {
    EXPECT_DOUBLE_EQ(parts.ax[i], full.ax[i]);
    EXPECT_DOUBLE_EQ(parts.pot[i], full.pot[i]);
  }
}

TEST(Direct, NewtonThirdLawMomentumConservation) {
  ParticleSet parts = clustered_cloud(300, 277);
  direct_forces(parts, 1e-2);
  Vec3d net{};
  for (std::size_t i = 0; i < parts.size(); ++i) net += parts.mass[i] * parts.acc(i);
  EXPECT_NEAR(norm(net), 0.0, 1e-12);
}

}  // namespace
}  // namespace bonsai
