// libFuzzer harness over every wire frame decoder, dispatched on the frame
// header. Seeded from tests/fuzz/corpora/wire (one minimized real frame per
// FrameType, see tools/corpus_dump.cpp). The contract under test: a decoder
// either returns a fully validated value or throws WireError — any other
// escape (crash, sanitizer report, std::bad_alloc from an unchecked count,
// out-of-bounds read) is a finding.
#include <cstdint>
#include <cstring>
#include <span>

#include "wire_corpus.hpp"

namespace {

namespace wire = bonsai::domain::wire;

// Importer cache for the kLetDelta patch path, rebuilt per input from the
// deterministic scenario so every run starts from the same mirrored state.
const bonsai::fuzz::LetDeltaScenario& scenario() {
  static const bonsai::fuzz::LetDeltaScenario sc = bonsai::fuzz::make_let_delta_scenario();
  return sc;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  try {
    wire::LetCacheEntry cache = scenario().cache;
    bonsai::fuzz::decode_any({data, size}, &cache);
  } catch (const wire::WireError&) {
    // Rejected malformed input: the expected outcome.
  }
  return 0;
}

#ifndef BONSAI_FUZZ_STANDALONE

extern "C" std::size_t LLVMFuzzerMutate(std::uint8_t* data, std::size_t size,
                                        std::size_t max_size);

// Structure-aware mutation: keep the magic and version intact (otherwise
// every mutant dies in frame_type() and the payload decoders never run),
// mutate the type and payload freely, and re-patch the length field so the
// header stays consistent with the buffer.
extern "C" std::size_t LLVMFuzzerCustomMutator(std::uint8_t* data, std::size_t size,
                                               std::size_t max_size, unsigned seed) {
  constexpr std::size_t kHeader = wire::kHeaderBytes;
  if (size < kHeader || max_size < kHeader) return LLVMFuzzerMutate(data, size, max_size);

  const std::size_t payload =
      LLVMFuzzerMutate(data + kHeader, size - kHeader, max_size - kHeader);
  const std::uint32_t magic = wire::kMagic;
  const std::uint16_t version = wire::kVersion;
  std::memcpy(data, &magic, 4);
  std::memcpy(data + 4, &version, 2);
  if (seed % 8 == 0) {  // occasionally retarget another decoder
    const std::uint16_t type = static_cast<std::uint16_t>(seed / 8 % 24);
    std::memcpy(data + 6, &type, 2);
  }
  const std::uint64_t len = payload;
  std::memcpy(data + 8, &len, 8);
  return kHeader + payload;
}

#else
#include "fuzz_main.hpp"
#endif
