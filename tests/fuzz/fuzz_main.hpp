// Standalone driver for the fuzz harnesses when libFuzzer is unavailable
// (gcc-only toolchains, and the ctest corpus-replay jobs). Compiled when
// BONSAI_FUZZ_STANDALONE is defined; under clang the same harness sources
// build against -fsanitize=fuzzer instead.
//
// Usage: fuzz_<target>_replay <corpus-dir-or-file>...
//
// Each corpus input is replayed as-is, then swept deterministically: every
// truncation length and every single-byte XOR (0xA5) — the same adversarial
// shapes the gtest loops use, so replay keeps pressure on the decoders even
// without coverage guidance.
#pragma once

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace bonsai::fuzz {

inline std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

inline void replay_input(const std::vector<std::uint8_t>& input) {
  LLVMFuzzerTestOneInput(input.data(), input.size());
  for (std::size_t len = 0; len < input.size(); ++len)
    LLVMFuzzerTestOneInput(input.data(), len);
  std::vector<std::uint8_t> bad = input;
  for (std::size_t i = 0; i < bad.size(); ++i) {
    bad[i] ^= 0xA5;
    LLVMFuzzerTestOneInput(bad.data(), bad.size());
    bad[i] ^= 0xA5;
  }
}

inline int replay_main(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::size_t inputs = 0;
  for (int a = 1; a < argc; ++a) {
    const fs::path root(argv[a]);
    std::vector<fs::path> files;
    if (fs::is_directory(root)) {
      for (const auto& e : fs::directory_iterator(root))
        if (e.is_regular_file()) files.push_back(e.path());
    } else {
      files.push_back(root);
    }
    for (const auto& f : files) {
      replay_input(read_file(f));
      ++inputs;
    }
  }
  if (inputs == 0) {
    std::fprintf(stderr, "no corpus inputs found\n");
    return 1;
  }
  std::printf("replayed %zu corpus inputs (plus truncation/byte-flip sweeps)\n", inputs);
  return 0;
}

}  // namespace bonsai::fuzz

int main(int argc, char** argv) { return bonsai::fuzz::replay_main(argc, argv); }
