// libFuzzer harness focused on the LetDelta patch path: every input is
// decoded against a real mirrored cache (the deterministic drifting-cloud
// scenario), so the varint/zigzag node records, the particle match runs and
// the nibble-packed residual blobs all execute — not just the header checks.
// Commit-after-validation is asserted: a rejected patch must leave the cache
// version untouched.
#include <cstdint>
#include <cstring>
#include <span>

#include "wire_corpus.hpp"

namespace {

namespace wire = bonsai::domain::wire;

const bonsai::fuzz::LetDeltaScenario& scenario() {
  static const bonsai::fuzz::LetDeltaScenario sc = bonsai::fuzz::make_let_delta_scenario();
  return sc;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  wire::LetCacheEntry cache = scenario().cache;
  const std::uint64_t base_version = cache.version;
  try {
    wire::decode_let_cached({data, size}, cache);
  } catch (const wire::WireError&) {
    // A rejected frame must not have advanced the mirror (commit-after-
    // validation). BNS_CHECK keeps this armed in Release fuzz builds too.
    BNS_CHECK(cache.version == base_version,
              "rejected LetDelta frame mutated the importer cache");
  }
  return 0;
}

#ifndef BONSAI_FUZZ_STANDALONE

extern "C" std::size_t LLVMFuzzerMutate(std::uint8_t* data, std::size_t size,
                                        std::size_t max_size);

// Keep the header (magic/version/type=LetDelta) and the base-version payload
// prefix plausible; mutate the record stream; re-patch the length field.
extern "C" std::size_t LLVMFuzzerCustomMutator(std::uint8_t* data, std::size_t size,
                                               std::size_t max_size, unsigned seed) {
  constexpr std::size_t kHeader = wire::kHeaderBytes;
  if (size < kHeader || max_size < kHeader) return LLVMFuzzerMutate(data, size, max_size);

  const std::size_t payload =
      LLVMFuzzerMutate(data + kHeader, size - kHeader, max_size - kHeader);
  const std::uint32_t magic = wire::kMagic;
  const std::uint16_t version = wire::kVersion;
  const std::uint16_t type = seed % 16 == 0
                                 ? static_cast<std::uint16_t>(wire::FrameType::kLet)
                                 : static_cast<std::uint16_t>(wire::FrameType::kLetDelta);
  std::memcpy(data, &magic, 4);
  std::memcpy(data + 4, &version, 2);
  std::memcpy(data + 6, &type, 2);
  const std::uint64_t len = payload;
  std::memcpy(data + 8, &len, 8);
  return kHeader + payload;
}

#else
#include "fuzz_main.hpp"
#endif
