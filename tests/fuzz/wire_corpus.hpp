// Shared seed-frame and dispatch machinery for the wire fuzzing layer.
//
// One place defines (a) a minimized, deterministic encoded frame per
// FrameType, (b) decode_any() — the type-dispatched decoder the harnesses
// and the generic truncation/byte-flip test drive, and (c) the LetDelta
// scenario: an importer cache plus a delta frame that is valid against it,
// so the patch path (not just the "no cached base" rejection) is fuzzed.
//
// Users: tests/fuzz/fuzz_wire.cpp, tests/fuzz/fuzz_let_delta.cpp,
// tools/corpus_dump.cpp and tests/test_fuzz_corpus.cpp. tools/wire_lint.py
// statically cross-checks that every FrameType appears in both the
// seed-frame builder and the decode_any() switch below.
#pragma once

#include <cctype>
#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "domain/let.hpp"
#include "domain/wire.hpp"
#include "tree/octree.hpp"
#include "util/check.hpp"
#include "util/ic.hpp"

namespace bonsai::fuzz {

namespace wire = domain::wire;

struct SeedFrame {
  wire::FrameType type;
  std::string name;  // corpus file stem, e.g. "let_delta"
  std::vector<std::uint8_t> frame;
};

// An importer-side cache plus a delta frame valid against exactly that cache
// state (applying the delta advances the cache past it, so keep a copy).
struct LetDeltaScenario {
  wire::LetCacheEntry cache;
  std::vector<std::uint8_t> full_frame;   // the frame that seeded the cache
  std::vector<std::uint8_t> delta_frame;  // valid against `cache`
};

namespace detail {

// Small but structurally real LET: internal nodes, multipole leaves and
// particle leaves, from a Plummer cloud against a displaced remote box.
inline domain::LetTree make_seed_let(ParticleSet parts) {
  const sfc::KeySpace space(parts.bounds());
  sort_by_keys(parts, space);
  Octree tree;
  tree.build(parts);
  tree.compute_properties(parts, 0.5);
  return domain::build_let(tree.view(parts), AABB{{4, 4, 4}, {6, 6, 6}});
}

inline ParticleSet make_seed_particles(std::size_t n, std::uint64_t seed) {
  ParticleSet parts = make_plummer(n, seed);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    parts.ax[i] = 0.25 * static_cast<double>(i);
    parts.pot[i] = -1.0 / (1.0 + static_cast<double>(i));
    parts.key[i] = 31 * i;
  }
  return parts;
}

}  // namespace detail

// Deterministic drifting-cloud exchange: frame 0 is the full Let that seeds
// the pair's mirrored caches, frame 1 the first delta. The returned cache is
// the importer state the delta applies to.
inline LetDeltaScenario make_let_delta_scenario() {
  LetDeltaScenario sc;
  ParticleSet parts = make_plummer(192, 7);
  wire::LetCacheEntry exporter;
  constexpr double kChurn = 0.98;  // tolerate high churn: the scenario must delta
  for (int step = 0; step < 2; ++step) {
    const domain::LetTree let = detail::make_seed_let(parts);
    wire::LetEncodeResult res =
        wire::encode_let_cached({0, let, 0.0, 0}, exporter, kChurn, nullptr);
    if (step == 0) {
      BNS_CHECK(!res.is_delta, "first exchange must be a full frame");
      sc.full_frame = std::move(res.frame);
      wire::decode_let_cached(sc.full_frame, sc.cache);
    } else {
      BNS_CHECK(res.is_delta, "drifted exchange must produce a delta");
      sc.delta_frame = std::move(res.frame);
    }
    // Gentle deterministic drift so most nodes survive matching.
    for (std::size_t i = 0; i < parts.size(); ++i) {
      parts.x[i] += 1e-4 * std::sin(static_cast<double>(i));
      parts.y[i] += 1e-4 * std::cos(static_cast<double>(i) * 0.7);
    }
  }
  return sc;
}

// One minimized, deterministic frame per FrameType — the checked-in fuzz
// corpus and the base set for the truncation/byte-flip sweeps. Keep this
// exhaustive: wire_lint.py fails the build when a FrameType is missing.
inline std::vector<SeedFrame> seed_frames() {
  std::vector<SeedFrame> out;
  const auto add = [&out](wire::FrameType type, std::vector<std::uint8_t> frame) {
    std::string name = wire::frame_type_name(type);
    std::string snake;
    for (std::size_t i = 0; i < name.size(); ++i) {
      const char c = name[i];
      if (std::isupper(static_cast<unsigned char>(c)) && i > 0) snake.push_back('_');
      snake.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
    out.push_back({type, std::move(snake), std::move(frame)});
  };

  const ParticleSet parts = detail::make_seed_particles(3, 11);

  add(wire::FrameType::kLet,
      wire::encode_let({1, detail::make_seed_let(make_plummer(48, 7)), 1e-3, 0}));
  add(wire::FrameType::kParticles, wire::encode_particles(2, parts, /*with_forces=*/true));
  add(wire::FrameType::kHello, wire::encode_hello(3, 40123));
  {
    domain::SimConfig cfg;
    cfg.nranks = 2;
    cfg.trace = true;
    cfg.let_cache = true;
    add(wire::FrameType::kConfig, wire::encode_config(cfg));
  }
  {
    wire::StepBegin sb;
    sb.step = 4;
    sb.mode = wire::StepMode::kHub;
    sb.bounds = {{-1, -1, -1}, {1, 1, 1}};
    sb.active = {1, 1};
    sb.boxes = {AABB{{-1, -1, -1}, {0, 0, 0}}, AABB{{0, 0, 0}, {1, 1, 1}}};
    sb.parts = parts;
    add(wire::FrameType::kStepBegin, wire::encode_step_begin(sb));
  }
  {
    wire::StepResult sr;
    sr.rank = 1;
    sr.let_cells = 5;
    sr.let_particles = 9;
    sr.local_count = 3;
    sr.kinetic = 0.5;
    sr.potential = -1.25;
    sr.let_sizes = {{5, 9, 128}};
    sr.boundaries = {0, sfc::kKeyEnd / 2, sfc::kKeyEnd};
    sr.traffic = {{0, 1, 1, 3, 512}};
    add(wire::FrameType::kStepResult, wire::encode_step_result(sr));
  }
  add(wire::FrameType::kShutdown, wire::encode_shutdown());
  add(wire::FrameType::kBoundaries,
      wire::encode_boundaries({0, 2, true, 64, AABB{{-1, -1, -1}, {1, 1, 1}}, 0.5}));
  add(wire::FrameType::kKeySamples, wire::encode_key_samples({1, 3, {7, 11, 13}}));
  add(wire::FrameType::kMigration, wire::encode_migration(0, 5, make_plummer(2, 3)));
  add(wire::FrameType::kPeerDirectory,
      wire::encode_peer_directory(std::vector<wire::PeerEndpoint>{
          {"127.0.0.1", 4001}, {"127.0.0.1", 4002}}));
  add(wire::FrameType::kPeerHello, wire::encode_peer_hello(1));
  {
    wire::TraceFrame tf;
    tf.src = 1;
    tf.step = 2;
    tf.recv_ns = 100;
    tf.send_ns = 250;
    tf.spans.push_back({"step.gravity", 110, 240, 1, 0, 2, -2, 64});
    tf.metrics.counters["wire.frames"] = 3.0;
    tf.metrics.gauges["pool.free"] = 1.0;
    tf.metrics.histograms["batch"] = {{1.0, 2.0}, {0, 2, 1}, 3, 4.5};
    add(wire::FrameType::kTrace, wire::encode_trace(tf));
  }
  {
    wire::JobSpec spec;
    spec.name = "fuzz";
    spec.n = 32;
    spec.steps = 2;
    spec.ranks = 1;
    spec.priority = 1;
    add(wire::FrameType::kJobSubmit, wire::encode_job_submit(spec));
  }
  {
    wire::JobStatusMsg st;
    st.job_id = 7;
    st.state = wire::JobState::kRunning;
    st.steps_done = 1;
    st.steps_total = 2;
    st.ranks = 1;
    st.n = 32;
    st.reason = "ok";
    add(wire::FrameType::kJobStatus, wire::encode_job_status(st));
  }
  {
    wire::JobResultMsg res;
    res.job_id = 7;
    res.state = wire::JobState::kCompleted;
    res.steps_done = 2;
    res.kinetic = 0.25;
    res.potential = -0.5;
    res.parts = parts;
    add(wire::FrameType::kJobResult, wire::encode_job_result(res));
  }
  add(wire::FrameType::kJobCancel, wire::encode_job_cancel(7));
  {
    wire::SnapshotMsg snap;
    snap.job_id = 7;
    snap.next_step = 3;
    snap.sets = {make_plummer(2, 5), make_plummer(3, 6)};
    add(wire::FrameType::kSnapshot, wire::encode_snapshot(snap));
  }
  add(wire::FrameType::kMetricsQuery, wire::encode_metrics_query());
  {
    metrics::Snapshot snap;
    snap.counters["server.jobs.completed"] = 2.0;
    snap.gauges["server.pool.slots_free"] = 3.0;
    snap.histograms["step.seconds"] = {{0.1}, {1, 2}, 3, 0.9};
    add(wire::FrameType::kMetricsReport, wire::encode_metrics_report(snap));
  }
  add(wire::FrameType::kLetDelta, make_let_delta_scenario().delta_frame);
  return out;
}

// Decode `frame` with the decoder matching its header type. `cache` backs
// the kLetDelta patch path (and the kLet cache-reset path when non-null);
// with no cache a LetDelta exercises the hard "no cached base" rejection.
// Throws WireError on any malformed input — anything else is a fuzz finding.
inline void decode_any(std::span<const std::uint8_t> frame,
                       wire::LetCacheEntry* cache = nullptr) {
  switch (wire::frame_type(frame)) {
    case wire::FrameType::kLet:
      if (cache != nullptr) {
        wire::decode_let_cached(frame, *cache);
      } else {
        wire::decode_let(frame);
      }
      break;
    case wire::FrameType::kParticles: wire::decode_particles(frame); break;
    case wire::FrameType::kHello: wire::decode_hello(frame); break;
    case wire::FrameType::kConfig: wire::decode_config(frame); break;
    case wire::FrameType::kStepBegin: wire::decode_step_begin(frame); break;
    case wire::FrameType::kStepResult: wire::decode_step_result(frame); break;
    case wire::FrameType::kShutdown: break;  // header-only: frame_type() validated it
    case wire::FrameType::kBoundaries: wire::decode_boundaries(frame); break;
    case wire::FrameType::kKeySamples: wire::decode_key_samples(frame); break;
    case wire::FrameType::kMigration: wire::decode_migration(frame); break;
    case wire::FrameType::kPeerDirectory: wire::decode_peer_directory(frame); break;
    case wire::FrameType::kPeerHello: wire::decode_peer_hello(frame); break;
    case wire::FrameType::kTrace: wire::decode_trace(frame); break;
    case wire::FrameType::kJobSubmit: wire::decode_job_submit(frame); break;
    case wire::FrameType::kJobStatus: wire::decode_job_status(frame); break;
    case wire::FrameType::kJobResult: wire::decode_job_result(frame); break;
    case wire::FrameType::kJobCancel: wire::decode_job_cancel(frame); break;
    case wire::FrameType::kSnapshot: wire::decode_snapshot(frame); break;
    case wire::FrameType::kMetricsQuery: break;  // header-only
    case wire::FrameType::kMetricsReport: wire::decode_metrics_report(frame); break;
    case wire::FrameType::kLetDelta: {
      wire::LetCacheEntry fresh;
      wire::decode_let_cached(frame, cache != nullptr ? *cache : fresh);
      break;
    }
    default:
      throw wire::WireError("wire decode: unknown frame type");
  }
}

}  // namespace bonsai::fuzz
