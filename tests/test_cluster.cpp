// Cluster-mode correctness: the hub and SPMD socket drivers against the
// in-process Simulation. Workers run as in-process threads speaking the real
// socket protocol (the on_listen seam hands them the coordinator's ephemeral
// port), so these tests exercise the genuine wire path — demux, allgathers,
// peer migration, LET routing — without fixed ports or child processes.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "domain/cluster.hpp"
#include "domain/simulation.hpp"
#include "util/compare.hpp"
#include "util/ic.hpp"

namespace bonsai {
namespace {

using domain::ClusterConfig;
using domain::ClusterMode;
using domain::ClusterSimulation;
using domain::SimConfig;
namespace wire = domain::wire;

// Joins the worker threads after the coordinator under test destructs (and
// has therefore posted Shutdown) — declare the pool before the simulation.
struct WorkerPool {
  std::vector<std::thread> threads;
  ~WorkerPool() {
    for (std::thread& t : threads)
      if (t.joinable()) t.join();
  }
};

ClusterConfig cluster_config(const SimConfig& sim, ClusterMode mode, WorkerPool& pool,
                             domain::SocketTopology topology = domain::SocketTopology::kStar) {
  ClusterConfig cfg;
  cfg.sim = sim;
  cfg.mode = mode;
  cfg.topology = topology;
  cfg.spawn_workers = false;
  const int nranks = sim.nranks;
  cfg.on_listen = [&pool, nranks, topology](std::uint16_t port) {
    for (int r = 0; r < nranks; ++r)
      pool.threads.emplace_back([port, r, topology] {
        try {
          domain::run_worker("127.0.0.1", port, r, /*threads=*/1, topology,
                             /*listen_port=*/0);
        } catch (...) {
          // Teardown races surface as socket errors inside the worker; the
          // coordinator-side assertions are the test.
        }
      });
  };
  return cfg;
}

SimConfig forces_only_config(int nranks) {
  SimConfig cfg;
  cfg.nranks = nranks;
  cfg.theta = 0.4;
  cfg.eps = 1e-3;
  cfg.dt = 0.0;
  return cfg;
}

std::uint64_t traffic_bytes(const domain::StepReport& rep, wire::FrameType type) {
  std::uint64_t bytes = 0;
  for (const wire::PeerTraffic& t : rep.traffic)
    if (t.type == static_cast<std::uint16_t>(type)) bytes += t.bytes;
  return bytes;
}

std::uint64_t traffic_frames(const domain::StepReport& rep, wire::FrameType type) {
  std::uint64_t frames = 0;
  for (const wire::PeerTraffic& t : rep.traffic)
    if (t.type == static_cast<std::uint16_t>(type)) frames += t.frames;
  return frames;
}

std::uint64_t routed_frames(const domain::StepReport& rep, wire::FrameType type) {
  std::uint64_t frames = 0;
  for (const wire::PeerTraffic& t : rep.routed)
    if (t.type == static_cast<std::uint16_t>(type)) frames += t.frames;
  return frames;
}

TEST(ClusterSpmd, ReproducesInProcDecompositionAndForces) {
  const ParticleSet global = make_plummer(1200, 77);
  const SimConfig cfg = forces_only_config(3);

  domain::Simulation inproc(cfg);
  inproc.init(global);
  const domain::StepReport in_rep = inproc.step();
  const ParticleSet in_got = inproc.gather();

  WorkerPool pool;
  ClusterSimulation spmd(cluster_config(cfg, ClusterMode::kSpmd, pool));
  spmd.init(global);
  const domain::StepReport sp_rep = spmd.step();
  const ParticleSet sp_got = spmd.gather();

  // The distributed sampling must cut the *identical* partition the
  // centralized update computes (same pooled samples, same arithmetic), and
  // the coordinator's cross-check must have accepted it from every worker.
  const auto in_bounds = inproc.decomposition().boundaries();
  const auto sp_bounds = spmd.decomposition().boundaries();
  ASSERT_EQ(in_bounds.size(), sp_bounds.size());
  for (std::size_t i = 0; i < in_bounds.size(); ++i)
    EXPECT_EQ(in_bounds[i], sp_bounds[i]) << "boundary " << i;

  EXPECT_EQ(sp_rep.num_particles, in_rep.num_particles);
  EXPECT_EQ(sp_rep.migrated, in_rep.migrated);
  EXPECT_EQ(sp_rep.let_cells, in_rep.let_cells);
  EXPECT_EQ(sp_rep.let_particles, in_rep.let_particles);

  // Identical decomposition + identical per-rank walks; only the remote-LET
  // accumulation order (arrival order) may differ, which perturbs forces at
  // rounding level — far below the ~1e-6 rank-boundary MAC error.
  ASSERT_EQ(sp_got.size(), in_got.size());
  EXPECT_LT(median_acc_error(sp_got, in_got), 1e-9);

  // Aggregated worker energy partials agree with the in-process sums.
  EXPECT_NEAR(spmd.kinetic_energy(), inproc.kinetic_energy(),
              1e-9 * std::abs(inproc.kinetic_energy()) + 1e-12);
  EXPECT_NEAR(spmd.potential_energy(), inproc.potential_energy(),
              1e-9 * std::abs(inproc.potential_energy()));
}

TEST(ClusterSpmd, SteadyStateMigrationBytesAreSmallFractionOfHub) {
  // A drifting Plummer sphere stepped in both cluster modes: after the
  // bootstrap step, SPMD's Particles-class wire volume (migration cells plus
  // the now particle-free StepBegin/StepResult frames) must collapse to a
  // small fraction of hub mode's O(N) per-step batches.
  const std::size_t n = 1000;
  const ParticleSet global = make_plummer(n, 5);
  SimConfig cfg = forces_only_config(2);
  cfg.dt = 1e-3;

  std::vector<domain::StepReport> hub_reps, spmd_reps;
  {
    WorkerPool pool;
    ClusterSimulation hub(cluster_config(cfg, ClusterMode::kHub, pool));
    hub.init(global);
    for (int s = 0; s < 3; ++s) hub_reps.push_back(hub.step());
  }
  {
    WorkerPool pool;
    ClusterSimulation spmd(cluster_config(cfg, ClusterMode::kSpmd, pool));
    spmd.init(global);
    for (int s = 0; s < 3; ++s) spmd_reps.push_back(spmd.step());
  }

  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(hub_reps[s].num_particles, n);
    EXPECT_EQ(spmd_reps[s].num_particles, n);
  }
  // Hub ships every particle out and back every step; resident SPMD ships
  // only boundary crossers once warm. The issue's acceptance bar is < 25%;
  // in practice the ratio sits around 1%.
  for (int s = 1; s < 3; ++s) {
    EXPECT_LT(spmd_reps[s].part_wire.bytes, hub_reps[s].part_wire.bytes / 4)
        << "step " << s;
    EXPECT_GT(hub_reps[s].part_wire.bytes, n * 100);  // O(N) both directions
  }
  // The domain allgathers are the price of decentralization: bounded by
  // samples, not by N.
  for (int s = 0; s < 3; ++s) EXPECT_GT(spmd_reps[s].dom_wire.frames, 0u);
}

TEST(ClusterSpmd, TrafficMatrixCoversTheProtocol) {
  const ParticleSet global = make_plummer(600, 13);
  SimConfig cfg = forces_only_config(3);
  cfg.dt = 1e-3;
  const std::uint64_t nranks = 3;

  WorkerPool pool;
  ClusterSimulation spmd(cluster_config(cfg, ClusterMode::kSpmd, pool));
  spmd.init(global);
  spmd.step();
  const domain::StepReport rep = spmd.step();  // steady state

  // Every worker posts one Migration frame to each peer and two Boundaries
  // allgather rounds; the coordinator posts one StepBegin per worker and
  // books one StepResult per worker on receive.
  EXPECT_EQ(traffic_frames(rep, wire::FrameType::kMigration), nranks * (nranks - 1));
  EXPECT_EQ(traffic_frames(rep, wire::FrameType::kBoundaries), 2 * nranks * (nranks - 1));
  EXPECT_EQ(traffic_frames(rep, wire::FrameType::kKeySamples), nranks * (nranks - 1));
  EXPECT_EQ(traffic_frames(rep, wire::FrameType::kStepBegin), nranks);
  EXPECT_EQ(traffic_frames(rep, wire::FrameType::kStepResult), nranks);
  // No O(N) Particles frames in an SPMD steady-state step.
  EXPECT_EQ(traffic_frames(rep, wire::FrameType::kParticles), 0u);
  // The matrix and the wire summaries account the same LET volume.
  EXPECT_EQ(traffic_bytes(rep, wire::FrameType::kLet), rep.let_wire.bytes);
  // Star routing: every peer frame crossed the coordinator — the baseline
  // the mesh topology eliminates (see ClusterSpmdMesh).
  EXPECT_EQ(routed_frames(rep, wire::FrameType::kMigration), nranks * (nranks - 1));
  EXPECT_EQ(routed_frames(rep, wire::FrameType::kBoundaries), 2 * nranks * (nranks - 1));
  EXPECT_EQ(routed_frames(rep, wire::FrameType::kKeySamples), nranks * (nranks - 1));
  EXPECT_GT(routed_frames(rep, wire::FrameType::kLet), 0u);
  EXPECT_EQ(routed_frames(rep, wire::FrameType::kStepBegin), 0u);  // control is terminated,
  EXPECT_EQ(routed_frames(rep, wire::FrameType::kStepResult), 0u); // not routed
}

TEST(ClusterSpmd, MultiStepDriftPreservesPopulationAndForces) {
  const std::size_t n = 800;
  const ParticleSet global = make_plummer(n, 29);
  SimConfig cfg = forces_only_config(2);
  cfg.dt = 2e-3;

  WorkerPool pool;
  ClusterSimulation spmd(cluster_config(cfg, ClusterMode::kSpmd, pool));
  spmd.init(global);
  std::uint64_t migrated_total = 0;
  for (int s = 0; s < 4; ++s) {
    const domain::StepReport rep = spmd.step();
    EXPECT_EQ(rep.num_particles, n);
    migrated_total += rep.migrated;
  }
  EXPECT_EQ(spmd.num_particles(), n);

  const ParticleSet got = spmd.gather();
  ASSERT_EQ(got.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(got.id[i], i);  // ids unique and complete after migrations
    ASSERT_TRUE(std::isfinite(got.ax[i]) && std::isfinite(got.ay[i]) &&
                std::isfinite(got.az[i]) && std::isfinite(got.pot[i]));
  }
  (void)migrated_total;  // any value is legal; population checks are the bar
}

TEST(ClusterSpmdMesh, ReproducesInProcForcesWithNothingRoutedThroughCoordinator) {
  // The mesh tentpole: same physics as the star (and therefore as the
  // in-process run), with the coordinator's routed-frame matrix empty — all
  // LET/Boundaries/KeySamples/Migration traffic travels the pair sockets.
  const ParticleSet global = make_plummer(900, 77);
  SimConfig cfg = forces_only_config(3);
  cfg.dt = 1e-3;

  domain::Simulation inproc(cfg);
  inproc.init(global);
  inproc.step();
  const domain::StepReport in_rep2 = inproc.step();
  const ParticleSet in_got = inproc.gather();

  WorkerPool pool;
  ClusterSimulation mesh(
      cluster_config(cfg, ClusterMode::kSpmd, pool, domain::SocketTopology::kMesh));
  mesh.init(global);
  const domain::StepReport rep1 = mesh.step();
  const domain::StepReport rep2 = mesh.step();  // steady state
  const ParticleSet mesh_got = mesh.gather();

  ASSERT_EQ(mesh_got.size(), in_got.size());
  EXPECT_LT(median_acc_error(mesh_got, in_got), 1e-9);
  EXPECT_EQ(rep2.num_particles, in_rep2.num_particles);
  EXPECT_EQ(rep2.migrated, in_rep2.migrated);

  // The send-side matrix still covers the full peer protocol...
  const std::uint64_t nranks = 3;
  EXPECT_EQ(traffic_frames(rep2, wire::FrameType::kMigration), nranks * (nranks - 1));
  EXPECT_EQ(traffic_frames(rep2, wire::FrameType::kBoundaries),
            2 * nranks * (nranks - 1));
  EXPECT_EQ(traffic_frames(rep2, wire::FrameType::kKeySamples), nranks * (nranks - 1));
  // ...but none of it crossed the coordinator: zero routed frames of any
  // class, both on the bootstrap step and in steady state.
  EXPECT_TRUE(rep1.routed.empty());
  EXPECT_TRUE(rep2.routed.empty());
}

TEST(ClusterHubMesh, MatchesInProcForces) {
  // Hub state model over the mesh fabric: only LETs travel peer-to-peer
  // (migration is coordinator-local in hub mode), and none are routed.
  const ParticleSet global = make_plummer(700, 3);
  const SimConfig cfg = forces_only_config(2);

  domain::Simulation inproc(cfg);
  inproc.init(global);
  inproc.step();
  const ParticleSet in_got = inproc.gather();

  WorkerPool pool;
  ClusterSimulation hub(
      cluster_config(cfg, ClusterMode::kHub, pool, domain::SocketTopology::kMesh));
  hub.init(global);
  const domain::StepReport rep = hub.step();
  const ParticleSet hub_got = hub.gather();

  ASSERT_EQ(hub_got.size(), in_got.size());
  EXPECT_LT(median_acc_error(hub_got, in_got), 1e-9);
  EXPECT_GT(traffic_frames(rep, wire::FrameType::kLet), 0u);  // LETs did flow
  EXPECT_TRUE(rep.routed.empty());                            // just not through the hub
}

TEST(ClusterShutdown, DeadWorkerDoesNotStrandTheOthers) {
  // Shutdown-broadcast race: rank 0 connects, says hello, then drops dead
  // before serving a single frame. The coordinator's teardown must still
  // deliver Shutdown to ranks 1 and 2 — best-effort per peer — so they exit
  // cleanly instead of blocking forever on a control frame that a mid-loop
  // broadcast failure would have skipped.
  SimConfig cfg = forces_only_config(3);
  WorkerPool pool;
  std::array<std::atomic<int>, 3> exit_codes{};
  for (auto& c : exit_codes) c.store(-2);

  ClusterConfig ccfg;
  ccfg.sim = cfg;
  ccfg.mode = ClusterMode::kHub;
  ccfg.spawn_workers = false;
  ccfg.on_listen = [&pool, &exit_codes](std::uint16_t port) {
    pool.threads.emplace_back([port, &exit_codes] {
      // The defector: announces rank 0, takes its Config, then drops dead
      // without ever serving a step or waiting for Shutdown.
      try {
        auto net = domain::SocketTransport::connect("127.0.0.1", port, 0);
        (void)net->recv(0);
        exit_codes[0].store(0);
      } catch (...) {
        exit_codes[0].store(1);
      }
    });
    for (int r = 1; r < 3; ++r)
      pool.threads.emplace_back([port, r, &exit_codes] {
        try {
          exit_codes[static_cast<std::size_t>(r)].store(
              domain::run_worker("127.0.0.1", port, r, /*threads=*/1));
        } catch (...) {
          exit_codes[static_cast<std::size_t>(r)].store(1);
        }
      });
  };

  {
    ClusterSimulation sim(ccfg);
    // No step: construction (config broadcast) then teardown, with rank 0
    // already gone. The destructor must neither throw nor hang.
  }
  for (std::thread& t : pool.threads) t.join();
  EXPECT_EQ(exit_codes[1].load(), 0) << "rank 1 did not see Shutdown";
  EXPECT_EQ(exit_codes[2].load(), 0) << "rank 2 did not see Shutdown";
}

TEST(ClusterHub, StillMatchesInProcForces) {
  // Differential guard: the hub driver must keep working unchanged next to
  // the SPMD path (it shares the worker loop and the report plumbing).
  const ParticleSet global = make_plummer(900, 3);
  const SimConfig cfg = forces_only_config(2);

  domain::Simulation inproc(cfg);
  inproc.init(global);
  inproc.step();
  const ParticleSet in_got = inproc.gather();

  WorkerPool pool;
  ClusterSimulation hub(cluster_config(cfg, ClusterMode::kHub, pool));
  hub.init(global);
  const domain::StepReport rep = hub.step();
  const ParticleSet hub_got = hub.gather();

  ASSERT_EQ(hub_got.size(), in_got.size());
  EXPECT_LT(median_acc_error(hub_got, in_got), 1e-9);
  // Hub mode's per-step Particles-class volume stays O(N): the StepBegin /
  // StepResult frames carry the full population.
  EXPECT_GT(rep.part_wire.bytes, global.size() * 100);
}

}  // namespace
}  // namespace bonsai
