#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/cli.hpp"
#include "util/flops.hpp"
#include "util/histogram.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace bonsai {
namespace {

TEST(Random, DeterministicForFixedSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Random, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Random, UniformInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Random, UniformMeanAndVariance) {
  Xoshiro256 rng(11);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 5e-3);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 5e-3);
}

TEST(Random, GaussianMoments) {
  Xoshiro256 rng(13);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 1e-2);
  EXPECT_NEAR(s.stddev(), 1.0, 1e-2);
}

TEST(Random, UnitSphereIsUnitAndIsotropic) {
  Xoshiro256 rng(17);
  RunningStats sx, sy, sz;
  for (int i = 0; i < 50000; ++i) {
    const Vec3d v = rng.unit_sphere();
    EXPECT_NEAR(norm(v), 1.0, 1e-12);
    sx.add(v.x);
    sy.add(v.y);
    sz.add(v.z);
  }
  EXPECT_NEAR(sx.mean(), 0.0, 1e-2);
  EXPECT_NEAR(sy.mean(), 0.0, 1e-2);
  EXPECT_NEAR(sz.mean(), 0.0, 1e-2);
}

TEST(Random, Hash64IsDeterministicAndSpread) {
  EXPECT_EQ(hash64(123), hash64(123));
  EXPECT_NE(hash64(123), hash64(124));
}

TEST(Flops, PaperOperationCounts) {
  // §VI-A: 23 flops per p-p, 65 per p-c, rsqrt counted as 4.
  EXPECT_EQ(kFlopsPerPP, 23u);
  EXPECT_EQ(kFlopsPerPC, 65u);
  EXPECT_EQ(kFlopsPerRsqrt, 4u);
  // p-p: 4 sub + 3 mul + 2*6 fma + 4 rsqrt = 23.
  EXPECT_EQ(4 + 3 + 2 * 6 + 4, 23);
  // p-c: 4 sub + 6 add + 17 mul + 2*17 fma + 4 rsqrt = 65.
  EXPECT_EQ(4 + 6 + 17 + 2 * 17 + 4, 65);
}

TEST(Flops, InteractionStatsAccumulate) {
  InteractionStats a{100, 10};
  InteractionStats b{50, 5};
  a += b;
  EXPECT_EQ(a.p2p, 150u);
  EXPECT_EQ(a.p2c, 15u);
  EXPECT_EQ(a.flops(), 150u * 23u + 15u * 65u);
  EXPECT_DOUBLE_EQ(a.p2p_per_particle(15), 10.0);
  EXPECT_DOUBLE_EQ(a.p2c_per_particle(15), 1.0);
}

TEST(Flops, RateConversions) {
  EXPECT_DOUBLE_EQ(gflops_rate(2'000'000'000ull, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(tflops_rate(5'000'000'000'000ull, 2.5), 2.0);
  EXPECT_DOUBLE_EQ(gflops_rate(100, 0.0), 0.0);
}

TEST(TimeBreakdown, AccumulatesByNamePreservingOrder) {
  TimeBreakdown bd;
  bd.add("Sorting", 0.1);
  bd.add("Tree-construction", 0.2);
  bd.add("Sorting", 0.05);
  EXPECT_DOUBLE_EQ(bd.get("Sorting"), 0.15);
  EXPECT_DOUBLE_EQ(bd.get("Tree-construction"), 0.2);
  EXPECT_DOUBLE_EQ(bd.get("missing"), 0.0);
  EXPECT_NEAR(bd.total(), 0.35, 1e-15);
  ASSERT_EQ(bd.entries().size(), 2u);
  EXPECT_EQ(bd.entries()[0].name, "Sorting");
  EXPECT_EQ(bd.entries()[1].name, "Tree-construction");
}

TEST(TimeBreakdown, MergeAndScale) {
  TimeBreakdown a, b;
  a.add("x", 1.0);
  b.add("x", 2.0);
  b.add("y", 4.0);
  a.merge(b);
  a.scale(0.5);
  EXPECT_DOUBLE_EQ(a.get("x"), 1.5);
  EXPECT_DOUBLE_EQ(a.get("y"), 2.0);
}

TEST(ScopedTimer, RecordsNonNegativeTime) {
  TimeBreakdown bd;
  {
    ScopedTimer t(bd, "scope");
    volatile double sink = 0.0;
    for (int i = 0; i < 1000; ++i) sink = sink + std::sqrt(static_cast<double>(i));
    (void)sink;
  }
  EXPECT_GE(bd.get("scope"), 0.0);
}

TEST(Histogram1D, BinningAndPeak) {
  Histogram1D h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(5.6);
  h.add(9.999);
  h.add(10.0);   // out of range: dropped
  h.add(-0.01);  // out of range: dropped
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
  EXPECT_DOUBLE_EQ(h.count(5), 2.0);
  EXPECT_EQ(h.peak_bin(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
}

TEST(Histogram2D, BinningAndWeights) {
  Histogram2D h(0.0, 4.0, 4, 0.0, 2.0, 2);
  h.add(0.1, 0.1, 2.0);
  h.add(3.9, 1.9);
  h.add(4.0, 1.0);  // dropped
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
  EXPECT_DOUBLE_EQ(h.count(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(3, 1), 1.0);
  EXPECT_DOUBLE_EQ(h.max_count(), 2.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.13809, 1e-4);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Percentile, InterpolatesBetweenSamples) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.5);
}

TEST(TextTable, AlignsColumnsAndPrintsHeaderRule) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", TextTable::num(1.5, 1)});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("| alpha "), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

CommandLine make_cli() {
  CommandLine cli;
  cli.add_option("n", "N", "particle count");
  cli.add_option("theta", "T", "opening angle");
  cli.add_switch("verbose", "chatty output");
  cli.add_switch("validate", "check forces");
  cli.add_option("missing", "X", "never passed");
  cli.add_switch("quiet", "never passed");
  return cli;
}

TEST(CommandLine, ParsesFlagsAndPositionals) {
  const char* argv[] = {"prog", "--n=100", "--theta", "0.4", "input.dat", "--verbose"};
  CommandLine cli = make_cli();
  cli.parse(6, argv);
  EXPECT_EQ(cli.get_int("n", 0), 100);
  EXPECT_DOUBLE_EQ(cli.get_double("theta", 0.7), 0.4);
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_FALSE(cli.get_bool("quiet", false));
  EXPECT_EQ(cli.get("missing", "dflt"), "dflt");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "input.dat");
}

TEST(CommandLine, RegisteredSwitchDoesNotSwallowPositional) {
  // The historical parser consumed "file.dat" as the value of --validate;
  // registration makes boolean switches value-free.
  const char* argv[] = {"prog", "--validate", "file.dat", "--n", "32"};
  CommandLine cli = make_cli();
  cli.parse(5, argv);
  EXPECT_TRUE(cli.get_bool("validate", false));
  EXPECT_EQ(cli.get_int("n", 0), 32);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "file.dat");
}

TEST(CommandLine, UnknownFlagAndMalformedValuesRaiseCliError) {
  CommandLine cli = make_cli();
  const char* unknown[] = {"prog", "--frobnicate"};
  EXPECT_THROW(cli.parse(2, unknown), CliError);

  CommandLine cli2 = make_cli();
  const char* bad_int[] = {"prog", "--n=abc", "--theta=x1", "--verbose=maybe"};
  cli2.parse(4, bad_int);  // parse accepts the strings...
  EXPECT_THROW(cli2.get_int("n", 0), CliError);  // ...typed access validates
  EXPECT_THROW(cli2.get_double("theta", 0.0), CliError);
  EXPECT_THROW(cli2.get_bool("verbose", false), CliError);
}

TEST(CommandLine, MissingValueAndNegatedSwitch) {
  CommandLine cli = make_cli();
  const char* missing[] = {"prog", "--n"};
  EXPECT_THROW(cli.parse(2, missing), CliError);

  CommandLine cli2 = make_cli();
  const char* neg[] = {"prog", "--verbose=false"};
  cli2.parse(2, neg);
  EXPECT_FALSE(cli2.get_bool("verbose", true));
}

TEST(CommandLine, HelpListsRegisteredFlags) {
  const CommandLine cli = make_cli();
  const std::string help = cli.help("prog", "test driver");
  EXPECT_NE(help.find("--n N"), std::string::npos);
  EXPECT_NE(help.find("--verbose"), std::string::npos);
  EXPECT_NE(help.find("chatty output"), std::string::npos);
}

}  // namespace
}  // namespace bonsai
