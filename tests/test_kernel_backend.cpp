// The batched interaction-list engine: backend name parsing, cross-backend
// force agreement against the inline reference walk, useful-vs-padded flops
// accounting, batch edge cases and queue overflow/flush behaviour.
#include "tree/kernel_backend.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "tree/octree.hpp"
#include "tree/traverse.hpp"
#include "util/compare.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"

namespace bonsai {
namespace {

ParticleSet clustered_cloud(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  ParticleSet parts;
  parts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3d dir = rng.unit_sphere();
    const double r = rng.uniform() * rng.uniform();  // centrally concentrated
    parts.add({dir * r, {0, 0, 0}, 1.0 / static_cast<double>(n), i});
  }
  return parts;
}

struct WalkSetup {
  ParticleSet parts;
  Octree tree;
  std::vector<TargetGroup> groups;
};

WalkSetup make_setup(std::size_t n, std::uint64_t seed, double theta, int ncrit = 64,
                     int nleaf = 16) {
  WalkSetup s;
  s.parts = clustered_cloud(n, seed);
  sfc::KeySpace space(s.parts.bounds());
  sort_by_keys(s.parts, space);
  s.tree.build(s.parts, nleaf);
  s.tree.compute_properties(s.parts, theta);
  s.groups = make_groups(s.parts, ncrit);
  return s;
}

// Worst per-particle relative acceleration difference between two runs over
// the same (sorted) particle set.
double max_rel_acc_diff(const ParticleSet& a, const ParticleSet& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double ref = std::max(norm(b.acc(i)), 1e-300);
    worst = std::max(worst, norm(a.acc(i) - b.acc(i)) / ref);
  }
  return worst;
}

// Forces + stats from the batched walk with one backend (fresh accumulators).
InteractionStats batched_forces(WalkSetup& s, ParticleSet& out, KernelBackend backend,
                                const TraversalConfig& base,
                                std::size_t queue_capacity = InteractionQueue::kDefaultCapacity) {
  out = s.parts;
  out.zero_forces();
  TraversalConfig cfg = base;
  cfg.backend = backend;
  InteractionQueue queue(queue_capacity);
  return traverse_groups_batched(s.tree.view(out), out, s.groups, cfg, /*self=*/true,
                                 queue);
}

TEST(KernelBackendNames, RoundTripAndRejects) {
  for (const KernelBackend b :
       {KernelBackend::kScalar, KernelBackend::kSimd, KernelBackend::kSimdFloat}) {
    const auto parsed = kernel_backend_from_name(kernel_backend_name(b));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, b);
  }
  EXPECT_FALSE(kernel_backend_from_name("cuda").has_value());
  EXPECT_FALSE(kernel_backend_from_name("").has_value());
  EXPECT_FALSE(kernel_backend_from_name("SIMD").has_value());
}

TEST(KernelBackend, AllBackendsAgreeWithInlineWalk) {
  WalkSetup s = make_setup(3000, 61, 0.4);
  TraversalConfig cfg;
  cfg.theta = 0.4;
  cfg.eps = 1e-2;

  ParticleSet inlined = s.parts;
  inlined.zero_forces();
  const InteractionStats inline_stats =
      traverse_groups(s.tree.view(inlined), inlined, s.groups, cfg, /*self=*/true);
  ASSERT_GT(inline_stats.p2p, 0u);
  ASSERT_GT(inline_stats.p2c, 0u);
  EXPECT_EQ(inline_stats.p2p_padded, inline_stats.p2p);  // inline pads nothing
  EXPECT_EQ(inline_stats.batches(), 0u);

  ParticleSet scalar, simd, simd_float;
  const InteractionStats scalar_stats =
      batched_forces(s, scalar, KernelBackend::kScalar, cfg);
  const InteractionStats simd_stats = batched_forces(s, simd, KernelBackend::kSimd, cfg);
  const InteractionStats float_stats =
      batched_forces(s, simd_float, KernelBackend::kSimdFloat, cfg);

  // Identical useful counts: the emission mirrors the inline MAC decisions.
  for (const InteractionStats* bs : {&scalar_stats, &simd_stats, &float_stats}) {
    EXPECT_EQ(bs->p2p, inline_stats.p2p);
    EXPECT_EQ(bs->p2c, inline_stats.p2c);
    EXPECT_GT(bs->batches(), 0u);
  }
  // Scalar replays without padding; SIMD lanes pad to the batch width.
  EXPECT_EQ(scalar_stats.padded_flops(), scalar_stats.useful_flops());
  EXPECT_GE(simd_stats.p2p_padded, simd_stats.p2p);
  EXPECT_GE(simd_stats.p2c_padded, simd_stats.p2c);
  EXPECT_GT(simd_stats.padded_flops(), 0u);
  EXPECT_LE(simd_stats.fill_ratio(), 1.0);
  EXPECT_GT(simd_stats.fill_ratio(), 0.5);  // ncrit=64 groups keep batches dense

  // Forces: scalar replays the same kernels in near-identical order; the
  // double SIMD path differs only by summation order; the float path by
  // single-precision arithmetic.
  EXPECT_LT(max_rel_acc_diff(scalar, inlined), 1e-12);
  EXPECT_LT(max_rel_acc_diff(simd, inlined), 1e-10);
  EXPECT_LT(median_acc_error(simd_float, inlined), 1e-5);
  EXPECT_LT(max_rel_acc_diff(simd, scalar), 1e-10);
}

TEST(KernelBackend, DisjointSourceTargetWalkAgrees) {
  // self = false (the LET/remote-gravity path): no self-pairs to mask.
  WalkSetup src = make_setup(1200, 71, 0.4);
  ParticleSet targets = clustered_cloud(500, 72);
  sfc::KeySpace space(targets.bounds());
  sort_by_keys(targets, space);
  const std::vector<TargetGroup> groups = make_groups(targets, 64);

  TraversalConfig cfg;
  cfg.eps = 1e-2;
  ParticleSet inlined = targets;
  inlined.zero_forces();
  const InteractionStats inline_stats =
      traverse_groups(src.tree.view(src.parts), inlined, groups, cfg, /*self=*/false);

  for (const KernelBackend b : {KernelBackend::kScalar, KernelBackend::kSimd}) {
    ParticleSet got = targets;
    got.zero_forces();
    TraversalConfig bcfg = cfg;
    bcfg.backend = b;
    InteractionQueue queue;
    const InteractionStats stats = traverse_groups_batched(
        src.tree.view(src.parts), got, groups, bcfg, /*self=*/false, queue);
    EXPECT_EQ(stats.p2p, inline_stats.p2p);
    EXPECT_EQ(stats.p2c, inline_stats.p2c);
    EXPECT_LT(max_rel_acc_diff(got, inlined), 1e-10);
  }
}

TEST(KernelBackend, MonopoleOnlyWalkAgrees) {
  // quadrupole = false: scalar replays pc_kernel_monopole; the SIMD paths run
  // the quadrupole arithmetic with zeroed moments, which is identical math.
  WalkSetup s = make_setup(1500, 83, 0.5);
  TraversalConfig cfg;
  cfg.eps = 1e-2;
  cfg.quadrupole = false;

  ParticleSet inlined = s.parts;
  inlined.zero_forces();
  traverse_groups(s.tree.view(inlined), inlined, s.groups, cfg, /*self=*/true);

  ParticleSet scalar, simd;
  batched_forces(s, scalar, KernelBackend::kScalar, cfg);
  batched_forces(s, simd, KernelBackend::kSimd, cfg);
  EXPECT_LT(max_rel_acc_diff(scalar, inlined), 1e-12);
  EXPECT_LT(max_rel_acc_diff(simd, inlined), 1e-10);
}

TEST(KernelBackend, MultipoleLeafBatch) {
  // A handcrafted LET-style view: an internal root that the MAC never accepts
  // over two multipole-leaf children. Both must be staged as cell batches and
  // match the inline walk.
  const ParticleSet targets = [] {
    ParticleSet t = clustered_cloud(100, 91);
    sfc::KeySpace space(t.bounds());
    sort_by_keys(t, space);
    return t;
  }();

  std::vector<TreeNode> nodes(3);
  nodes[0].kind = NodeKind::kInternal;
  nodes[0].part_begin = 0;
  nodes[0].part_end = 1;  // non-empty so the walk does not skip it
  nodes[0].first_child = 1;
  nodes[0].num_children = 2;
  nodes[0].rcrit = 1e30;  // never MAC-accepted
  for (int c = 1; c <= 2; ++c) {
    nodes[c].kind = NodeKind::kMultipoleLeaf;
    nodes[c].mp.mass = 1.5 * c;
    nodes[c].mp.com = {3.0 * c, -2.0, 1.0};
    nodes[c].mp.quad.add_outer({0.1, 0.2, -0.1}, nodes[c].mp.mass);
  }
  const TreeView view{nodes, {}, {}, {}, {}};
  const std::vector<TargetGroup> groups = make_groups(targets, 64);

  TraversalConfig cfg;
  cfg.eps = 1e-2;
  ParticleSet inlined = targets;
  inlined.zero_forces();
  const InteractionStats inline_stats =
      traverse_groups(view, inlined, groups, cfg, /*self=*/false);
  EXPECT_EQ(inline_stats.p2c, 2 * targets.size());
  EXPECT_EQ(inline_stats.p2p, 0u);

  for (const KernelBackend b :
       {KernelBackend::kScalar, KernelBackend::kSimd, KernelBackend::kSimdFloat}) {
    ParticleSet got = targets;
    got.zero_forces();
    TraversalConfig bcfg = cfg;
    bcfg.backend = b;
    InteractionQueue queue;
    const InteractionStats stats =
        traverse_groups_batched(view, got, groups, bcfg, /*self=*/false, queue);
    EXPECT_EQ(stats.p2c, inline_stats.p2c);
    EXPECT_EQ(stats.pc_batches, groups.size());
    EXPECT_EQ(stats.pp_batches, 0u);
    const double tol = b == KernelBackend::kSimdFloat ? 1e-5 : 1e-12;
    EXPECT_LT(max_rel_acc_diff(got, inlined), tol);
  }
}

TEST(KernelBackend, EmptyAndDegenerateWalks) {
  WalkSetup s = make_setup(200, 97, 0.4);
  TraversalConfig cfg;
  InteractionQueue queue;

  // Zero-width target range: nothing staged, nothing drained.
  TargetGroup g;
  g.begin = g.end = 7;
  s.parts.zero_forces();
  const InteractionStats empty_stats = traverse_one_group_batched(
      s.tree.view(s.parts), s.parts, g, cfg, /*self=*/true, queue);
  EXPECT_EQ(empty_stats.p2p + empty_stats.p2c, 0u);
  EXPECT_EQ(empty_stats.batches(), 0u);

  // Empty source view: no-op.
  const InteractionStats no_src = traverse_one_group_batched(
      TreeView{}, s.parts, s.groups[0], cfg, /*self=*/true, queue);
  EXPECT_EQ(no_src.batches(), 0u);

  // A single self-particle system: the only candidate pair is the masked
  // self-interaction — forces must come out exactly zero and finite.
  ParticleSet one;
  one.add({{0.5, 0.5, 0.5}, {0, 0, 0}, 1.0, 0});
  sfc::KeySpace space(AABB{{0, 0, 0}, {1, 1, 1}});
  sort_by_keys(one, space);
  Octree tree;
  tree.build(one, 16);
  tree.compute_properties(one, 0.4);
  const std::vector<TargetGroup> one_group = make_groups(one, 64);
  for (const KernelBackend b :
       {KernelBackend::kScalar, KernelBackend::kSimd, KernelBackend::kSimdFloat}) {
    one.zero_forces();
    TraversalConfig bcfg;
    bcfg.backend = b;
    bcfg.eps = 0.0;  // the masked lane must stay finite even unsoftened
    InteractionQueue q;
    const InteractionStats stats =
        traverse_groups_batched(tree.view(one), one, one_group, bcfg, /*self=*/true, q);
    EXPECT_EQ(stats.p2p, 0u) << kernel_backend_name(b);
    EXPECT_TRUE(std::isfinite(one.pot[0]));
    EXPECT_DOUBLE_EQ(one.ax[0], 0.0);
    EXPECT_DOUBLE_EQ(one.ay[0], 0.0);
    EXPECT_DOUBLE_EQ(one.az[0], 0.0);
    EXPECT_DOUBLE_EQ(one.pot[0], 0.0);
  }
}

TEST(KernelBackend, TinyCapacityFlushesMidWalkAndMatches) {
  // A queue whose capacity is far below one walk's staging demand must flush
  // mid-walk (splitting batches) and still produce the same counts and
  // forces as an unconstrained queue.
  WalkSetup s = make_setup(2000, 103, 0.4);
  TraversalConfig cfg;
  cfg.eps = 1e-2;

  for (const KernelBackend b : {KernelBackend::kScalar, KernelBackend::kSimd}) {
    ParticleSet roomy, tiny;
    const InteractionStats roomy_stats = batched_forces(s, roomy, b, cfg);
    const InteractionStats tiny_stats =
        batched_forces(s, tiny, b, cfg, /*queue_capacity=*/48);
    EXPECT_EQ(tiny_stats.p2p, roomy_stats.p2p) << kernel_backend_name(b);
    EXPECT_EQ(tiny_stats.p2c, roomy_stats.p2c);
    EXPECT_GT(tiny_stats.batches(), roomy_stats.batches());  // runs were split
    // Scalar replay is order-stable under splitting (per-cell and per-target
    // accumulation is unchanged); SIMD splits change only summation order.
    if (b == KernelBackend::kScalar) {
      EXPECT_LT(max_rel_acc_diff(tiny, roomy), 1e-13);
    } else {
      EXPECT_LT(max_rel_acc_diff(tiny, roomy), 1e-11);
    }
  }
}

TEST(KernelBackend, FlopAccountingInvariants) {
  WalkSetup s = make_setup(1024, 113, 0.4);
  TraversalConfig cfg;
  cfg.eps = 1e-2;
  ParticleSet out;
  const InteractionStats stats = batched_forces(s, out, KernelBackend::kSimd, cfg);

  EXPECT_EQ(stats.useful_flops(), stats.p2p * kFlopsPerPP + stats.p2c * kFlopsPerPC);
  EXPECT_EQ(stats.padded_flops(),
            stats.p2p_padded * kFlopsPerPP + stats.p2c_padded * kFlopsPerPC);
  EXPECT_GE(stats.padded_flops(), stats.useful_flops());
  // Every drained batch appears exactly once in the histogram.
  std::uint64_t hist_total = 0;
  for (const std::uint64_t c : stats.batch_hist) hist_total += c;
  EXPECT_EQ(hist_total, stats.batches());

  // observe_batch buckets by floor(log2): bucket b covers [2^b, 2^(b+1)).
  InteractionStats h;
  h.observe_batch(1);
  h.observe_batch(7);
  h.observe_batch(8);
  h.observe_batch(~std::uint64_t{0});  // clamps into the last bucket
  EXPECT_EQ(h.batch_hist[0], 1u);
  EXPECT_EQ(h.batch_hist[2], 1u);
  EXPECT_EQ(h.batch_hist[3], 1u);
  EXPECT_EQ(h.batch_hist[kBatchHistBuckets - 1], 1u);
}

}  // namespace
}  // namespace bonsai
