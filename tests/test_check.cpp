// The invariant framework itself, plus one violation probe per adopted
// seam: octree structure, decomposition boundaries, LET cache mirrors and
// job-server pool slots. The framework tests pin the contract (typed
// CheckError, file:line + expression + streamed message, BNS_DCHECK
// argument non-evaluation in plain Release builds).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "domain/decomposition.hpp"
#include "domain/let.hpp"
#include "domain/wire.hpp"
#include "serve/server.hpp"
#include "sfc/keys.hpp"
#include "tree/octree.hpp"
#include "util/check.hpp"
#include "util/ic.hpp"

namespace bonsai {
namespace {

namespace wire = domain::wire;

TEST(Check, PassingCheckIsSilent) {
  EXPECT_NO_THROW(BNS_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(BNS_CHECK(true, "never ", "formatted"));
}

TEST(Check, ThrowsTypedCheckErrorDerivedFromLogicError) {
  EXPECT_THROW(BNS_CHECK(false), CheckError);
  EXPECT_THROW(BNS_CHECK(false), std::logic_error);  // legacy catch sites
}

TEST(Check, MessageCarriesFileLineExpressionAndStreamedArgs) {
  try {
    const int lhs = 2, rhs = 3;
    BNS_CHECK(lhs == rhs, "population drifted: ", lhs, " vs ", rhs);
    FAIL() << "BNS_CHECK(false) did not throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test_check.cpp:"), std::string::npos) << what;
    EXPECT_NE(what.find("check failed: lhs == rhs"), std::string::npos) << what;
    EXPECT_NE(what.find("population drifted: 2 vs 3"), std::string::npos) << what;
  }
}

TEST(Check, MessagelessCheckEndsAtTheExpression) {
  try {
    BNS_CHECK(0 > 1);
    FAIL() << "BNS_CHECK(false) did not throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("check failed: 0 > 1"), std::string::npos) << what;
    EXPECT_EQ(what.find("—"), std::string::npos) << what;  // no dangling em dash
  }
}

TEST(Check, DcheckEvaluatesArgumentsOnlyWhenEnabled) {
  int evaluations = 0;
  auto probe = [&evaluations] {
    ++evaluations;
    return true;
  };
  BNS_DCHECK(probe(), "side effect ", evaluations);
  static_cast<void>(probe);  // only the disabled macro leaves it unused
  // In plain Release builds the macro is ((void)0): zero cost, argument
  // untouched. In Debug and sanitizer builds it runs like BNS_CHECK.
  EXPECT_EQ(evaluations, kDcheckEnabled ? 1 : 0);
}

// --- Adopted seam: octree structural invariants ------------------------------

Octree make_tree(ParticleSet& parts) {
  const sfc::KeySpace space(parts.bounds());
  sort_by_keys(parts, space);
  Octree tree;
  tree.build(parts);
  return tree;
}

TEST(CheckSeams, BuiltOctreePassesInvariants) {
  ParticleSet parts = make_plummer(512, 3);
  const Octree tree = make_tree(parts);
  EXPECT_NO_THROW(tree.check_invariants());
}

TEST(CheckSeams, CorruptedChildPointerIsCaught) {
  ParticleSet parts = make_plummer(512, 3);
  Octree tree = make_tree(parts);
  ASSERT_FALSE(tree.root().is_leaf());
  tree.mutable_nodes()[0].first_child = 0;  // self-referential child block
  EXPECT_THROW(tree.check_invariants(), CheckError);
}

TEST(CheckSeams, ChildlessInternalNodeIsCaught) {
  ParticleSet parts = make_plummer(512, 3);
  Octree tree = make_tree(parts);
  tree.mutable_nodes()[0].num_children = 0;
  EXPECT_THROW(tree.check_invariants(), CheckError);
}

TEST(CheckSeams, LeafClaimingChildrenIsCaught) {
  ParticleSet parts = make_plummer(512, 3);
  Octree tree = make_tree(parts);
  for (TreeNode& node : tree.mutable_nodes()) {
    if (!node.is_leaf()) continue;
    node.num_children = 2;
    break;
  }
  EXPECT_THROW(tree.check_invariants(), CheckError);
}

// --- Adopted seam: decomposition boundary monotonicity -----------------------

TEST(CheckSeams, DecompositionInvariantsHoldAfterUpdateDomain) {
  const ParticleSet a = make_plummer(400, 5);
  const ParticleSet b = make_plummer(300, 6);
  const ParticleSet* ranks[] = {&a, &b};
  const domain::DomainUpdate upd =
      domain::update_domain(ranks, 2, sfc::CurveType::kHilbert, 64, 8, {});
  EXPECT_NO_THROW(upd.decomp.check_invariants(2));
  EXPECT_THROW(upd.decomp.check_invariants(3), CheckError);
}

TEST(CheckSeams, NonMonotoneBoundariesAreCaught) {
  EXPECT_THROW(
      domain::Decomposition::from_boundaries({0, sfc::kKeyEnd / 2, 1, sfc::kKeyEnd}),
      CheckError);
  EXPECT_THROW(domain::Decomposition::from_boundaries({1, sfc::kKeyEnd}), CheckError);
}

// --- Adopted seam: LetCacheEntry mirror consistency --------------------------

TEST(CheckSeams, CommittedLetCachePassesConsistency) {
  ParticleSet parts = make_plummer(128, 7);
  const sfc::KeySpace space(parts.bounds());
  sort_by_keys(parts, space);
  Octree tree;
  tree.build(parts);
  tree.compute_properties(parts, 0.5);
  const domain::LetTree let =
      domain::build_let(tree.view(parts), AABB{{4, 4, 4}, {6, 6, 6}});

  wire::LetCacheEntry entry;
  EXPECT_NO_THROW(entry.check_consistency());  // unsynced and empty
  wire::decode_let_cached(wire::encode_let({0, let, 0.0, 0}), entry);
  EXPECT_NO_THROW(entry.check_consistency());

  wire::LetCacheEntry torn = entry;
  torn.node_hist1.pop_back();  // mirror out of step with the tree
  EXPECT_THROW(torn.check_consistency(), CheckError);

  wire::LetCacheEntry aged = entry;
  ASSERT_FALSE(aged.node_age.empty());
  aged.node_age[0] = 9;  // outside the quadratic prediction window
  EXPECT_THROW(aged.check_consistency(), CheckError);

  wire::LetCacheEntry ghost;
  ghost.version = 2;  // claims sync but holds nothing
  if (!entry.tree.nodes.empty()) ghost.tree = entry.tree;
  EXPECT_THROW(ghost.check_consistency(), CheckError);
}

// --- Adopted seam: job-server pool-slot accounting ---------------------------

TEST(CheckSeams, BalancedPoolLedgerPasses) {
  const std::vector<int> running = {2, 3};
  EXPECT_NO_THROW(serve::check_pool_slots(8, 3, running));
  EXPECT_NO_THROW(serve::check_pool_slots(4, 4, {}));
}

TEST(CheckSeams, PoolLedgerViolationsAreCaught) {
  const std::vector<int> running = {2, 3};
  EXPECT_THROW(serve::check_pool_slots(8, 4, running), CheckError);   // leak
  EXPECT_THROW(serve::check_pool_slots(8, -1, {}), CheckError);       // negative free
  EXPECT_THROW(serve::check_pool_slots(4, 8, {}), CheckError);        // free > total
  const std::vector<int> zombie = {0};
  EXPECT_THROW(serve::check_pool_slots(4, 4, zombie), CheckError);    // slotless runner
}

}  // namespace
}  // namespace bonsai
