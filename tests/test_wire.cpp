// Wire-format round-trips and hard rejection of malformed frames, plus the
// transport backends the frames travel through. Decoders must throw
// WireError on any truncated/corrupted/mismatched buffer — and must never
// read out of bounds or hand the traversal a malformed tree.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "domain/channel.hpp"
#include "domain/decomposition.hpp"
#include "domain/let.hpp"
#include "domain/transport.hpp"
#include "domain/wire.hpp"
#include "util/ic.hpp"

namespace bonsai {
namespace {

using domain::LetTree;
namespace wire = domain::wire;

// A LET with real structure: built from a Plummer tree against a displaced
// remote box, so it mixes internal nodes, multipole leaves and particle
// leaves.
LetTree make_real_let() {
  ParticleSet parts = make_plummer(512, 7);
  const sfc::KeySpace space(parts.bounds());
  sort_by_keys(parts, space);
  Octree tree;
  tree.build(parts);
  tree.compute_properties(parts, 0.5);
  const AABB remote{{4.0, 4.0, 4.0}, {6.0, 6.0, 6.0}};
  return domain::build_let(tree.view(parts), remote);
}

void expect_same_let(const LetTree& a, const LetTree& b) {
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  ASSERT_EQ(a.x, b.x);  // bit-for-bit doubles
  ASSERT_EQ(a.y, b.y);
  ASSERT_EQ(a.z, b.z);
  ASSERT_EQ(a.m, b.m);
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    const TreeNode& n1 = a.nodes[i];
    const TreeNode& n2 = b.nodes[i];
    EXPECT_EQ(n1.key_begin, n2.key_begin);
    EXPECT_EQ(n1.key_end, n2.key_end);
    EXPECT_EQ(n1.part_begin, n2.part_begin);
    EXPECT_EQ(n1.part_end, n2.part_end);
    EXPECT_EQ(n1.first_child, n2.first_child);
    EXPECT_EQ(n1.num_children, n2.num_children);
    EXPECT_EQ(n1.level, n2.level);
    EXPECT_EQ(n1.kind, n2.kind);
    EXPECT_EQ(n1.mp.mass, n2.mp.mass);
    EXPECT_EQ(n1.mp.com.x, n2.mp.com.x);
    EXPECT_EQ(n1.mp.quad.q, n2.mp.quad.q);
    EXPECT_EQ(n1.rcrit, n2.rcrit);
    EXPECT_EQ(n1.box.lo.x, n2.box.lo.x);
    EXPECT_EQ(n1.box.hi.z, n2.box.hi.z);
  }
}

TEST(Wire, EmptyLetRoundTrip) {
  const std::vector<std::uint8_t> frame = wire::encode_let({3, LetTree{}, 0.25, 0});
  EXPECT_EQ(wire::frame_type(frame), wire::FrameType::kLet);
  const wire::LetMessage msg = wire::decode_let(frame);
  EXPECT_EQ(msg.src, 3);
  EXPECT_DOUBLE_EQ(msg.export_seconds, 0.25);
  EXPECT_EQ(msg.wire_bytes, frame.size());
  EXPECT_TRUE(msg.let.empty());
  EXPECT_EQ(msg.let.num_cells(), 0u);
}

TEST(Wire, SingleMultipoleLeafLetRoundTrip) {
  LetTree let;
  TreeNode nd;
  nd.kind = NodeKind::kMultipoleLeaf;
  nd.key_begin = 0;
  nd.key_end = sfc::kKeyEnd;
  nd.mp.mass = 2.5;
  nd.mp.com = {0.5, -0.25, 1.0 / 3.0};
  nd.mp.quad.q = {1, 2, 3, 4, 5, 6};
  nd.rcrit = 0.75;
  nd.box = {{-1, -1, -1}, {1, 1, 1}};
  let.nodes.push_back(nd);

  const wire::LetMessage msg = wire::decode_let(wire::encode_let({0, let, 0.0, 0}));
  EXPECT_FALSE(msg.let.empty());  // a bare multipole leaf still exerts force
  expect_same_let(let, msg.let);
}

TEST(Wire, RealLetRoundTripsBitForBit) {
  const LetTree let = make_real_let();
  ASSERT_GT(let.num_cells(), 1u);
  ASSERT_GT(let.num_particles(), 0u);
  const wire::LetMessage msg = wire::decode_let(wire::encode_let({1, let, 1e-4, 0}));
  expect_same_let(let, msg.let);
}

TEST(Wire, ZeroParticleBatchRoundTrip) {
  const std::vector<std::uint8_t> frame =
      wire::encode_particles(5, ParticleSet{}, /*with_forces=*/false);
  EXPECT_EQ(wire::frame_type(frame), wire::FrameType::kParticles);
  const wire::ParticleBatch batch = wire::decode_particles(frame);
  EXPECT_EQ(batch.src, 5);
  EXPECT_FALSE(batch.with_forces);
  EXPECT_EQ(batch.parts.size(), 0u);
}

TEST(Wire, ParticleBatchRoundTripsBitForBitWithForces) {
  ParticleSet parts = make_plummer(100, 11);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    parts.ax[i] = 0.1 * static_cast<double>(i);
    parts.pot[i] = -1.0 / (1.0 + static_cast<double>(i));
    parts.key[i] = 77 * i;
  }
  const wire::ParticleBatch batch =
      wire::decode_particles(wire::encode_particles(2, parts, /*with_forces=*/true));
  EXPECT_TRUE(batch.with_forces);
  EXPECT_EQ(batch.parts.x, parts.x);
  EXPECT_EQ(batch.parts.vz, parts.vz);
  EXPECT_EQ(batch.parts.mass, parts.mass);
  EXPECT_EQ(batch.parts.id, parts.id);
  EXPECT_EQ(batch.parts.key, parts.key);
  EXPECT_EQ(batch.parts.ax, parts.ax);
  EXPECT_EQ(batch.parts.pot, parts.pot);
}

TEST(Wire, ForceFreeBatchDecodesWithZeroForces) {
  ParticleSet parts = make_plummer(16, 3);
  for (std::size_t i = 0; i < parts.size(); ++i) parts.ax[i] = 9.0;  // must not travel
  const wire::ParticleBatch batch =
      wire::decode_particles(wire::encode_particles(0, parts, /*with_forces=*/false));
  for (std::size_t i = 0; i < batch.parts.size(); ++i) {
    EXPECT_EQ(batch.parts.ax[i], 0.0);
    EXPECT_EQ(batch.parts.pot[i], 0.0);
  }
}

TEST(Wire, TruncatedFramesThrowAtEveryLength) {
  const std::vector<std::uint8_t> frame = wire::encode_let({0, make_real_let(), 0.0, 0});
  for (std::size_t len = 0; len < frame.size(); len += 13) {
    const std::vector<std::uint8_t> cut(frame.begin(),
                                        frame.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(wire::decode_let(cut), wire::WireError) << "length " << len;
  }
}

TEST(Wire, HeaderCorruptionIsRejected) {
  std::vector<std::uint8_t> frame = wire::encode_let({0, LetTree{}, 0.0, 0});

  std::vector<std::uint8_t> bad = frame;
  bad[0] ^= 0xFF;  // magic
  EXPECT_THROW(wire::frame_type(bad), wire::WireError);

  bad = frame;
  bad[4] += 1;  // version
  EXPECT_THROW(wire::decode_let(bad), wire::WireError);

  bad = frame;
  bad[8] += 1;  // payload length no longer matches the buffer
  EXPECT_THROW(wire::decode_let(bad), wire::WireError);

  // Wrong frame type for the decoder.
  EXPECT_THROW(wire::decode_particles(frame), wire::WireError);
}

TEST(Wire, EveryByteFlipEitherDecodesOrThrowsWireError) {
  // Exhaustive single-byte corruption: decode must never crash, hang or read
  // out of bounds — it either throws WireError or yields a structurally
  // valid LET (flips in coordinate payloads are indistinguishable from
  // data).
  const std::vector<std::uint8_t> frame = wire::encode_let({0, make_real_let(), 0.0, 0});
  for (std::size_t i = 0; i < frame.size(); ++i) {
    std::vector<std::uint8_t> bad = frame;
    bad[i] ^= 0xA5;
    try {
      const wire::LetMessage msg = wire::decode_let(bad);
      // Decoded trees must uphold the traversal-safety invariants.
      for (std::size_t j = 0; j < msg.let.nodes.size(); ++j) {
        const TreeNode& nd = msg.let.nodes[j];
        ASSERT_LE(nd.part_end, msg.let.num_particles());
        if (nd.kind == NodeKind::kInternal) {
          ASSERT_GT(nd.first_child, static_cast<std::int32_t>(j));
          ASSERT_LE(static_cast<std::size_t>(nd.first_child) + nd.num_children,
                    msg.let.nodes.size());
        }
      }
    } catch (const wire::WireError&) {
      // Rejected: fine.
    }
  }
}

TEST(Wire, VersionMismatchNamesBothVersions) {
  std::vector<std::uint8_t> frame = wire::encode_hello(1);
  frame[4] = static_cast<std::uint8_t>(wire::kVersion + 1);  // version LE low byte
  try {
    wire::frame_type(frame);
    FAIL() << "version mismatch must throw";
  } catch (const wire::WireError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("got " + std::to_string(wire::kVersion + 1)), std::string::npos)
        << what;
    EXPECT_NE(what.find("expected " + std::to_string(wire::kVersion)), std::string::npos)
        << what;
  }
}

TEST(Wire, MeshHandshakeFramesRoundTrip) {
  const std::vector<wire::PeerEndpoint> dir = {
      {"127.0.0.1", 40001}, {"127.0.0.1", 40002}, {"10.0.0.7", 65535}};
  const std::vector<wire::PeerEndpoint> back =
      wire::decode_peer_directory(wire::encode_peer_directory(dir));
  ASSERT_EQ(back.size(), 3u);
  for (std::size_t i = 0; i < dir.size(); ++i) {
    EXPECT_EQ(back[i].host, dir[i].host);
    EXPECT_EQ(back[i].port, dir[i].port);
  }
  EXPECT_EQ(wire::decode_peer_hello(wire::encode_peer_hello(17)), 17);
}

TEST(Wire, MeshHandshakeFramesRejectTruncationAndSurviveByteFlips) {
  const std::vector<wire::PeerEndpoint> dir = {{"127.0.0.1", 40001}, {"127.0.0.1", 2}};
  const std::vector<std::uint8_t> frame = wire::encode_peer_directory(dir);
  // Truncation at every length: always a WireError, never a crash or a read
  // past the buffer.
  for (std::size_t len = 0; len < frame.size(); ++len) {
    const std::vector<std::uint8_t> cut(frame.begin(),
                                        frame.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(wire::decode_peer_directory(cut), wire::WireError) << len;
  }
  // An empty directory (no ranks) is structurally invalid.
  EXPECT_THROW(
      wire::decode_peer_directory(wire::encode_peer_directory(
          std::vector<wire::PeerEndpoint>{})),
      wire::WireError);
  // Exhaustive single-byte corruption: throw or decode to a bounded value.
  for (std::size_t i = 0; i < frame.size(); ++i) {
    std::vector<std::uint8_t> bad = frame;
    bad[i] ^= 0xA5;
    try {
      const std::vector<wire::PeerEndpoint> got = wire::decode_peer_directory(bad);
      EXPECT_LE(got.size(), 255u);
      for (const wire::PeerEndpoint& p : got) EXPECT_LE(p.host.size(), bad.size());
    } catch (const wire::WireError&) {
    }
  }
  const std::vector<std::uint8_t> ph = wire::encode_peer_hello(3);
  for (std::size_t len = 0; len < ph.size(); ++len) {
    const std::vector<std::uint8_t> cut(ph.begin(),
                                        ph.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(wire::decode_peer_hello(cut), wire::WireError) << len;
  }
}

TEST(Wire, BoundariesRoundTripsBothPhases) {
  wire::Boundaries pre;
  pre.src = 3;
  pre.step = 17;
  pre.post_migration = false;
  pre.count = 4096;
  pre.box = {{-1.5, -2.5, -3.5}, {1.25, 2.25, 3.25}};
  pre.weight = 1.75e-6;
  const wire::Boundaries back = wire::decode_boundaries(wire::encode_boundaries(pre));
  EXPECT_EQ(back.src, 3);
  EXPECT_EQ(back.step, 17);
  EXPECT_FALSE(back.post_migration);
  EXPECT_EQ(back.count, 4096u);
  EXPECT_EQ(back.box.lo.x, -1.5);
  EXPECT_EQ(back.box.hi.z, 3.25);
  EXPECT_EQ(back.weight, 1.75e-6);  // bit-for-bit

  wire::Boundaries post;
  post.src = 0;
  post.step = 17;
  post.post_migration = true;
  post.count = 0;  // empty rank: default (invalid) box must survive
  const wire::Boundaries pback = wire::decode_boundaries(wire::encode_boundaries(post));
  EXPECT_TRUE(pback.post_migration);
  EXPECT_EQ(pback.count, 0u);
  EXPECT_FALSE(pback.box.valid());
}

TEST(Wire, KeySamplesRoundTripBitForBit) {
  wire::KeySamples ks;
  ks.src = 2;
  ks.step = 5;
  for (std::uint64_t i = 0; i < 1000; ++i) ks.keys.push_back(i * 0x9E3779B97F4A7C15ull);
  const wire::KeySamples back = wire::decode_key_samples(wire::encode_key_samples(ks));
  EXPECT_EQ(back.src, 2);
  EXPECT_EQ(back.step, 5);
  EXPECT_EQ(back.keys, ks.keys);

  // An empty rank contributes an empty sample set.
  const wire::KeySamples empty = wire::decode_key_samples(
      wire::encode_key_samples({4, 9, {}}));
  EXPECT_EQ(empty.src, 4);
  EXPECT_TRUE(empty.keys.empty());
}

TEST(Wire, MigrationRoundTripsBitForBitAndForceFree) {
  ParticleSet parts = make_plummer(64, 19);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    parts.key[i] = 13 * i + 7;
    parts.ax[i] = 5.0;  // forces must not travel
  }
  const wire::MigrationMsg msg =
      wire::decode_migration(wire::encode_migration(1, 23, parts));
  EXPECT_EQ(msg.src, 1);
  EXPECT_EQ(msg.step, 23);
  EXPECT_EQ(msg.parts.x, parts.x);
  EXPECT_EQ(msg.parts.vz, parts.vz);
  EXPECT_EQ(msg.parts.mass, parts.mass);
  EXPECT_EQ(msg.parts.id, parts.id);
  EXPECT_EQ(msg.parts.key, parts.key);
  for (std::size_t i = 0; i < msg.parts.size(); ++i) EXPECT_EQ(msg.parts.ax[i], 0.0);

  const wire::MigrationMsg empty =
      wire::decode_migration(wire::encode_migration(0, 1, ParticleSet{}));
  EXPECT_EQ(empty.parts.size(), 0u);
}

TEST(Wire, SpmdFramesRejectTruncationAtEveryLength) {
  wire::KeySamples ks{1, 2, {10, 20, 30, 40}};
  wire::Boundaries b;
  b.src = 1;
  b.count = 7;
  const std::vector<std::vector<std::uint8_t>> frames = {
      wire::encode_boundaries(b),
      wire::encode_key_samples(ks),
      wire::encode_migration(0, 3, make_plummer(16, 1)),
  };
  for (const auto& frame : frames) {
    for (std::size_t len = 0; len < frame.size(); ++len) {
      const std::vector<std::uint8_t> cut(
          frame.begin(), frame.begin() + static_cast<std::ptrdiff_t>(len));
      switch (wire::FrameType{frame[6]}) {
        case wire::FrameType::kBoundaries:
          EXPECT_THROW(wire::decode_boundaries(cut), wire::WireError) << len;
          break;
        case wire::FrameType::kKeySamples:
          EXPECT_THROW(wire::decode_key_samples(cut), wire::WireError) << len;
          break;
        default:
          EXPECT_THROW(wire::decode_migration(cut), wire::WireError) << len;
          break;
      }
    }
  }
}

TEST(Wire, SpmdFrameByteFlipsEitherDecodeOrThrow) {
  // Exhaustive single-byte corruption over the three SPMD frames: decode
  // must never crash, hang or read out of bounds — it throws WireError or
  // yields a structurally valid value (flips inside f64/key payloads are
  // indistinguishable from data).
  {
    wire::Boundaries b;
    b.src = 2;
    b.step = 4;
    b.count = 123;
    b.box = {{-1, -1, -1}, {1, 1, 1}};
    const std::vector<std::uint8_t> frame = wire::encode_boundaries(b);
    for (std::size_t i = 0; i < frame.size(); ++i) {
      std::vector<std::uint8_t> bad = frame;
      bad[i] ^= 0xA5;
      try {
        (void)wire::decode_boundaries(bad);
      } catch (const wire::WireError&) {
      }
    }
  }
  {
    const std::vector<std::uint8_t> frame =
        wire::encode_key_samples({0, 1, {1, 2, 3, 4, 5, 6, 7, 8}});
    for (std::size_t i = 0; i < frame.size(); ++i) {
      std::vector<std::uint8_t> bad = frame;
      bad[i] ^= 0xA5;
      try {
        const wire::KeySamples ks = wire::decode_key_samples(bad);
        EXPECT_LE(ks.keys.size(), bad.size());  // counts always payload-bounded
      } catch (const wire::WireError&) {
      }
    }
  }
  {
    const std::vector<std::uint8_t> frame =
        wire::encode_migration(1, 2, make_plummer(32, 9));
    for (std::size_t i = 0; i < frame.size(); ++i) {
      std::vector<std::uint8_t> bad = frame;
      bad[i] ^= 0xA5;
      try {
        const wire::MigrationMsg msg = wire::decode_migration(bad);
        // Force-free invariant survives any accepted mutation.
        for (std::size_t p = 0; p < msg.parts.size(); ++p)
          ASSERT_EQ(msg.parts.pot[p], 0.0);
      } catch (const wire::WireError&) {
      }
    }
  }
}

TEST(Wire, StepBeginModeRoundTripsAndRejectsUnknown) {
  wire::StepBegin sb;
  sb.step = 9;
  sb.mode = wire::StepMode::kSpmdStep;
  const std::vector<std::uint8_t> frame = wire::encode_step_begin(sb);
  EXPECT_EQ(wire::decode_step_begin(frame).mode, wire::StepMode::kSpmdStep);

  // The mode byte sits right after the step field in the payload.
  std::vector<std::uint8_t> bad = frame;
  bad[wire::kHeaderBytes + 4] = 200;
  EXPECT_THROW(wire::decode_step_begin(bad), wire::WireError);
}

TEST(Wire, StepResultCarriesSpmdAggregates) {
  wire::StepResult sr;
  sr.rank = 1;
  sr.migrated = 42;
  sr.local_count = 512;
  sr.kinetic = 0.25;
  sr.potential = -0.5;
  sr.part_wire = {6, 999, 0.5, 0.25};
  sr.dom_wire = {12, 333, 0.125, 0.0625};
  sr.boundaries = {0, 1000, 2000, sfc::kKeyEnd};
  sr.traffic = {{1, 0, 10, 2, 64}, {1, 2, 1, 3, 128}};
  const wire::StepResult back = wire::decode_step_result(wire::encode_step_result(sr));
  EXPECT_EQ(back.migrated, 42u);
  EXPECT_EQ(back.local_count, 512u);
  EXPECT_EQ(back.kinetic, 0.25);
  EXPECT_EQ(back.potential, -0.5);
  EXPECT_EQ(back.part_wire.bytes, 999u);
  EXPECT_EQ(back.dom_wire.frames, 12u);
  EXPECT_EQ(back.boundaries, sr.boundaries);
  ASSERT_EQ(back.traffic.size(), 2u);
  EXPECT_EQ(back.traffic[0].src, 1);
  EXPECT_EQ(back.traffic[0].dst, 0);
  EXPECT_EQ(back.traffic[0].type, 10);
  EXPECT_EQ(back.traffic[1].bytes, 128u);
  EXPECT_EQ(back.parts.size(), 0u);  // SPMD results travel particle-free
}

TEST(Wire, ControlFramesRoundTrip) {
  const wire::Hello h = wire::decode_hello(wire::encode_hello(9, 40123));
  EXPECT_EQ(h.rank, 9);
  EXPECT_EQ(h.listen_port, 40123);
  EXPECT_EQ(wire::decode_hello(wire::encode_hello(3)).listen_port, 0);  // star default
  EXPECT_EQ(wire::frame_type(wire::encode_shutdown()), wire::FrameType::kShutdown);

  domain::SimConfig cfg;
  cfg.nranks = 6;
  cfg.theta = 0.3;
  cfg.eps = 0.05;
  cfg.nleaf = 24;
  cfg.ncrit = 96;
  cfg.quadrupole = false;
  cfg.dt = 0.5e-3;
  cfg.curve = sfc::CurveType::kMorton;
  cfg.balance = domain::BalanceMode::kCost;
  cfg.trace = true;
  cfg.kernel = KernelBackend::kScalar;
  const domain::SimConfig back = wire::decode_config(wire::encode_config(cfg));
  EXPECT_EQ(back.nranks, 6);
  EXPECT_DOUBLE_EQ(back.theta, 0.3);
  EXPECT_DOUBLE_EQ(back.eps, 0.05);
  EXPECT_EQ(back.nleaf, 24);
  EXPECT_EQ(back.ncrit, 96);
  EXPECT_FALSE(back.quadrupole);
  EXPECT_DOUBLE_EQ(back.dt, 0.5e-3);
  EXPECT_EQ(back.curve, sfc::CurveType::kMorton);
  EXPECT_EQ(back.balance, domain::BalanceMode::kCost);
  EXPECT_TRUE(back.trace);
  EXPECT_EQ(back.kernel, KernelBackend::kScalar);
}

TEST(Wire, StepBeginAndResultRoundTrip) {
  wire::StepBegin sb;
  sb.step = 4;
  sb.bounds = {{-2, -2, -2}, {2, 2, 2}};
  sb.active = {1, 0, 1};
  sb.boxes.resize(3);
  sb.boxes[0] = {{-1, -1, -1}, {0, 0, 0}};
  sb.boxes[2] = {{0, 0, 0}, {1, 1, 1}};
  sb.parts = make_plummer(32, 5);
  const wire::StepBegin back = wire::decode_step_begin(wire::encode_step_begin(sb));
  EXPECT_EQ(back.step, 4);
  EXPECT_EQ(back.active, sb.active);
  EXPECT_EQ(back.parts.x, sb.parts.x);
  EXPECT_EQ(back.boxes[2].hi.x, 1.0);
  EXPECT_FALSE(back.boxes[1].valid());  // inactive rank's default box survives

  wire::StepResult sr;
  sr.rank = 2;
  sr.let_cells = 100;
  sr.let_particles = 50;
  sr.local_stats = {10, 20};
  sr.local_stats.p2p_padded = 16;
  sr.local_stats.p2c_padded = 24;
  sr.local_stats.pp_batches = 3;
  sr.local_stats.pc_batches = 2;
  sr.local_stats.batch_hist[0] = 1;
  sr.local_stats.batch_hist[kBatchHistBuckets - 1] = 4;
  sr.remote_stats = {30, 40};
  sr.times.add("Gravity local", 0.5);
  sr.times.add("Sorting SFC", 0.125);
  sr.let_sizes.push_back({7, 8, 9});
  sr.let_wire = {3, 4096, 0.25, 0.125};
  sr.parts = make_plummer(8, 1);
  const wire::StepResult rback = wire::decode_step_result(wire::encode_step_result(sr));
  EXPECT_EQ(rback.rank, 2);
  EXPECT_EQ(rback.let_cells, 100u);
  EXPECT_EQ(rback.local_stats.p2p, 10u);
  EXPECT_EQ(rback.local_stats.p2p_padded, 16u);
  EXPECT_EQ(rback.local_stats.p2c_padded, 24u);
  EXPECT_EQ(rback.local_stats.pp_batches, 3u);
  EXPECT_EQ(rback.local_stats.pc_batches, 2u);
  EXPECT_EQ(rback.local_stats.batch_hist, sr.local_stats.batch_hist);
  EXPECT_EQ(rback.remote_stats.p2c, 40u);
  EXPECT_EQ(rback.remote_stats.pp_batches, 0u);
  EXPECT_DOUBLE_EQ(rback.times.get("Gravity local"), 0.5);
  EXPECT_EQ(rback.times.entries()[1].name, "Sorting SFC");
  ASSERT_EQ(rback.let_sizes.size(), 1u);
  EXPECT_EQ(rback.let_sizes[0].bytes, 9u);
  EXPECT_EQ(rback.let_wire.bytes, 4096u);
  EXPECT_EQ(rback.parts.y, sr.parts.y);
}

wire::TraceFrame make_trace_frame() {
  wire::TraceFrame tf;
  tf.src = 2;
  tf.step = 7;
  tf.recv_ns = 1'000'000'000;
  tf.send_ns = 1'004'200'000;
  trace::Span a;
  a.name = "worker.step";
  a.begin_ns = 1'000'000'000;
  a.end_ns = 1'004'000'000;
  a.rank = 2;
  a.lane = 2;
  a.step = 7;
  trace::Span b;
  b.name = "gravity.remote";
  b.begin_ns = 1'001'000'000;
  b.end_ns = 1'003'500'000;
  b.rank = 2;
  b.lane = 2;
  b.step = 7;
  b.peer = 0;
  b.bytes = 4096;
  tf.spans = {a, b};
  tf.metrics.counters["gravity.remote.p2p"] = 12345.0;
  tf.metrics.counters["wire.let.bytes"] = 8192.0;
  tf.metrics.gauges["step.elapsed_s"] = 0.004;
  metrics::HistogramData h;
  h.bounds = {16.0, 32.0, 64.0};
  h.counts = {1, 0, 2, 0};
  h.count = 3;
  h.sum = 150.0;
  tf.metrics.histograms["let.size.bytes"] = h;
  return tf;
}

TEST(Wire, TraceFrameRoundTripsSpansAndMetrics) {
  const wire::TraceFrame tf = make_trace_frame();
  const std::vector<std::uint8_t> frame = wire::encode_trace(tf);
  EXPECT_EQ(wire::frame_type(frame), wire::FrameType::kTrace);
  const wire::TraceFrame back = wire::decode_trace(frame);
  EXPECT_EQ(back.src, 2);
  EXPECT_EQ(back.step, 7);
  EXPECT_EQ(back.recv_ns, tf.recv_ns);
  EXPECT_EQ(back.send_ns, tf.send_ns);
  ASSERT_EQ(back.spans.size(), 2u);
  EXPECT_EQ(back.spans[0].name, "worker.step");
  EXPECT_EQ(back.spans[0].begin_ns, tf.spans[0].begin_ns);
  EXPECT_EQ(back.spans[0].peer, -2);  // unset sentinel survives
  EXPECT_EQ(back.spans[1].name, "gravity.remote");
  EXPECT_EQ(back.spans[1].peer, 0);
  EXPECT_EQ(back.spans[1].bytes, 4096);
  EXPECT_EQ(back.metrics.counters, tf.metrics.counters);
  EXPECT_EQ(back.metrics.gauges.at("step.elapsed_s"), 0.004);
  const metrics::HistogramData& h = back.metrics.histograms.at("let.size.bytes");
  EXPECT_EQ(h.bounds, tf.metrics.histograms.at("let.size.bytes").bounds);
  EXPECT_EQ(h.counts, tf.metrics.histograms.at("let.size.bytes").counts);
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.sum, 150.0);
}

TEST(Wire, TraceFrameRejectsTruncationAtEveryLength) {
  const std::vector<std::uint8_t> frame = wire::encode_trace(make_trace_frame());
  for (std::size_t len = 0; len < frame.size(); ++len) {
    const std::vector<std::uint8_t> cut(frame.begin(),
                                        frame.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(wire::decode_trace(cut), wire::WireError) << "length " << len;
  }
}

TEST(Wire, TraceFrameByteFlipsEitherDecodeOrThrow) {
  // Exhaustive single-byte corruption: decode must never crash, hang or read
  // out of bounds — it throws WireError or yields a structurally valid frame
  // (spans never end before they begin, histogram counts stay sized to their
  // bounds).
  const std::vector<std::uint8_t> frame = wire::encode_trace(make_trace_frame());
  for (std::size_t i = 0; i < frame.size(); ++i) {
    std::vector<std::uint8_t> bad = frame;
    bad[i] ^= 0xA5;
    try {
      const wire::TraceFrame tf = wire::decode_trace(bad);
      EXPECT_LE(tf.spans.size(), bad.size());
      for (const trace::Span& s : tf.spans) {
        EXPECT_GE(s.end_ns, s.begin_ns);
        EXPECT_LE(s.name.size(), bad.size());
      }
      for (const auto& [name, h] : tf.metrics.histograms)
        EXPECT_EQ(h.counts.size(), h.bounds.size() + 1);
    } catch (const wire::WireError&) {
      // Rejected: fine.
    }
  }
}

// ---- Job-server frames (wire v6) -------------------------------------------

wire::JobSpec make_job_spec(bool with_parts) {
  wire::JobSpec spec;
  spec.name = "milky-way-disk";
  spec.n = 100000;
  spec.seed = 1234567;
  spec.steps = 12;
  spec.ranks = 6;
  spec.priority = -3;
  spec.theta = 0.35;
  spec.eps = 2.5e-2;
  spec.dt = 0.5e-3;
  spec.kernel = KernelBackend::kScalar;
  if (with_parts) spec.parts = make_plummer(48, 31);
  return spec;
}

TEST(Wire, JobSubmitRoundTripsBitForBit) {
  const wire::JobSpec spec = make_job_spec(/*with_parts=*/true);
  const std::vector<std::uint8_t> frame = wire::encode_job_submit(spec);
  EXPECT_EQ(wire::frame_type(frame), wire::FrameType::kJobSubmit);
  const wire::JobSpec back = wire::decode_job_submit(frame);
  EXPECT_EQ(back.name, spec.name);
  EXPECT_EQ(back.n, spec.n);
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.steps, spec.steps);
  EXPECT_EQ(back.ranks, spec.ranks);
  EXPECT_EQ(back.priority, spec.priority);
  EXPECT_EQ(back.theta, spec.theta);  // bit-for-bit doubles
  EXPECT_EQ(back.eps, spec.eps);
  EXPECT_EQ(back.dt, spec.dt);
  EXPECT_EQ(back.kernel, spec.kernel);
  EXPECT_EQ(back.parts.x, spec.parts.x);
  EXPECT_EQ(back.parts.vz, spec.parts.vz);
  EXPECT_EQ(back.parts.mass, spec.parts.mass);
  EXPECT_EQ(back.parts.id, spec.parts.id);

  // Generator form: no particles, the server makes the IC from (n, seed).
  const wire::JobSpec gen = wire::decode_job_submit(
      wire::encode_job_submit(make_job_spec(/*with_parts=*/false)));
  EXPECT_EQ(gen.parts.size(), 0u);
  EXPECT_EQ(gen.n, 100000u);
}

TEST(Wire, JobStatusRoundTripsBothDirections) {
  wire::JobStatusMsg st;
  st.job_id = 17;
  st.state = wire::JobState::kSuspended;
  st.wait = true;
  st.steps_done = 5;
  st.steps_total = 40;
  st.ranks = 3;
  st.priority = -1;
  st.n = 65536;
  st.reason = "job queue full: max_concurrent_jobs=2";
  const std::vector<std::uint8_t> frame = wire::encode_job_status(st);
  EXPECT_EQ(wire::frame_type(frame), wire::FrameType::kJobStatus);
  const wire::JobStatusMsg back = wire::decode_job_status(frame);
  EXPECT_EQ(back.job_id, 17);
  EXPECT_EQ(back.state, wire::JobState::kSuspended);
  EXPECT_TRUE(back.wait);
  EXPECT_EQ(back.steps_done, 5);
  EXPECT_EQ(back.steps_total, 40);
  EXPECT_EQ(back.ranks, 3);
  EXPECT_EQ(back.priority, -1);
  EXPECT_EQ(back.n, 65536u);
  EXPECT_EQ(back.reason, st.reason);

  // A corrupt state byte must be rejected, not cast blindly.
  std::vector<std::uint8_t> bad = frame;
  bad[wire::kHeaderBytes + 4] = 200;  // state sits right after job_id
  EXPECT_THROW(wire::decode_job_status(bad), wire::WireError);
}

TEST(Wire, JobResultRoundTripsParticlesWithForces) {
  wire::JobResultMsg res;
  res.job_id = 9;
  res.state = wire::JobState::kCompleted;
  res.steps_done = 8;
  res.kinetic = 0.25;
  res.potential = -0.5078125;
  res.parts = make_plummer(40, 3);
  for (std::size_t i = 0; i < res.parts.size(); ++i) {
    res.parts.ax[i] = 0.5 * static_cast<double>(i);
    res.parts.pot[i] = -2.0 / (1.0 + static_cast<double>(i));
  }
  const std::vector<std::uint8_t> frame = wire::encode_job_result(res);
  EXPECT_EQ(wire::frame_type(frame), wire::FrameType::kJobResult);
  const wire::JobResultMsg back = wire::decode_job_result(frame);
  EXPECT_EQ(back.job_id, 9);
  EXPECT_EQ(back.state, wire::JobState::kCompleted);
  EXPECT_EQ(back.steps_done, 8);
  EXPECT_EQ(back.kinetic, 0.25);
  EXPECT_EQ(back.potential, -0.5078125);
  EXPECT_EQ(back.parts.x, res.parts.x);
  EXPECT_EQ(back.parts.ax, res.parts.ax);  // forces travel in results
  EXPECT_EQ(back.parts.pot, res.parts.pot);
}

TEST(Wire, JobCancelRoundTrip) {
  const std::vector<std::uint8_t> frame = wire::encode_job_cancel(-7);
  EXPECT_EQ(wire::frame_type(frame), wire::FrameType::kJobCancel);
  EXPECT_EQ(wire::decode_job_cancel(frame), -7);
}

TEST(Wire, SnapshotRoundTripsPerRankSetsBitForBit) {
  wire::SnapshotMsg snap;
  snap.job_id = 4;
  snap.next_step = 11;
  snap.sets.resize(3);
  snap.sets[0] = make_plummer(32, 5);
  snap.sets[1] = make_plummer(17, 6);
  // sets[2] stays empty: a drained rank must survive the trip.
  for (auto& s : snap.sets)
    for (std::size_t i = 0; i < s.size(); ++i) {
      s.ax[i] = 0.25 * static_cast<double>(i);
      s.pot[i] = -1.0;
      s.key[i] = 99 * i;
    }
  const std::vector<std::uint8_t> frame = wire::encode_snapshot(snap);
  EXPECT_EQ(wire::frame_type(frame), wire::FrameType::kSnapshot);
  const wire::SnapshotMsg back = wire::decode_snapshot(frame);
  EXPECT_EQ(back.job_id, 4);
  EXPECT_EQ(back.next_step, 11);
  ASSERT_EQ(back.sets.size(), 3u);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(back.sets[r].x, snap.sets[r].x);
    EXPECT_EQ(back.sets[r].vy, snap.sets[r].vy);
    EXPECT_EQ(back.sets[r].ax, snap.sets[r].ax);  // checkpoints carry forces
    EXPECT_EQ(back.sets[r].pot, snap.sets[r].pot);
    EXPECT_EQ(back.sets[r].key, snap.sets[r].key);
    EXPECT_EQ(back.sets[r].id, snap.sets[r].id);
  }

  // The request form: a job id and no sets.
  wire::SnapshotMsg req;
  req.job_id = 12;
  const wire::SnapshotMsg rback = wire::decode_snapshot(wire::encode_snapshot(req));
  EXPECT_EQ(rback.job_id, 12);
  EXPECT_TRUE(rback.sets.empty());
}

TEST(Wire, MetricsQueryAndReportRoundTrip) {
  EXPECT_EQ(wire::frame_type(wire::encode_metrics_query()),
            wire::FrameType::kMetricsQuery);

  metrics::Snapshot snap = make_trace_frame().metrics;
  snap.counters["server.jobs.completed"] = 21.0;
  snap.gauges["job.num_particles{job=3}"] = 65536.0;
  const std::vector<std::uint8_t> frame = wire::encode_metrics_report(snap);
  EXPECT_EQ(wire::frame_type(frame), wire::FrameType::kMetricsReport);
  const metrics::Snapshot back = wire::decode_metrics_report(frame);
  EXPECT_EQ(back.counters, snap.counters);
  EXPECT_EQ(back.gauges, snap.gauges);
  ASSERT_EQ(back.histograms.size(), 1u);
  EXPECT_EQ(back.histograms.at("let.size.bytes").counts,
            snap.histograms.at("let.size.bytes").counts);
}

TEST(Wire, JobFramesRejectTruncationAtEveryLength) {
  wire::JobResultMsg res;
  res.job_id = 1;
  res.parts = make_plummer(8, 2);
  wire::SnapshotMsg snap;
  snap.sets = {make_plummer(8, 3), make_plummer(4, 4)};
  wire::JobStatusMsg st;
  st.reason = "because";
  const std::vector<std::vector<std::uint8_t>> frames = {
      wire::encode_job_submit(make_job_spec(/*with_parts=*/true)),
      wire::encode_job_status(st),
      wire::encode_job_result(res),
      wire::encode_job_cancel(2),
      wire::encode_snapshot(snap),
      wire::encode_metrics_report(make_trace_frame().metrics),
  };
  for (const auto& frame : frames) {
    for (std::size_t len = 0; len < frame.size(); ++len) {
      const std::vector<std::uint8_t> cut(
          frame.begin(), frame.begin() + static_cast<std::ptrdiff_t>(len));
      switch (wire::FrameType{frame[6]}) {
        case wire::FrameType::kJobSubmit:
          EXPECT_THROW(wire::decode_job_submit(cut), wire::WireError) << len;
          break;
        case wire::FrameType::kJobStatus:
          EXPECT_THROW(wire::decode_job_status(cut), wire::WireError) << len;
          break;
        case wire::FrameType::kJobResult:
          EXPECT_THROW(wire::decode_job_result(cut), wire::WireError) << len;
          break;
        case wire::FrameType::kJobCancel:
          EXPECT_THROW(wire::decode_job_cancel(cut), wire::WireError) << len;
          break;
        case wire::FrameType::kSnapshot:
          EXPECT_THROW(wire::decode_snapshot(cut), wire::WireError) << len;
          break;
        default:
          EXPECT_THROW(wire::decode_metrics_report(cut), wire::WireError) << len;
          break;
      }
    }
  }
}

TEST(Wire, JobFramesByteFlipsEitherDecodeOrThrow) {
  // Exhaustive single-byte corruption over every v6 frame: decode must never
  // crash, hang or read out of bounds — it throws WireError or yields a
  // structurally valid value (enum fields stay in range, counts stay
  // payload-bounded).
  {
    const std::vector<std::uint8_t> frame =
        wire::encode_job_submit(make_job_spec(/*with_parts=*/true));
    for (std::size_t i = 0; i < frame.size(); ++i) {
      std::vector<std::uint8_t> bad = frame;
      bad[i] ^= 0xA5;
      try {
        const wire::JobSpec spec = wire::decode_job_submit(bad);
        EXPECT_GE(spec.steps, 0);
        EXPECT_GE(spec.ranks, 0);
        EXPECT_LE(spec.ranks, 255);
        EXPECT_LE(static_cast<int>(spec.kernel),
                  static_cast<int>(KernelBackend::kSimdFloat));
        EXPECT_LE(spec.name.size(), bad.size());
      } catch (const wire::WireError&) {
      }
    }
  }
  {
    wire::JobStatusMsg st;
    st.job_id = 3;
    st.state = wire::JobState::kRunning;
    st.reason = "spinning";
    const std::vector<std::uint8_t> frame = wire::encode_job_status(st);
    for (std::size_t i = 0; i < frame.size(); ++i) {
      std::vector<std::uint8_t> bad = frame;
      bad[i] ^= 0xA5;
      try {
        const wire::JobStatusMsg got = wire::decode_job_status(bad);
        EXPECT_LE(static_cast<int>(got.state),
                  static_cast<int>(wire::JobState::kRejected));
      } catch (const wire::WireError&) {
      }
    }
  }
  {
    wire::JobResultMsg res;
    res.job_id = 1;
    res.parts = make_plummer(16, 8);
    const std::vector<std::uint8_t> frame = wire::encode_job_result(res);
    for (std::size_t i = 0; i < frame.size(); ++i) {
      std::vector<std::uint8_t> bad = frame;
      bad[i] ^= 0xA5;
      try {
        const wire::JobResultMsg got = wire::decode_job_result(bad);
        EXPECT_LE(static_cast<int>(got.state),
                  static_cast<int>(wire::JobState::kRejected));
      } catch (const wire::WireError&) {
      }
    }
  }
  {
    wire::SnapshotMsg snap;
    snap.job_id = 2;
    snap.next_step = 3;
    snap.sets = {make_plummer(12, 13), make_plummer(7, 14)};
    const std::vector<std::uint8_t> frame = wire::encode_snapshot(snap);
    for (std::size_t i = 0; i < frame.size(); ++i) {
      std::vector<std::uint8_t> bad = frame;
      bad[i] ^= 0xA5;
      try {
        const wire::SnapshotMsg got = wire::decode_snapshot(bad);
        EXPECT_LE(got.sets.size(), 255u);
      } catch (const wire::WireError&) {
      }
    }
  }
  {
    const std::vector<std::uint8_t> frame =
        wire::encode_metrics_report(make_trace_frame().metrics);
    for (std::size_t i = 0; i < frame.size(); ++i) {
      std::vector<std::uint8_t> bad = frame;
      bad[i] ^= 0xA5;
      try {
        const metrics::Snapshot got = wire::decode_metrics_report(bad);
        for (const auto& [name, h] : got.histograms)
          EXPECT_EQ(h.counts.size(), h.bounds.size() + 1);
      } catch (const wire::WireError&) {
      }
    }
  }
}

TEST(InProcTransport, FifoPerDestinationAndClose) {
  domain::InProcTransport t(2);
  t.post(0, 1, {1, 2, 3});
  t.post(0, 1, {4});
  EXPECT_EQ(t.recv(1).value(), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(t.recv(1).value(), (std::vector<std::uint8_t>{4}));
  t.close(1);
  EXPECT_FALSE(t.recv(1).has_value());
}

TEST(SocketTransport, RoutesWorkerToWorkerThroughCoordinator) {
  auto coord = domain::SocketTransport::listen(0, 2);
  ASSERT_GT(coord->port(), 0);

  std::unique_ptr<domain::SocketTransport> w0, w1;
  std::thread t0([&] { w0 = domain::SocketTransport::connect("127.0.0.1", coord->port(), 0); });
  std::thread t1([&] { w1 = domain::SocketTransport::connect("127.0.0.1", coord->port(), 1); });
  coord->accept_workers();
  t0.join();
  t1.join();

  // Worker -> worker (routed), worker -> coordinator, coordinator -> worker.
  w0->post(0, 1, wire::encode_hello(42));
  auto routed = w1->recv(1);
  ASSERT_TRUE(routed.has_value());
  EXPECT_EQ(wire::decode_hello(*routed).rank, 42);

  w1->post(1, domain::kCoordinatorRank, wire::encode_hello(7));
  auto up = coord->recv(domain::kCoordinatorRank);
  ASSERT_TRUE(up.has_value());
  EXPECT_EQ(wire::decode_hello(*up).rank, 7);

  coord->post(domain::kCoordinatorRank, 0, wire::encode_shutdown());
  auto down = w0->recv(0);
  ASSERT_TRUE(down.has_value());
  EXPECT_EQ(wire::frame_type(*down), wire::FrameType::kShutdown);

  // Coordinator teardown closes the workers' endpoints: recv fails fast.
  coord.reset();
  EXPECT_FALSE(w0->recv(0).has_value());
  EXPECT_FALSE(w1->recv(1).has_value());
}

TEST(ExchangeOverTransport, AccountsWireTraffic) {
  std::vector<ParticleSet> sets(2);
  sets[0] = make_plummer(256, 21);  // everything starts on rank 0
  const sfc::KeySpace space(sets[0].bounds());
  const domain::Decomposition decomp = domain::Decomposition::uniform(2);

  domain::InProcTransport transport(2);
  wire::WireStats ws;
  const domain::ExchangeStats ex =
      domain::exchange(sets, space, decomp, transport, &ws);
  EXPECT_EQ(ex.total, 256u);
  EXPECT_EQ(sets[0].size() + sets[1].size(), 256u);
  EXPECT_EQ(ws.frames, 2u);  // one batch each way, even if one is empty
  EXPECT_GT(ws.bytes, 0u);
  // Migrated particles and only migrated particles travel on the wire.
  const std::size_t header_free =
      ws.bytes - 2 * (wire::kHeaderBytes + 13);  // 13 = src + flags + count
  EXPECT_EQ(header_free, ex.migrated * 72);  // 9 arrays x 8 bytes each
}

}  // namespace
}  // namespace bonsai
