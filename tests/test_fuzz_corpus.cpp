// Deterministic fuzz sweeps over the seed corpus: every FrameType gets the
// truncation and byte-flip treatment through the same decode_any() dispatch
// the libFuzzer harnesses use. This closes the gap the hand-rolled per-frame
// loops left (Particles/Hello/Config/StepBegin/StepResult had round-trips
// but no adversarial coverage) and is the "fuzz loop" site tools/wire_lint.py
// requires for each enum value.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "fuzz/wire_corpus.hpp"

namespace bonsai {
namespace {

namespace wire = domain::wire;

const std::vector<fuzz::SeedFrame>& seeds() {
  static const std::vector<fuzz::SeedFrame> frames = fuzz::seed_frames();
  return frames;
}

const fuzz::LetDeltaScenario& scenario() {
  static const fuzz::LetDeltaScenario sc = fuzz::make_let_delta_scenario();
  return sc;
}

TEST(FuzzCorpus, SeedFramesCoverEveryFrameType) {
  std::set<std::uint16_t> seen;
  for (const fuzz::SeedFrame& seed : seeds()) {
    EXPECT_TRUE(seen.insert(static_cast<std::uint16_t>(seed.type)).second)
        << "duplicate seed for type " << wire::frame_type_name(seed.type);
    EXPECT_EQ(wire::frame_type(seed.frame), seed.type);
  }
  for (std::uint16_t t = 1; t <= static_cast<std::uint16_t>(wire::FrameType::kLetDelta); ++t)
    EXPECT_TRUE(seen.count(t)) << "no seed frame for FrameType value " << t;
}

TEST(FuzzCorpus, EverySeedFrameDecodes) {
  for (const fuzz::SeedFrame& seed : seeds()) {
    wire::LetCacheEntry cache = scenario().cache;
    EXPECT_NO_THROW(fuzz::decode_any(seed.frame, &cache))
        << wire::frame_type_name(seed.type);
  }
}

TEST(FuzzCorpus, EveryTruncationIsRejected) {
  for (const fuzz::SeedFrame& seed : seeds()) {
    for (std::size_t len = 0; len < seed.frame.size(); ++len) {
      const std::span<const std::uint8_t> cut(seed.frame.data(), len);
      wire::LetCacheEntry cache = scenario().cache;
      EXPECT_THROW(fuzz::decode_any(cut, &cache), wire::WireError)
          << wire::frame_type_name(seed.type) << " accepted a frame cut to " << len
          << " bytes";
    }
  }
}

TEST(FuzzCorpus, ByteFlipsNeverEscapeAsAnythingButWireError) {
  for (const fuzz::SeedFrame& seed : seeds()) {
    std::vector<std::uint8_t> bad = seed.frame;
    for (std::size_t i = 0; i < bad.size(); ++i) {
      bad[i] ^= 0xA5;
      wire::LetCacheEntry cache = scenario().cache;
      try {
        fuzz::decode_any(bad, &cache);  // a still-valid mutant is fine
      } catch (const wire::WireError&) {
        // the expected rejection
      }
      // Anything else thrown propagates and fails the test.
      bad[i] ^= 0xA5;
    }
  }
}

TEST(FuzzCorpus, DeltaScenarioAppliesAgainstItsCache) {
  wire::LetCacheEntry cache = scenario().cache;
  const std::uint64_t base = cache.version;
  const wire::LetMessage msg = wire::decode_let_cached(scenario().delta_frame, cache);
  EXPECT_EQ(cache.version, base + 1);
  EXPECT_GT(msg.let.num_cells(), 0u);
}

TEST(FuzzCorpus, RejectedDeltaLeavesCacheVersionUntouched) {
  const fuzz::LetDeltaScenario& sc = scenario();
  std::vector<std::uint8_t> bad = sc.delta_frame;
  ASSERT_GT(bad.size(), wire::kHeaderBytes + 12);
  bad[wire::kHeaderBytes + 12] ^= 0xFF;  // corrupt the base-version field
  wire::LetCacheEntry cache = sc.cache;
  const std::uint64_t base = cache.version;
  EXPECT_THROW(wire::decode_let_cached(bad, cache), wire::WireError);
  EXPECT_EQ(cache.version, base);
}

}  // namespace
}  // namespace bonsai
