// Property tests for the space-filling-curve machinery. The correctness of
// the whole decomposition strategy (§III-B1) rests on three invariants that
// are verified here:
//   1. encode/decode are inverse bijections (Morton and Hilbert);
//   2. keys are hierarchical: two points fall in the same geometric level-L
//      octree cell iff their keys share the top 3L bits;
//   3. the Hilbert curve is continuous: consecutive keys map to
//      grid-adjacent cells (this is what gives domains compact shapes).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>

#include "sfc/hilbert.hpp"
#include "sfc/keys.hpp"
#include "sfc/morton.hpp"
#include "util/random.hpp"

namespace bonsai::sfc {
namespace {

TEST(Morton, KnownValues) {
  EXPECT_EQ(morton_encode(0, 0, 0), 0u);
  EXPECT_EQ(morton_encode(0, 0, 1), 1u);  // z is least significant
  EXPECT_EQ(morton_encode(0, 1, 0), 2u);
  EXPECT_EQ(morton_encode(1, 0, 0), 4u);
  EXPECT_EQ(morton_encode(1, 1, 1), 7u);
}

TEST(Morton, RoundTripRandom) {
  Xoshiro256 rng(21);
  for (int i = 0; i < 20000; ++i) {
    const auto x = static_cast<std::uint32_t>(rng() % kCoordRange);
    const auto y = static_cast<std::uint32_t>(rng() % kCoordRange);
    const auto z = static_cast<std::uint32_t>(rng() % kCoordRange);
    const Coords c = morton_decode(morton_encode(x, y, z));
    ASSERT_EQ(c.x, x);
    ASSERT_EQ(c.y, y);
    ASSERT_EQ(c.z, z);
  }
}

TEST(Morton, MaxCoordinateRoundTrip) {
  const std::uint32_t m = kCoordRange - 1;
  const Coords c = morton_decode(morton_encode(m, m, m));
  EXPECT_EQ(c.x, m);
  EXPECT_EQ(c.y, m);
  EXPECT_EQ(c.z, m);
}

TEST(Hilbert, RoundTripRandom) {
  Xoshiro256 rng(23);
  for (int i = 0; i < 20000; ++i) {
    const auto x = static_cast<std::uint32_t>(rng() % kCoordRange);
    const auto y = static_cast<std::uint32_t>(rng() % kCoordRange);
    const auto z = static_cast<std::uint32_t>(rng() % kCoordRange);
    const Coords c = hilbert_decode(hilbert_encode(x, y, z));
    ASSERT_EQ(c.x, x);
    ASSERT_EQ(c.y, y);
    ASSERT_EQ(c.z, z);
  }
}

TEST(Hilbert, CornersRoundTrip) {
  const std::uint32_t m = kCoordRange - 1;
  for (std::uint32_t x : {0u, m})
    for (std::uint32_t y : {0u, m})
      for (std::uint32_t z : {0u, m}) {
        const Coords c = hilbert_decode(hilbert_encode(x, y, z));
        EXPECT_EQ(c.x, x);
        EXPECT_EQ(c.y, y);
        EXPECT_EQ(c.z, z);
      }
}

TEST(Hilbert, KeysAreDense) {
  // At 1 refinement level (coords restricted to 1 bit each scaled up to the
  // top bit) the 8 octants must map onto the 8 distinct top-level key groups.
  bool seen[8] = {};
  const std::uint32_t half = kCoordRange >> 1;
  for (std::uint32_t x = 0; x < 2; ++x)
    for (std::uint32_t y = 0; y < 2; ++y)
      for (std::uint32_t z = 0; z < 2; ++z) {
        const std::uint64_t key = hilbert_encode(x * half, y * half, z * half);
        const auto top = static_cast<unsigned>(key >> (3 * (kMaxLevel - 1)));
        ASSERT_LT(top, 8u);
        EXPECT_FALSE(seen[top]) << "octant key group repeated";
        seen[top] = true;
      }
}

TEST(Hilbert, CurveIsContinuous) {
  // Consecutive Hilbert indices must decode to grid-adjacent points
  // (Manhattan distance exactly 1). Check a window of the full-resolution
  // curve plus random windows.
  Xoshiro256 rng(29);
  auto manhattan = [](const Coords& a, const Coords& b) {
    auto d = [](std::uint32_t u, std::uint32_t v) {
      return u > v ? u - v : v - u;
    };
    return d(a.x, b.x) + d(a.y, b.y) + d(a.z, b.z);
  };
  Coords prev = hilbert_decode(0);
  for (std::uint64_t k = 1; k < 512; ++k) {
    const Coords cur = hilbert_decode(k);
    ASSERT_EQ(manhattan(prev, cur), 1u) << "discontinuity at key " << k;
    prev = cur;
  }
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t k = rng() % (kKeyEnd - 1);
    ASSERT_EQ(manhattan(hilbert_decode(k), hilbert_decode(k + 1)), 1u)
        << "discontinuity at key " << k;
  }
}

// Hierarchy property, parameterized over octree level: same level-L geometric
// cell <=> same top 3L key bits.
class SfcHierarchyTest : public ::testing::TestWithParam<int> {};

TEST_P(SfcHierarchyTest, HilbertKeysAreHierarchical) {
  const int level = GetParam();
  Xoshiro256 rng(31 + static_cast<std::uint64_t>(level));
  const std::uint32_t cell = kCoordRange >> level;  // grid cells per octree cell
  for (int i = 0; i < 2000; ++i) {
    const auto x1 = static_cast<std::uint32_t>(rng() % kCoordRange);
    const auto y1 = static_cast<std::uint32_t>(rng() % kCoordRange);
    const auto z1 = static_cast<std::uint32_t>(rng() % kCoordRange);
    const auto x2 = static_cast<std::uint32_t>(rng() % kCoordRange);
    const auto y2 = static_cast<std::uint32_t>(rng() % kCoordRange);
    const auto z2 = static_cast<std::uint32_t>(rng() % kCoordRange);
    const bool same_geom_cell =
        (x1 / cell == x2 / cell) && (y1 / cell == y2 / cell) && (z1 / cell == z2 / cell);
    const bool same_key_cell =
        same_cell(hilbert_encode(x1, y1, z1), hilbert_encode(x2, y2, z2), level);
    ASSERT_EQ(same_geom_cell, same_key_cell)
        << "level " << level << ": hierarchy violated";
  }
}

TEST_P(SfcHierarchyTest, MortonKeysAreHierarchical) {
  const int level = GetParam();
  Xoshiro256 rng(37 + static_cast<std::uint64_t>(level));
  const std::uint32_t cell = kCoordRange >> level;
  for (int i = 0; i < 2000; ++i) {
    const auto x1 = static_cast<std::uint32_t>(rng() % kCoordRange);
    const auto y1 = static_cast<std::uint32_t>(rng() % kCoordRange);
    const auto z1 = static_cast<std::uint32_t>(rng() % kCoordRange);
    const auto x2 = static_cast<std::uint32_t>(rng() % kCoordRange);
    const auto y2 = static_cast<std::uint32_t>(rng() % kCoordRange);
    const auto z2 = static_cast<std::uint32_t>(rng() % kCoordRange);
    const bool same_geom_cell =
        (x1 / cell == x2 / cell) && (y1 / cell == y2 / cell) && (z1 / cell == z2 / cell);
    const bool same_key_cell =
        same_cell(morton_encode(x1, y1, z1), morton_encode(x2, y2, z2), level);
    ASSERT_EQ(same_geom_cell, same_key_cell);
  }
}

INSTANTIATE_TEST_SUITE_P(AllLevels, SfcHierarchyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

TEST(Keys, CellRangeHelpers) {
  const Key span1 = cell_key_span(1);
  EXPECT_EQ(span1, kKeyEnd / 8);
  const Key k = span1 + 12345;  // inside octant 1
  EXPECT_EQ(cell_first_key(k, 1), span1);
  EXPECT_EQ(cell_last_key(k, 1), 2 * span1);
  EXPECT_EQ(octant_at_level(k, 1), 1u);
  EXPECT_EQ(cell_first_key(k, 0), 0u);
  EXPECT_EQ(cell_last_key(k, 0), kKeyEnd);
  EXPECT_EQ(cell_first_key(k, kMaxLevel), k);
}

TEST(Keys, KeySpaceMapsBoundsToFullRange) {
  AABB box{{-1.0, -1.0, -1.0}, {1.0, 1.0, 1.0}};
  KeySpace ks(box);
  const Coords lo = ks.to_coords(box.lo);
  const Coords hi = ks.to_coords(box.hi);
  EXPECT_LT(lo.x, 8u);  // near grid origin (pad shifts slightly)
  EXPECT_GT(hi.x, kCoordRange - 8u);
  EXPECT_GE(ks.cube().max_side(), 2.0);
}

TEST(Keys, KeySpaceClampsOutliers) {
  KeySpace ks(AABB{{0.0, 0.0, 0.0}, {1.0, 1.0, 1.0}});
  const Coords below = ks.to_coords(Vec3d{-5.0, -5.0, -5.0});
  const Coords above = ks.to_coords(Vec3d{5.0, 5.0, 5.0});
  EXPECT_EQ(below.x, 0u);
  EXPECT_EQ(above.x, kCoordRange - 1);
}

TEST(Keys, CellBoxContainsGeneratingPoint) {
  KeySpace ks(AABB{{-3.0, -3.0, -3.0}, {3.0, 3.0, 3.0}});
  Xoshiro256 rng(41);
  for (int i = 0; i < 500; ++i) {
    const Vec3d p{rng.uniform(-3.0, 3.0), rng.uniform(-3.0, 3.0), rng.uniform(-3.0, 3.0)};
    const Key k = ks.key(p);
    for (int level : {0, 1, 2, 4, 8}) {
      const AABB cell = ks.cell_box(k, level);
      ASSERT_TRUE(cell.contains(p))
          << "level " << level << " cell does not contain its point";
      // Cell side must match the level.
      const double expect_side = ks.cube().max_side() / static_cast<double>(1u << level);
      ASSERT_NEAR(cell.max_side(), expect_side, 1e-9 * expect_side);
    }
  }
}

TEST(Keys, NearbyPointsShareKeyPrefixes) {
  // Locality: two points within eps of each other share coarse-level cells
  // most of the time; statistically Hilbert should beat random assignment by
  // a wide margin. We check the deterministic sub-case: identical points.
  KeySpace ks(AABB{{0.0, 0.0, 0.0}, {1.0, 1.0, 1.0}});
  Xoshiro256 rng(43);
  for (int i = 0; i < 200; ++i) {
    const Vec3d p{rng.uniform(), rng.uniform(), rng.uniform()};
    EXPECT_EQ(ks.key(p), ks.key(p));
  }
}

TEST(Keys, MortonAndHilbertSpacesAreDistinctButConsistent) {
  const AABB box{{0.0, 0.0, 0.0}, {1.0, 1.0, 1.0}};
  KeySpace h(box, CurveType::kHilbert);
  KeySpace m(box, CurveType::kMorton);
  const Vec3d p{0.3, 0.7, 0.2};
  // Decode(encode(p)) lands on the same grid coordinates for both curves.
  EXPECT_EQ(h.decode(h.key(p)), m.decode(m.key(p)));
}

}  // namespace
}  // namespace bonsai::sfc
