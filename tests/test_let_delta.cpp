// Incremental LET exchange (wire v7): delta frames, per-pair caches and the
// patch-and-validate importer. The correctness bar: a patched LET must be
// indistinguishable — bit for bit — from a freshly exported full LET, a
// corrupted delta must be rejected before the patched tree can be walked,
// and a rejected frame must leave the importer's cache untouched.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "domain/let.hpp"
#include "domain/simulation.hpp"
#include "domain/wire.hpp"
#include "util/ic.hpp"

namespace bonsai {
namespace {

using domain::LetTree;
namespace wire = domain::wire;

// A drifting cloud whose per-step LET exports exercise the delta codec the
// way a real run does: coherent bulk motion plus slow internal evolution,
// so node geometry and multipoles change every step while the topology
// stays mostly stable.
class DriftingExporter {
 public:
  explicit DriftingExporter(std::size_t n, std::uint64_t seed)
      : parts_(make_plummer(n, seed)) {
    for (std::size_t i = 0; i < parts_.size(); ++i) {
      parts_.vx[i] += 0.5;
      parts_.vy[i] += 0.25;
    }
  }

  // Advance the cloud and export the LET a remote rank would receive.
  LetTree step_export() {
    for (std::size_t i = 0; i < parts_.size(); ++i) {
      parts_.x[i] += 1e-2 * parts_.vx[i];
      parts_.y[i] += 1e-2 * parts_.vy[i];
      parts_.z[i] += 1e-2 * parts_.vz[i];
    }
    const sfc::KeySpace space(parts_.bounds());
    sort_by_keys(parts_, space);
    Octree tree;
    tree.build(parts_);
    tree.compute_properties(parts_, 0.5);
    const AABB remote{{4.0, 4.0, 4.0}, {6.0, 6.0, 6.0}};
    return domain::build_let(tree.view(parts_), remote);
  }

 private:
  ParticleSet parts_;
};

void expect_same_let(const LetTree& a, const LetTree& b) {
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  ASSERT_EQ(a.x, b.x);  // bit-for-bit doubles
  ASSERT_EQ(a.y, b.y);
  ASSERT_EQ(a.z, b.z);
  ASSERT_EQ(a.m, b.m);
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    const TreeNode& n1 = a.nodes[i];
    const TreeNode& n2 = b.nodes[i];
    EXPECT_EQ(n1.key_begin, n2.key_begin);
    EXPECT_EQ(n1.key_end, n2.key_end);
    EXPECT_EQ(n1.part_begin, n2.part_begin);
    EXPECT_EQ(n1.part_end, n2.part_end);
    EXPECT_EQ(n1.first_child, n2.first_child);
    EXPECT_EQ(n1.num_children, n2.num_children);
    EXPECT_EQ(n1.level, n2.level);
    EXPECT_EQ(n1.kind, n2.kind);
    EXPECT_EQ(n1.mp.mass, n2.mp.mass);
    EXPECT_EQ(n1.mp.com.x, n2.mp.com.x);
    EXPECT_EQ(n1.mp.quad.q, n2.mp.quad.q);
    EXPECT_EQ(n1.rcrit, n2.rcrit);
    EXPECT_EQ(n1.box.lo.x, n2.box.lo.x);
    EXPECT_EQ(n1.box.hi.z, n2.box.hi.z);
  }
}

// Traversal-safety invariants every accepted decode must uphold (the same
// bounds the plain-Let fuzz test enforces).
void expect_walkable(const LetTree& let) {
  for (std::size_t j = 0; j < let.nodes.size(); ++j) {
    const TreeNode& nd = let.nodes[j];
    ASSERT_LE(nd.part_end, let.num_particles());
    if (nd.kind == NodeKind::kInternal) {
      ASSERT_GT(nd.first_child, static_cast<std::int32_t>(j));
      ASSERT_LE(static_cast<std::size_t>(nd.first_child) + nd.num_children,
                let.nodes.size());
    }
  }
}

TEST(LetDelta, WireVersionIsSeven) { EXPECT_EQ(wire::kVersion, 7); }

TEST(LetDelta, EvolvingExchangePatchesBitForBit) {
  DriftingExporter source(512, 7);
  wire::LetCacheEntry send, recv;
  std::uint64_t deltas = 0;
  for (int step = 0; step < 6; ++step) {
    const LetTree fresh = source.step_export();
    const wire::LetEncodeResult enc = wire::encode_let_cached({1, fresh, 0.0, 0}, send,
                                                              /*churn_ratio=*/0.75);
    if (step == 0) {
      EXPECT_FALSE(enc.is_delta) << "first contact must ship a full frame";
    }
    if (enc.is_delta) {
      ++deltas;
      EXPECT_EQ(wire::frame_type(enc.frame), wire::FrameType::kLetDelta);
      EXPECT_LT(enc.frame.size(), enc.full_bytes);
    }
    EXPECT_EQ(wire::peek_let_src(enc.frame), 1);
    const wire::LetMessage msg = wire::decode_let_cached(enc.frame, recv);
    EXPECT_EQ(msg.src, 1);

    // The patched tree must match the fresh export exactly — field by field
    // and, the stronger claim, byte for byte when re-encoded in full.
    expect_same_let(fresh, msg.let);
    EXPECT_EQ(wire::encode_let({1, msg.let, 0.0, 0}), wire::encode_let({1, fresh, 0.0, 0}))
        << "patched LET re-encodes differently from the full export at step " << step;

    // Exporter and importer mirrors stay in lock step.
    EXPECT_EQ(send.version, recv.version);
    EXPECT_EQ(recv.version, static_cast<std::uint64_t>(step + 1));
  }
  EXPECT_GT(deltas, 0u) << "a drifting cloud must produce delta frames";
}

TEST(LetDelta, FullFrameResetsTheCacheAndRestartsVersions) {
  DriftingExporter source(256, 11);
  wire::LetCacheEntry send, recv;
  for (int step = 0; step < 3; ++step) {
    const wire::LetEncodeResult enc =
        wire::encode_let_cached({0, source.step_export(), 0.0, 0}, send, 0.75);
    (void)wire::decode_let_cached(enc.frame, recv);
  }
  ASSERT_EQ(recv.version, 3u);
  // An out-of-band full frame (reconnect, churn fallback) unconditionally
  // resets the pair: version restarts at 1 and the next delta builds on it.
  const LetTree fresh = source.step_export();
  const std::vector<std::uint8_t> full = wire::encode_let({0, fresh, 0.0, 0});
  const wire::LetMessage msg = wire::decode_let_cached(full, recv);
  expect_same_let(fresh, msg.let);
  EXPECT_EQ(recv.version, 1u);
}

TEST(LetDelta, TruncationThrowsAtEveryLengthAndLeavesTheCacheUntouched) {
  DriftingExporter source(512, 7);
  wire::LetCacheEntry send, recv;
  (void)wire::decode_let_cached(
      wire::encode_let_cached({0, source.step_export(), 0.0, 0}, send, 0.75).frame, recv);
  const wire::LetEncodeResult enc =
      wire::encode_let_cached({0, source.step_export(), 0.0, 0}, send, 0.75);
  ASSERT_TRUE(enc.is_delta);
  for (std::size_t len = 0; len < enc.frame.size(); ++len) {
    const std::vector<std::uint8_t> cut(
        enc.frame.begin(), enc.frame.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW((void)wire::decode_let_cached(cut, recv), wire::WireError)
        << "length " << len;
    EXPECT_EQ(recv.version, 1u) << "a rejected frame must not advance the cache";
  }
  // The pristine frame still applies: the cache survived every rejection.
  (void)wire::decode_let_cached(enc.frame, recv);
  EXPECT_EQ(recv.version, 2u);
}

TEST(LetDelta, EveryByteFlipEitherPatchesValidOrThrows) {
  DriftingExporter source(512, 7);
  wire::LetCacheEntry send, recv;
  (void)wire::decode_let_cached(
      wire::encode_let_cached({0, source.step_export(), 0.0, 0}, send, 0.75).frame, recv);
  const wire::LetEncodeResult enc =
      wire::encode_let_cached({0, source.step_export(), 0.0, 0}, send, 0.75);
  ASSERT_TRUE(enc.is_delta);
  for (std::size_t i = 0; i < enc.frame.size(); ++i) {
    std::vector<std::uint8_t> bad = enc.frame;
    bad[i] ^= 0xA5;
    // Each flip patches against a copy of the synced cache so one accepted
    // mutation cannot desynchronize the probes that follow.
    wire::LetCacheEntry probe = recv;
    try {
      const wire::LetMessage msg = wire::decode_let_cached(bad, probe);
      // Accepted: the patched tree must still be safe to walk (flips in
      // value residuals are indistinguishable from data).
      expect_walkable(msg.let);
    } catch (const wire::WireError&) {
      EXPECT_EQ(probe.version, 1u) << "byte " << i;
    }
  }
  // The cache is still usable after the fuzz: the pristine delta applies.
  (void)wire::decode_let_cached(enc.frame, recv);
  EXPECT_EQ(recv.version, 2u);
}

TEST(LetDelta, BaseVersionMismatchNamesBothVersions) {
  DriftingExporter source(256, 3);
  wire::LetCacheEntry send, recv;
  for (int step = 0; step < 2; ++step) {
    (void)wire::decode_let_cached(
        wire::encode_let_cached({0, source.step_export(), 0.0, 0}, send, 0.75).frame,
        recv);
  }
  const wire::LetEncodeResult enc =
      wire::encode_let_cached({0, source.step_export(), 0.0, 0}, send, 0.75);
  ASSERT_TRUE(enc.is_delta);  // base_version = 2
  recv.version = 5;           // importer desynced (e.g. a missed frame)
  try {
    (void)wire::decode_let_cached(enc.frame, recv);
    FAIL() << "a stale base version must throw";
  } catch (const wire::WireError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find('2'), std::string::npos) << what;
    EXPECT_NE(what.find('5'), std::string::npos) << what;
  }
  EXPECT_EQ(recv.version, 5u);
}

TEST(LetDelta, DeltaAgainstEmptyCacheIsRejected) {
  DriftingExporter source(256, 5);
  wire::LetCacheEntry send, recv;
  (void)wire::encode_let_cached({0, source.step_export(), 0.0, 0}, send, 0.75);
  const wire::LetEncodeResult enc =
      wire::encode_let_cached({0, source.step_export(), 0.0, 0}, send, 0.75);
  ASSERT_TRUE(enc.is_delta);
  EXPECT_THROW((void)wire::decode_let_cached(enc.frame, recv), wire::WireError);
  EXPECT_EQ(recv.version, 0u);
}

TEST(LetDelta, TinyChurnRatioForcesFullFrames) {
  // churn_ratio ~ 0 makes every delta "too big": the exporter must fall back
  // to full frames and the stream stays decodable (the fallback path is the
  // same one topology churn triggers).
  DriftingExporter source(256, 9);
  wire::LetCacheEntry send, recv;
  for (int step = 0; step < 3; ++step) {
    const LetTree fresh = source.step_export();
    const wire::LetEncodeResult enc =
        wire::encode_let_cached({0, fresh, 0.0, 0}, send, /*churn_ratio=*/1e-9);
    EXPECT_FALSE(enc.is_delta);
    const wire::LetMessage msg = wire::decode_let_cached(enc.frame, recv);
    expect_same_let(fresh, msg.let);
    EXPECT_EQ(recv.version, 1u);
  }
}

TEST(LetDelta, EmptyTreesAlwaysShipFull) {
  wire::LetCacheEntry send;
  for (int step = 0; step < 2; ++step) {
    const wire::LetEncodeResult enc =
        wire::encode_let_cached({0, LetTree{}, 0.0, 0}, send, 0.75);
    EXPECT_FALSE(enc.is_delta);
  }
}

TEST(LetDelta, ScratchEncodeMatchesPlainEncode) {
  DriftingExporter source(256, 13);
  const LetTree let = source.step_export();
  std::vector<std::uint8_t> scratch;
  const std::vector<std::uint8_t> a = wire::encode_let_scratch({2, let, 0.5, 0}, scratch);
  const std::size_t cap = scratch.capacity();
  EXPECT_EQ(a, wire::encode_let({2, let, 0.5, 0}));
  // A second encode reuses the buffer's capacity instead of growing anew.
  const std::vector<std::uint8_t> b = wire::encode_let_scratch({2, let, 0.5, 0}, scratch);
  EXPECT_EQ(a, b);
  EXPECT_EQ(scratch.capacity(), cap);
}

TEST(LetDelta, ConfigCarriesLetCacheKnobs) {
  domain::SimConfig cfg;
  cfg.nranks = 3;
  cfg.let_cache = true;
  cfg.let_churn = 0.375;
  const domain::SimConfig got = wire::decode_config(wire::encode_config(cfg));
  EXPECT_TRUE(got.let_cache);
  EXPECT_EQ(got.let_churn, 0.375);
}

TEST(LetDelta, StepResultCarriesDeltaStats) {
  wire::StepResult sr;
  sr.rank = 1;
  sr.let_delta.full_frames = 3;
  sr.let_delta.delta_frames = 11;
  sr.let_delta.bytes_saved = 123456789;
  sr.let_delta.cache_hits = 7;
  sr.let_delta.invalidations = 2;
  const wire::StepResult got = wire::decode_step_result(wire::encode_step_result(sr));
  EXPECT_EQ(got.let_delta.full_frames, 3u);
  EXPECT_EQ(got.let_delta.delta_frames, 11u);
  EXPECT_EQ(got.let_delta.bytes_saved, 123456789u);
  EXPECT_EQ(got.let_delta.cache_hits, 7u);
  EXPECT_EQ(got.let_delta.invalidations, 2u);
}

// The end-to-end differential bar: a cached multi-rank run must reproduce
// the uncached run's forces and positions bit for bit (the deterministic
// remote-walk order makes the comparison exact).
TEST(LetDelta, CachedSimulationMatchesUncachedBitForBit) {
  ParticleSet initial = make_plummer(1200, 21);
  for (std::size_t i = 0; i < initial.size(); ++i) initial.vx[i] += 0.5;

  domain::SimConfig cfg;
  cfg.nranks = 3;
  cfg.dt = 1e-3;
  cfg.threads_per_rank = 1;
  const auto run = [&](bool cache_on) {
    domain::SimConfig c = cfg;
    c.let_cache = cache_on;
    domain::Simulation sim(c);
    sim.init(initial);
    wire::LetDeltaStats total;
    for (int s = 0; s < 5; ++s) total += sim.step().let_delta;
    if (cache_on) {
      EXPECT_GT(total.delta_frames, 0u);
    } else {
      EXPECT_EQ(total.delta_frames + total.full_frames, 0u);
    }
    return sim.gather();
  };
  const ParticleSet on = run(true);
  const ParticleSet off = run(false);
  ASSERT_EQ(on.size(), off.size());
  EXPECT_EQ(on.x, off.x);
  EXPECT_EQ(on.y, off.y);
  EXPECT_EQ(on.z, off.z);
  EXPECT_EQ(on.ax, off.ax);
  EXPECT_EQ(on.ay, off.ay);
  EXPECT_EQ(on.az, off.az);
  EXPECT_EQ(on.pot, off.pot);
}

}  // namespace
}  // namespace bonsai
