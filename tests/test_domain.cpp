// Domain decomposition, particle exchange, and Local Essential Tree
// correctness: the multi-rank pipeline must preserve the particle set
// bit-for-bit across exchanges and reproduce single-tree forces within the
// group-MAC error envelope.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "domain/channel.hpp"
#include "domain/decomposition.hpp"
#include "domain/let.hpp"
#include "domain/simulation.hpp"
#include "domain/transport.hpp"
#include "tree/direct.hpp"
#include "tree/octree.hpp"
#include "tree/traverse.hpp"
#include "util/compare.hpp"
#include "util/ic.hpp"
#include "util/stats.hpp"

namespace bonsai {
namespace {

using domain::Decomposition;
using domain::LetTree;
using domain::SimConfig;
using domain::Simulation;

// Reference forces from the single global tree's group walk, returned in
// particle-id order so they align with Simulation::gather().
ParticleSet global_tree_forces(const ParticleSet& global, double theta, double eps,
                               int nleaf = Octree::kDefaultNLeaf, int ncrit = 64,
                               std::optional<KernelBackend> backend = std::nullopt) {
  ParticleSet ref = global;
  sfc::KeySpace space(ref.bounds());
  sort_by_keys(ref, space);
  Octree tree;
  tree.build(ref, nleaf);
  tree.compute_properties(ref, theta);
  auto groups = make_groups(ref, ncrit);
  TraversalConfig cfg;
  cfg.theta = theta;
  cfg.eps = eps;
  cfg.ncrit = ncrit;
  ref.zero_forces();
  if (backend) {
    cfg.backend = *backend;
    InteractionQueue queue;
    traverse_groups_batched(tree.view(ref), ref, groups, cfg, /*self=*/true, queue);
  } else {
    traverse_groups(tree.view(ref), ref, groups, cfg, /*self=*/true);
  }

  std::vector<std::uint32_t> perm(ref.size());
  std::iota(perm.begin(), perm.end(), 0u);
  std::sort(perm.begin(), perm.end(),
            [&](std::uint32_t a, std::uint32_t b) { return ref.id[a] < ref.id[b]; });
  ref.apply_permutation(perm);
  return ref;
}

TEST(Decomposition, UniformCoversKeySpace) {
  const Decomposition d = Decomposition::uniform(7);
  ASSERT_EQ(d.num_ranks(), 7);
  EXPECT_EQ(d.begin_key(0), 0u);
  EXPECT_EQ(d.end_key(6), sfc::kKeyEnd);
  for (int r = 0; r + 1 < 7; ++r) EXPECT_EQ(d.end_key(r), d.begin_key(r + 1));
  EXPECT_EQ(d.rank_of(0), 0);
  EXPECT_EQ(d.rank_of(sfc::kKeyEnd - 1), 6);
}

TEST(Decomposition, RankOfRespectsBoundaries) {
  const sfc::Key b1 = sfc::kKeyEnd / 4, b2 = sfc::kKeyEnd / 2;
  const Decomposition d = Decomposition::from_boundaries({0, b1, b2, sfc::kKeyEnd});
  EXPECT_EQ(d.rank_of(0), 0);
  EXPECT_EQ(d.rank_of(b1 - 1), 0);
  EXPECT_EQ(d.rank_of(b1), 1);  // boundary key belongs to the upper rank
  EXPECT_EQ(d.rank_of(b2 - 1), 1);
  EXPECT_EQ(d.rank_of(b2), 2);
  EXPECT_EQ(d.rank_of(sfc::kKeyEnd - 1), 2);
}

TEST(Decomposition, SampledBoundariesBalanceClusteredSet) {
  const ParticleSet parts = make_plummer(4096, 101);
  sfc::KeySpace space(parts.bounds());
  const int nranks = 8;
  const auto samples = domain::sample_keys(parts, space, /*stride=*/1);
  const Decomposition d = Decomposition::from_samples(samples, nranks);

  std::vector<std::size_t> counts(nranks, 0);
  for (std::size_t i = 0; i < parts.size(); ++i)
    ++counts[static_cast<std::size_t>(d.rank_of(space.key(parts.pos(i))))];
  const double mean = static_cast<double>(parts.size()) / nranks;
  for (int r = 0; r < nranks; ++r) {
    EXPECT_GT(static_cast<double>(counts[r]), 0.5 * mean) << "rank " << r;
    EXPECT_LT(static_cast<double>(counts[r]), 1.5 * mean) << "rank " << r;
  }
}

TEST(Decomposition, EmptySamplesFallBackToUniform) {
  const Decomposition d = Decomposition::from_samples({}, 4);
  const Decomposition u = Decomposition::uniform(4);
  ASSERT_EQ(d.num_ranks(), 4);
  for (int r = 0; r < 4; ++r) EXPECT_EQ(d.begin_key(r), u.begin_key(r));
}

TEST(Exchange, OwnershipAndBitForBitConservation) {
  const std::size_t n = 2000;
  const int nranks = 5;
  const ParticleSet global = make_plummer(n, 17);

  // Scatter round-robin (deliberately wrong owners), then exchange.
  std::vector<ParticleSet> sets(nranks);
  for (std::size_t i = 0; i < n; ++i) sets[i % nranks].add(global.get(i));
  sfc::KeySpace space(global.bounds());
  std::vector<sfc::Key> samples;
  for (const auto& s : sets) {
    const auto sk = domain::sample_keys(s, space, /*stride=*/1);
    samples.insert(samples.end(), sk.begin(), sk.end());
  }
  const Decomposition d = Decomposition::from_samples(samples, nranks);
  const auto stats = domain::exchange(sets, space, d);
  EXPECT_EQ(stats.total, n);
  EXPECT_GT(stats.migrated, 0u);

  // Every particle owned by exactly one rank, and by the right one.
  std::vector<int> seen(n, 0);
  for (int r = 0; r < nranks; ++r) {
    for (std::size_t i = 0; i < sets[r].size(); ++i) {
      const auto id = sets[r].id[i];
      ASSERT_LT(id, n);
      ++seen[static_cast<std::size_t>(id)];
      EXPECT_EQ(sets[r].key[i], space.key(sets[r].pos(i)));
      EXPECT_EQ(d.rank_of(sets[r].key[i]), r);
    }
  }
  for (std::size_t id = 0; id < n; ++id) EXPECT_EQ(seen[id], 1) << "id " << id;

  // Bit-for-bit state preservation: reassemble by id and compare exactly.
  ParticleSet by_id(n);
  for (int r = 0; r < nranks; ++r) {
    for (std::size_t i = 0; i < sets[r].size(); ++i) {
      const Particle p = sets[r].get(i);
      by_id.set_pos(p.id, p.pos);
      by_id.set_vel(p.id, p.vel);
      by_id.mass[p.id] = p.mass;
    }
  }
  double mass_before = 0.0, mass_after = 0.0;
  Vec3d mom_before{}, mom_after{};
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(by_id.pos(i), global.pos(i));
    EXPECT_EQ(by_id.vel(i), global.vel(i));
    EXPECT_EQ(by_id.mass[i], global.mass[i]);
    mass_before += global.mass[i];
    mass_after += by_id.mass[i];
    mom_before += global.mass[i] * global.vel(i);
    mom_after += by_id.mass[i] * by_id.vel(i);
  }
  EXPECT_EQ(mass_before, mass_after);  // identical summands, identical order
  EXPECT_EQ(mom_before, mom_after);
}

TEST(Exchange, ResidentPathMatchesCentralizedExchangeBitForBit) {
  // The SPMD alltoallv cell must reproduce the centralized exchange()
  // exactly: same per-rank populations, same ordering, same keys. Run all
  // ranks' resident exchanges concurrently over one transport (posts are
  // nonblocking, receives block on peers — exactly the worker topology).
  const std::size_t n = 1500;
  const int nranks = 4;
  const ParticleSet global = make_plummer(n, 53);
  std::vector<ParticleSet> central(nranks), resident(nranks);
  for (std::size_t i = 0; i < n; ++i) {
    central[i % nranks].add(global.get(i));
    resident[i % nranks].add(global.get(i));
  }
  sfc::KeySpace space(global.bounds());
  std::vector<sfc::Key> samples;
  for (const auto& s : central) {
    const auto sk = domain::sample_keys(s, space, /*stride=*/3);
    samples.insert(samples.end(), sk.begin(), sk.end());
  }
  const Decomposition d = Decomposition::from_samples(samples, nranks);

  const domain::ExchangeStats central_stats = domain::exchange(central, space, d);

  domain::InProcTransport transport(nranks);
  domain::MigrationExchange mex(transport, nranks);
  std::vector<domain::ExchangeStats> stats(nranks);
  std::vector<std::thread> ranks;
  for (int r = 0; r < nranks; ++r)
    ranks.emplace_back([&, r] {
      stats[static_cast<std::size_t>(r)] = domain::exchange_resident(
          resident[static_cast<std::size_t>(r)], r, space, d, mex, /*step=*/7);
    });
  for (std::thread& t : ranks) t.join();

  std::uint64_t migrated = 0, total = 0;
  for (int r = 0; r < nranks; ++r) {
    migrated += stats[static_cast<std::size_t>(r)].migrated;
    total += stats[static_cast<std::size_t>(r)].total;
    ASSERT_EQ(resident[r].size(), central[r].size()) << "rank " << r;
    EXPECT_EQ(resident[r].x, central[r].x);  // bit-for-bit, order included
    EXPECT_EQ(resident[r].vz, central[r].vz);
    EXPECT_EQ(resident[r].mass, central[r].mass);
    EXPECT_EQ(resident[r].id, central[r].id);
    EXPECT_EQ(resident[r].key, central[r].key);
  }
  EXPECT_EQ(migrated, central_stats.migrated);
  EXPECT_EQ(total, central_stats.total);
}

TEST(Simulation, TrafficMatrixMatchesWireSummaries) {
  SimConfig cfg;
  cfg.nranks = 3;
  cfg.theta = 0.4;
  cfg.dt = 1e-3;
  Simulation sim(cfg);
  sim.init(make_plummer(900, 37));
  const domain::StepReport rep = sim.step();

  ASSERT_FALSE(rep.traffic.empty());
  std::uint64_t let_bytes = 0, let_frames = 0, part_bytes = 0;
  for (const auto& t : rep.traffic) {
    EXPECT_GT(t.frames, 0u);
    if (t.type == static_cast<std::uint16_t>(domain::wire::FrameType::kLet)) {
      let_bytes += t.bytes;
      let_frames += t.frames;
      EXPECT_NE(t.src, t.dst);  // no self-LETs
    } else if (t.type == static_cast<std::uint16_t>(domain::wire::FrameType::kParticles)) {
      part_bytes += t.bytes;
    } else {
      ADD_FAILURE() << "unexpected in-process frame type " << t.type;
    }
  }
  // Send-side accounting: the matrix and the wire summary rows are two views
  // of the same posts, so their totals must agree exactly.
  EXPECT_EQ(let_bytes, rep.let_wire.bytes);
  EXPECT_EQ(let_frames, rep.let_wire.frames);
  EXPECT_EQ(part_bytes, rep.part_wire.bytes);
}

TEST(Let, DistantDomainPrunesToSingleMultipole) {
  ParticleSet sources = make_plummer(2000, 29);
  sfc::KeySpace space(sources.bounds());
  sort_by_keys(sources, space);
  Octree tree;
  tree.build(sources);
  tree.compute_properties(sources, 0.4);

  const AABB far{{100, 100, 100}, {101, 101, 101}};
  const LetTree let = domain::build_let(tree.view(sources), far);
  ASSERT_EQ(let.num_cells(), 1u);
  EXPECT_EQ(let.nodes[0].kind, NodeKind::kMultipoleLeaf);
  EXPECT_EQ(let.num_particles(), 0u);
  EXPECT_FALSE(let.empty());  // a bare multipole still exerts force

  // The grafted single-multipole forest reproduces the far field.
  std::vector<LetTree> lets{let};
  const LetTree forest = domain::graft_lets(lets, 0.4);
  ParticleSet targets;
  Xoshiro256 rng(33);
  for (int i = 0; i < 100; ++i)
    targets.add({Vec3d{100.5, 100.5, 100.5} + rng.unit_sphere() * 0.4, {0, 0, 0}, 1.0,
                 static_cast<std::uint64_t>(i)});
  targets.zero_forces();
  auto groups = make_groups(targets, 64);
  TraversalConfig cfg;
  cfg.theta = 0.4;
  traverse_groups(forest.view(), targets, groups, cfg, /*self=*/false);

  ParticleSet ref = targets;
  ref.zero_forces();
  direct_forces_between(sources, ref, 0.0);
  EXPECT_LT(median_acc_error(targets, ref), 1e-3);
}

TEST(Let, NearbyDomainExportIsCompressedAndAccurate) {
  // Left cloud vs the bounds of the x > 2 tail: close enough that boundary
  // leaves must ship particles, far enough that interior branches prune.
  const ParticleSet global = make_plummer(4000, 31);
  ParticleSet left, right;
  for (std::size_t i = 0; i < global.size(); ++i) {
    if (global.x[i] < 0.0) left.add(global.get(i));
    if (global.x[i] > 2.0) right.add(global.get(i));
  }
  ASSERT_GT(left.size(), 100u);
  ASSERT_GT(right.size(), 100u);

  sfc::KeySpace space(global.bounds());
  sort_by_keys(left, space);
  Octree tree;
  tree.build(left);
  tree.compute_properties(left, 0.4);

  const LetTree let = domain::build_let(tree.view(left), right.bounds());
  // The essential tree must be a strict compression of the full local tree.
  EXPECT_LT(let.num_particles(), left.size());
  EXPECT_LT(let.num_cells(), tree.nodes().size());

  std::vector<LetTree> lets{let};
  const LetTree forest = domain::graft_lets(lets, 0.4);
  right.zero_forces();
  auto groups = make_groups(right, 64);
  TraversalConfig cfg;
  cfg.theta = 0.4;
  cfg.eps = 1e-3;
  traverse_groups(forest.view(), right, groups, cfg, /*self=*/false);

  ParticleSet ref = right;
  ref.zero_forces();
  direct_forces_between(left, ref, cfg.eps);
  EXPECT_LT(median_acc_error(right, ref), 1e-3);
}

TEST(Let, GraftOfEmptyLetsIsEmpty) {
  EXPECT_TRUE(domain::graft_lets({}, 0.4).empty());
  std::vector<LetTree> lets(3);  // default LetTrees have no nodes
  EXPECT_TRUE(domain::graft_lets(lets, 0.4).empty());
  EXPECT_TRUE(domain::graft_lets(lets, 0.4).view().empty());
}

// Both schedules must reproduce the global batched group walk (same kernel
// backend as the Simulation default) bit-for-bit on one rank: no LETs exist,
// so async adds only the executor lane around the same stage calls (the
// "single-rank case under the async path" contract). Batches drain in group
// walk order regardless of which pool thread runs the group, so the serial
// reference walk is bitwise comparable.
class OneRankExactness : public ::testing::TestWithParam<bool> {};

TEST_P(OneRankExactness, MatchesGlobalGroupWalkExactly) {
  const ParticleSet global = make_plummer(1500, 23);
  SimConfig cfg;
  cfg.nranks = 1;
  cfg.theta = 0.4;
  cfg.eps = 1e-3;
  cfg.dt = 0.0;
  cfg.async = GetParam();
  Simulation sim(cfg);
  sim.init(global);
  const domain::StepReport rep = sim.step();
  EXPECT_EQ(rep.async, cfg.async);
  EXPECT_EQ(rep.let_cells, 0u);  // nothing to exchange with yourself
  const ParticleSet got = sim.gather();

  const ParticleSet ref = global_tree_forces(global, cfg.theta, cfg.eps,
                                             Octree::kDefaultNLeaf, 64, cfg.kernel);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(got.id[i], ref.id[i]);
    EXPECT_DOUBLE_EQ(got.ax[i], ref.ax[i]);
    EXPECT_DOUBLE_EQ(got.ay[i], ref.ay[i]);
    EXPECT_DOUBLE_EQ(got.az[i], ref.az[i]);
    EXPECT_DOUBLE_EQ(got.pot[i], ref.pot[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Schedules, OneRankExactness, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& pinfo) {
                           return pinfo.param ? "Async" : "Lockstep";
                         });

TEST(Simulation, MultiRankForcesMatchSingleTreeAndDirect) {
  const ParticleSet global = make_plummer(3000, 19);
  SimConfig cfg;
  cfg.nranks = 4;
  cfg.theta = 0.4;
  cfg.eps = 1e-3;
  cfg.dt = 0.0;
  Simulation sim(cfg);
  sim.init(global);
  const domain::StepReport rep = sim.step();
  EXPECT_EQ(rep.num_particles, global.size());
  EXPECT_GT(rep.let_cells, 0u);
  const ParticleSet got = sim.gather();
  ASSERT_EQ(got.size(), global.size());

  // Against the single global tree's group walk: only the group-MAC error of
  // differing group/boundary cuts remains.
  const ParticleSet tree_ref = global_tree_forces(global, cfg.theta, cfg.eps);
  EXPECT_LT(median_acc_error(got, tree_ref), 5e-4);

  // Against direct summation: the same theta envelope the single-device
  // traversal tests enforce (theta = 0.4 -> 2e-4 median).
  ParticleSet direct_ref = global;
  direct_forces(direct_ref, cfg.eps);
  EXPECT_LT(median_acc_error(got, direct_ref), 2e-4);
}

TEST(Simulation, DegenerateDistributionLeavesRanksEmpty) {
  // Particles at only three distinct positions: most of the eight ranks end
  // up empty, and the pipeline must still produce direct-sum forces.
  ParticleSet global;
  const Vec3d sites[3] = {{0, 0, 0}, {1, 0, 0}, {0.4, 0.7, 0.2}};
  for (std::size_t i = 0; i < 99; ++i)
    global.add({sites[i % 3], {0, 0, 0}, 0.01, i});

  SimConfig cfg;
  cfg.nranks = 8;
  cfg.theta = 0.4;
  cfg.eps = 0.1;
  cfg.dt = 0.0;
  Simulation sim(cfg);
  sim.init(global);
  sim.step();

  int empty_ranks = 0;
  for (int r = 0; r < cfg.nranks; ++r)
    if (sim.rank(r).parts().empty()) ++empty_ranks;
  EXPECT_GT(empty_ranks, 0);

  const ParticleSet got = sim.gather();
  ParticleSet ref = global;
  direct_forces(ref, cfg.eps);
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_NEAR(norm(got.acc(i) - ref.acc(i)), 0.0, 1e-6 * std::max(1.0, norm(ref.acc(i))));
}

TEST(Simulation, AsyncAndLockstepSchedulesAgree) {
  // Differential test of the two step drivers on the same IC. The schedules
  // are not bit-identical by design — async walks each imported LET
  // separately while lockstep walks the grafted forest, whose synthetic root
  // carries its own MAC — but both must sit on the same single-rank answer.
  const ParticleSet global = make_plummer(3000, 67);
  SimConfig cfg;
  cfg.nranks = 4;
  cfg.theta = 0.4;
  cfg.eps = 1e-3;
  cfg.dt = 0.0;

  cfg.async = true;
  Simulation async_sim(cfg);
  async_sim.init(global);
  const domain::StepReport async_rep = async_sim.step();
  const ParticleSet async_got = async_sim.gather();

  cfg.async = false;
  Simulation lock_sim(cfg);
  lock_sim.init(global);
  const domain::StepReport lock_rep = lock_sim.step();
  const ParticleSet lock_got = lock_sim.gather();

  // Same decomposition, same LET traffic on both schedules.
  EXPECT_EQ(async_rep.let_cells, lock_rep.let_cells);
  EXPECT_EQ(async_rep.let_particles, lock_rep.let_particles);
  EXPECT_LT(median_acc_error(async_got, lock_got), 1e-6);

  const ParticleSet tree_ref = global_tree_forces(global, cfg.theta, cfg.eps);
  EXPECT_LT(median_acc_error(async_got, tree_ref), 5e-4);
  EXPECT_LT(median_acc_error(lock_got, tree_ref), 5e-4);
}

TEST(Simulation, AsyncStepReportsScheduleModel) {
  SimConfig cfg;
  cfg.nranks = 4;
  cfg.theta = 0.4;
  cfg.eps = 1e-2;
  cfg.dt = 0.0;
  cfg.async = true;
  Simulation sim(cfg);
  sim.init(make_plummer(2000, 3));
  const domain::StepReport rep = sim.step();

  ASSERT_TRUE(rep.async);
  EXPECT_GT(rep.critical_path, 0.0);
  EXPECT_GT(rep.sequential_model, 0.0);
  // Pipelining removes barrier wait but never adds work, so the modeled
  // critical path can never exceed the lockstep stage-sum (see schedule.hpp).
  EXPECT_LE(rep.critical_path, rep.sequential_model * (1.0 + 1e-9));
  EXPECT_LE(rep.gravity_critical, rep.gravity_sequential * (1.0 + 1e-9));
  EXPECT_GE(rep.overlap_efficiency(), 1.0);

  // Lockstep steps don't model a schedule.
  cfg.async = false;
  Simulation lock(cfg);
  lock.init(make_plummer(2000, 3));
  const domain::StepReport lock_rep = lock.step();
  EXPECT_FALSE(lock_rep.async);
  EXPECT_EQ(lock_rep.critical_path, 0.0);
}

TEST(Simulation, AsyncLaneFailurePropagatesInsteadOfHanging) {
  // ncrit = 0 makes make_groups throw inside every lane's build stage. The
  // driver must surface the error: lanes that fail still owe their LETs to
  // peers blocked in recv(), so without the failure path this test hangs
  // (and trips the ctest timeout) instead of throwing.
  SimConfig cfg;
  cfg.nranks = 4;
  cfg.ncrit = 0;
  cfg.dt = 0.0;
  cfg.async = true;
  Simulation sim(cfg);
  sim.init(make_plummer(200, 9));
  EXPECT_THROW(sim.step(), std::exception);
}

TEST(Simulation, ZeroParticlesUnderAsyncPath) {
  SimConfig cfg;
  cfg.nranks = 4;
  cfg.theta = 0.4;
  cfg.dt = 1e-3;
  cfg.async = true;
  Simulation sim(cfg);
  sim.init(ParticleSet{});
  for (int s = 0; s < 2; ++s) {
    const domain::StepReport rep = sim.step();
    EXPECT_EQ(rep.num_particles, 0u);
    EXPECT_EQ(rep.let_cells, 0u);
    std::ostringstream os;
    print_step_report(rep, os);  // no divisions by zero, no NaNs
    EXPECT_NE(os.str().find("n=0"), std::string::npos);
    EXPECT_EQ(os.str().find("nan"), std::string::npos);
  }
  EXPECT_EQ(sim.gather().size(), 0u);
  EXPECT_EQ(sim.kinetic_energy(), 0.0);
}

TEST(Simulation, BenchJsonIsWellFormed) {
  SimConfig cfg;
  cfg.nranks = 2;
  cfg.theta = 0.4;
  cfg.dt = 1e-3;
  Simulation sim(cfg);
  sim.init(make_plummer(500, 11));
  std::vector<domain::StepReport> reports;
  reports.push_back(sim.step());
  reports.push_back(sim.step());
  domain::RunInfo info;
  info.ranks = cfg.nranks;
  info.num_particles = 500;
  info.theta = cfg.theta;
  std::ostringstream os;
  write_step_report_json(info, reports, os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json[json.size() - 2], '}');  // trailing newline after the object
  EXPECT_NE(json.find("\"schema\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"config\": {\"ranks\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"transport\": \"inproc\""), std::string::npos);
  EXPECT_NE(json.find("\"wire_version\": "), std::string::npos);
  EXPECT_NE(json.find("\"steps\": ["), std::string::npos);
  EXPECT_NE(json.find("\"step\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"step\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"overlap_efficiency\""), std::string::npos);
  EXPECT_NE(json.find("\"Gravity local\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\": {\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"wire.let.bytes\""), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(Decomposition, WeightedSamplesShiftBoundariesTowardCheapRegions) {
  // 1000 uniform keys; the lower half carries 3x the cost per sample. With
  // two ranks the equal-weight cut lands where cumulative weight reaches
  // half of 3*500 + 500 = 2000, i.e. sample ~333 — well below the midpoint.
  std::vector<Decomposition::WeightedKey> samples;
  const sfc::Key span = sfc::kKeyEnd / 1000;
  for (int i = 0; i < 1000; ++i)
    samples.push_back({span * static_cast<sfc::Key>(i), i < 500 ? 3.0 : 1.0});
  const Decomposition d =
      Decomposition::from_weighted_samples(samples, 2, /*snap_level=*/0);
  const sfc::Key cut = d.end_key(0);
  EXPECT_GT(cut, span * 300);
  EXPECT_LT(cut, span * 370);

  // Uniform weights reproduce the equal-count quantile cut.
  for (auto& s : samples) s.weight = 1.0;
  const Decomposition u =
      Decomposition::from_weighted_samples(samples, 2, /*snap_level=*/0);
  EXPECT_GT(u.end_key(0), span * 480);
  EXPECT_LT(u.end_key(0), span * 520);
}

TEST(Decomposition, WeightlessSamplesFallBackToCountQuantiles) {
  std::vector<Decomposition::WeightedKey> weighted;
  std::vector<sfc::Key> plain;
  const sfc::Key span = sfc::kKeyEnd / 64;
  for (int i = 0; i < 64; ++i) {
    weighted.push_back({span * static_cast<sfc::Key>(i), 0.0});
    plain.push_back(span * static_cast<sfc::Key>(i));
  }
  const Decomposition w = Decomposition::from_weighted_samples(weighted, 4);
  const Decomposition c = Decomposition::from_samples(plain, 4);
  for (int r = 0; r < 4; ++r) EXPECT_EQ(w.begin_key(r), c.begin_key(r));
}

TEST(Simulation, CostBalanceConvergesWithoutLosingParticles) {
  const std::size_t n = 1500;
  SimConfig cfg;
  cfg.nranks = 4;
  cfg.theta = 0.4;
  cfg.eps = 1e-2;
  cfg.dt = 1e-3;
  cfg.balance = domain::BalanceMode::kCost;
  Simulation sim(cfg);
  sim.init(make_plummer(n, 47));
  for (int s = 0; s < 4; ++s) {
    const domain::StepReport rep = sim.step();
    EXPECT_EQ(rep.num_particles, n);
  }
  const ParticleSet got = sim.gather();
  ASSERT_EQ(got.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(got.id[i], i);
    ASSERT_TRUE(std::isfinite(got.ax[i]) && std::isfinite(got.pot[i]));
  }
}

TEST(Simulation, MultiStepPreservesPopulation) {
  const std::size_t n = 2000;
  const ParticleSet global = make_plummer(n, 41);
  SimConfig cfg;
  cfg.nranks = 4;
  cfg.theta = 0.4;
  cfg.eps = 1e-2;
  cfg.dt = 1e-3;
  Simulation sim(cfg);
  sim.init(global);

  for (int s = 0; s < 3; ++s) {
    const domain::StepReport rep = sim.step();
    EXPECT_EQ(rep.num_particles, n);
    const ParticleSet got = sim.gather();
    ASSERT_EQ(got.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(got.id[i], i);  // ids unique and complete
      ASSERT_TRUE(std::isfinite(got.ax[i]) && std::isfinite(got.ay[i]) &&
                  std::isfinite(got.az[i]));
    }
  }
}

}  // namespace
}  // namespace bonsai
