// Energy-conservation regression: KE + PE drift of an integrated Plummer
// model stays bounded over many steps. Single-step force checks compare
// against references at one instant; only a multi-step energy budget catches
// integrator bugs (wrong kick/drift order, stale accelerations, force zeroing
// at the wrong time) and slow force corruption across redistributions.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "domain/simulation.hpp"
#include "util/ic.hpp"

namespace bonsai {
namespace {

using domain::SimConfig;
using domain::Simulation;

// Relative total-energy drift over `steps` steps of a virialized Plummer
// sphere. E is sampled after every step: KE from post-kick velocities, PE
// from the potentials of that step's force pass — consistent to O(dt), which
// the tolerance absorbs.
double max_energy_drift(SimConfig cfg, int steps) {
  Simulation sim(cfg);
  sim.init(make_plummer(1000, 5));
  sim.step();  // first forces + kick
  const double e0 = sim.kinetic_energy() + sim.potential_energy();
  EXPECT_LT(e0, 0.0);  // bound system
  double worst = 0.0;
  for (int s = 1; s < steps; ++s) {
    sim.step();
    const double e = sim.kinetic_energy() + sim.potential_energy();
    EXPECT_TRUE(std::isfinite(e));
    worst = std::max(worst, std::abs(e - e0) / std::abs(e0));
  }
  return worst;
}

TEST(Energy, PlummerDriftBoundedAsync) {
  SimConfig cfg;
  cfg.nranks = 2;
  cfg.theta = 0.4;
  cfg.eps = 0.05;
  cfg.dt = 1e-3;
  cfg.async = true;
  EXPECT_LT(max_energy_drift(cfg, 24), 0.01);
}

TEST(Energy, PlummerDriftBoundedLockstepWithCostBalance) {
  SimConfig cfg;
  cfg.nranks = 3;
  cfg.theta = 0.4;
  cfg.eps = 0.05;
  cfg.dt = 1e-3;
  cfg.async = false;
  cfg.balance = domain::BalanceMode::kCost;
  EXPECT_LT(max_energy_drift(cfg, 24), 0.01);
}

}  // namespace
}  // namespace bonsai
