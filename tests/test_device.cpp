// Execution substrate: thread-pool completion signaling, deadlock safety of
// nested parallel_for (the 1-core-host case), the per-rank executor lanes,
// the LET channel layer, and the thread-budget policy.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "device/thread_pool.hpp"
#include "domain/channel.hpp"
#include "domain/executor.hpp"
#include "domain/simulation.hpp"
#include "domain/transport.hpp"

namespace bonsai {
namespace {

TEST(ThreadPool, SubmitTaskFutureSignalsCompletion) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::future<void> done = pool.submit_task([&] { ++ran; });
  done.get();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, NestedParallelForRunsInlineInsteadOfDeadlocking) {
  // A one-worker pool models a 1-core host (hardware_concurrency / nranks
  // clamps to 1): a nested parallel_for would block in wait_idle while
  // occupying the only worker able to drain the queue.
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { ++count; });
  });
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, NestedParallelForFromSubmittedTask) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  std::future<void> done = pool.submit_task([&] {
    pool.parallel_for(16, [&](std::size_t) { ++count; });
  });
  done.get();
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, ParallelForFromAnotherPoolsWorkerStillDispatches) {
  ThreadPool outer(1), inner(2);
  std::atomic<int> count{0};
  outer.submit_task([&] { inner.parallel_for(10, [&](std::size_t) { ++count; }); }).get();
  EXPECT_EQ(count.load(), 10);
}

TEST(Executor, LanesRunJobsInSubmissionOrder) {
  domain::Executor exec(3);
  ASSERT_EQ(exec.num_lanes(), 3u);
  std::vector<int> order;
  std::future<void> first = exec.run(1, [&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    order.push_back(1);
  });
  std::future<void> second = exec.run(1, [&] { order.push_back(2); });
  second.get();
  first.get();
  // Same lane means same thread: no data race on `order`, strict FIFO.
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(Executor, LanesRunConcurrently) {
  domain::Executor exec(2);
  domain::Channel<int> a_to_b, b_to_a;
  // Cross-lane rendezvous: deadlocks (and times out in ctest) unless the two
  // lanes genuinely run at the same time.
  std::future<void> a = exec.run(0, [&] {
    a_to_b.send(1);
    EXPECT_TRUE(b_to_a.recv().has_value());
  });
  std::future<void> b = exec.run(1, [&] {
    EXPECT_TRUE(a_to_b.recv().has_value());
    b_to_a.send(2);
  });
  a.get();
  b.get();
}

TEST(Channel, SendRecvTryRecvClose) {
  domain::Channel<int> ch;
  EXPECT_FALSE(ch.try_recv().has_value());
  ch.send(7);
  ch.send(8);
  EXPECT_EQ(ch.recv().value(), 7);  // FIFO
  EXPECT_EQ(ch.try_recv().value(), 8);
  ch.close();
  EXPECT_TRUE(ch.closed());
  EXPECT_FALSE(ch.recv().has_value());  // closed + drained -> nullopt, no block
}

TEST(Channel, RecvBlocksUntilSend) {
  domain::Channel<int> ch;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ch.send(42);
  });
  EXPECT_EQ(ch.recv().value(), 42);
  producer.join();
}

TEST(LetExchange, RemainingCountsFollowActiveMask) {
  domain::InProcTransport transport(4);
  domain::LetExchange net(transport, {1, 0, 1, 1});  // rank 1 is empty
  EXPECT_EQ(net.remaining(0), 2u);
  EXPECT_EQ(net.remaining(1), 0u);
  EXPECT_EQ(net.remaining(2), 2u);
  EXPECT_FALSE(net.recv(1).has_value());  // inactive rank: returns immediately

  net.post(0, 2, {}, 0.0);
  net.post(3, 2, {}, 0.0);
  EXPECT_EQ(net.recv(2).value().src, 0);
  EXPECT_EQ(net.remaining(2), 1u);  // counts down as arrivals are consumed
  EXPECT_EQ(net.recv(2).value().src, 3);
  EXPECT_FALSE(net.recv(2).has_value());  // all expected LETs consumed
}

TEST(LetExchange, NoActiveRanksExpectsNothing) {
  domain::InProcTransport transport(2);
  domain::LetExchange net(transport, {0, 0});
  EXPECT_EQ(net.remaining(0), 0u);
  EXPECT_FALSE(net.recv(0).has_value());
}

TEST(LetExchange, CloseBeforeAllArrivalsFailsFast) {
  domain::InProcTransport transport(3);
  domain::LetExchange net(transport, {1, 1, 1});
  net.post(1, 0, {}, 0.0);
  net.close(0);  // one of rank 0's two expected LETs will never come
  EXPECT_EQ(net.recv(0).value().src, 1);  // pending messages still drain
  EXPECT_THROW(net.recv(0), std::logic_error);  // then throw, never block
}

TEST(LetExchange, AccountsWireBytesAndFrames) {
  domain::InProcTransport transport(2);
  domain::LetExchange net(transport, {1, 1});
  const std::size_t bytes = net.post(0, 1, {}, 0.0);
  EXPECT_GT(bytes, 0u);  // even an empty LET carries a frame header
  EXPECT_EQ(net.encode_stats(0).frames, 1u);
  EXPECT_EQ(net.encode_stats(0).bytes, bytes);
  const auto msg = net.recv(1);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->wire_bytes, bytes);
  EXPECT_GE(net.decode_stats(1).decode_seconds, 0.0);
}

TEST(ThreadsFor, DefaultPartitionsHostAcrossRanks) {
  domain::SimConfig cfg;
  cfg.nranks = 4;
  EXPECT_EQ(domain::threads_for(cfg, 8), 2u);
  EXPECT_EQ(domain::threads_for(cfg, 16), 4u);
  EXPECT_EQ(domain::threads_for(cfg, 3), 1u);  // fewer cores than ranks: 1 each
  EXPECT_EQ(domain::threads_for(cfg, 1), 1u);  // 1-core host
  EXPECT_EQ(domain::threads_for(cfg, 0), 1u);  // unknown hardware_concurrency
  cfg.nranks = 1;
  EXPECT_EQ(domain::threads_for(cfg, 8), 8u);  // single rank owns the host
}

TEST(ThreadsFor, ExplicitRequestClampedToConcurrencyBudget) {
  domain::SimConfig cfg;
  cfg.nranks = 4;
  cfg.threads_per_rank = 16;
  cfg.async = true;
  EXPECT_EQ(domain::threads_for(cfg, 8), 2u);  // concurrent ranks: per-rank share
  cfg.async = false;
  EXPECT_EQ(domain::threads_for(cfg, 8), 8u);  // lockstep: one rank at a time
  cfg.threads_per_rank = 1;
  cfg.async = true;
  EXPECT_EQ(domain::threads_for(cfg, 8), 1u);  // under-asking is honored
}

}  // namespace
}  // namespace bonsai
