#!/usr/bin/env python3
"""Wire-protocol coverage lint.

Statically cross-checks that every FrameType enum value is fully wired, so a
future wire v8 frame cannot land half-covered. For each enum value the lint
requires four sites:

  1. encode   — a `Writer(FrameType::kX ...)` construction in wire.cpp;
  2. decode   — an `open_frame(frame, FrameType::kX)` call in wire.cpp (or,
                for the header-only frames, a FrameType::kX dispatch outside
                wire.cpp), plus a `case FrameType::kX` in frame_type_name();
  3. round-trip test — the encode function enclosing the Writer site and its
                decode_* counterpart both referenced under tests/;
  4. fuzz loop — a `case ...FrameType::kX` arm in the decode_any() dispatcher
                and a seed-frame entry in tests/fuzz/wire_corpus.hpp, plus a
                checked-in corpus input tests/fuzz/corpora/wire/<name>.bin.

Additionally, every read_*/decode_* helper in wire.cpp that allocates from a
wire-supplied count (resize/reserve) must bounds-check first (array_count()
or require()).

Run as a ctest (`wire_lint`) and in CI. `--self-test` proves the lint can
fail: it re-runs the checks on doctored copies of the sources with one site
removed at a time and asserts each mutation is caught.
"""

import argparse
import pathlib
import re
import sys

# Frames with no payload: encoded as a bare header, validated by frame_type()
# at the receiver dispatch, so no open_frame()/decode_* function exists.
HEADER_ONLY = {"kShutdown", "kMetricsQuery"}

ENUM_RE = re.compile(r"enum class FrameType[^{]*\{(.*?)\};", re.S)
ENUM_VALUE_RE = re.compile(r"\b(k\w+)\s*=\s*\d+")
WRITER_RE = re.compile(r"Writer\s*\w*\(\s*FrameType::(k\w+)")
OPEN_FRAME_RE = re.compile(r"open_frame\(\s*frame\s*,\s*FrameType::(k\w+)")
NAME_CASE_RE = re.compile(r"case FrameType::(k\w+):\s*return")
DISPATCH_CASE_RE = re.compile(r"case\s+(?:\w+::)*FrameType::(k\w+)\s*:")
SEED_ADD_RE = re.compile(r"add\(\s*(?:\w+::)*FrameType::(k\w+)")
# A function definition at column 0: return type spilling over is fine, the
# name must be on the defining line ("encode_let(", "read_metrics(", ...).
FUNC_DEF_RE = re.compile(r"^[\w:<>,&*\s]+?\b((?:encode|decode|read|put)_\w+)\s*\(", re.M)
ALLOC_RE = re.compile(r"\.(?:resize|reserve)\(")
BOUND_RE = re.compile(r"array_count\(|\.require\(|require\(")


def camel_to_snake(name):
    out = []
    for i, c in enumerate(name):
        if c.isupper() and i > 0:
            out.append("_")
        out.append(c.lower())
    return "".join(out)


def load_sources(root):
    root = pathlib.Path(root)
    tests = ""
    for path in sorted(root.glob("tests/*.cpp")) + sorted(root.glob("tests/fuzz/*.cpp")):
        tests += path.read_text()
    return {
        "wire_hpp": (root / "src/domain/wire.hpp").read_text(),
        "wire_cpp": (root / "src/domain/wire.cpp").read_text(),
        "src_other": "".join(
            p.read_text()
            for p in sorted(root.glob("src/**/*.cpp")) + sorted(root.glob("src/**/*.hpp"))
            if p.name not in ("wire.cpp", "wire.hpp")
        ),
        "tests": tests,
        "corpus_hpp": (root / "tests/fuzz/wire_corpus.hpp").read_text(),
        "corpora": {p.name for p in sorted(root.glob("tests/fuzz/corpora/wire/*.bin"))},
    }


def split_functions(cpp):
    """Map function name -> body text (to the next column-0 definition)."""
    defs = list(FUNC_DEF_RE.finditer(cpp))
    out = {}
    for i, m in enumerate(defs):
        end = defs[i + 1].start() if i + 1 < len(defs) else len(cpp)
        out.setdefault(m.group(1), "")
        out[m.group(1)] += cpp[m.start():end]
    return out


def run_lint(sources):
    errors = []
    enum_body = ENUM_RE.search(sources["wire_hpp"])
    if not enum_body:
        return ["wire.hpp: FrameType enum not found"]
    types = ENUM_VALUE_RE.findall(enum_body.group(1))
    if not types:
        return ["wire.hpp: FrameType enum has no parsed values"]

    encode_sites = set(WRITER_RE.findall(sources["wire_cpp"]))
    decode_sites = set(OPEN_FRAME_RE.findall(sources["wire_cpp"]))
    name_cases = set(NAME_CASE_RE.findall(sources["wire_cpp"]))
    dispatch_cases = set(DISPATCH_CASE_RE.findall(sources["corpus_hpp"]))
    seed_adds = set(SEED_ADD_RE.findall(sources["corpus_hpp"]))

    # Attribute each Writer site to its enclosing encode_* function.
    functions = split_functions(sources["wire_cpp"])
    encoders = {}  # type -> set of enclosing function names
    for fname, body in functions.items():
        for t in WRITER_RE.findall(body):
            encoders.setdefault(t, set()).add(fname)

    for t in types:
        if t not in encode_sites:
            errors.append(f"{t}: no encode site (Writer(FrameType::{t}) in wire.cpp)")
        if t not in name_cases:
            errors.append(f"{t}: missing from the frame_type_name() switch")
        if t in HEADER_ONLY:
            if t in decode_sites:
                errors.append(f"{t}: header-only frame unexpectedly has an open_frame site")
            if f"FrameType::{t}" not in sources["src_other"]:
                errors.append(f"{t}: header-only frame is never dispatched outside wire.cpp")
        elif t not in decode_sites:
            errors.append(f"{t}: no decode site (open_frame(frame, FrameType::{t}))")

        # Round-trip: some enclosing encoder and its decode twin in tests/;
        # header-only frames have no decoder, so the encoder plus a
        # FrameType check in tests stands in.
        candidates = encoders.get(t, set())
        covered = False
        for fname in candidates:
            if not fname.startswith("encode_"):
                continue
            twin = fname.replace("encode_", "decode_", 1)
            if fname in sources["tests"] and twin in sources["tests"]:
                covered = True
            if t in HEADER_ONLY and fname in sources["tests"] and \
                    f"FrameType::{t}" in sources["tests"]:
                covered = True
        if not covered:
            errors.append(
                f"{t}: no round-trip test (encoder {sorted(candidates)} with its "
                f"decode twin under tests/)")

        if t not in dispatch_cases:
            errors.append(f"{t}: missing from the decode_any() fuzz dispatcher "
                          f"(tests/fuzz/wire_corpus.hpp)")
        if t not in seed_adds:
            errors.append(f"{t}: missing from the seed_frames() corpus builder")
        corpus_file = camel_to_snake(t[1:]) + ".bin"
        if corpus_file not in sources["corpora"]:
            errors.append(f"{t}: no checked-in corpus input "
                          f"tests/fuzz/corpora/wire/{corpus_file}")

    # Bounds-check rule: helpers that allocate from wire-supplied counts must
    # validate against the remaining payload first.
    for fname, body in functions.items():
        if not fname.startswith(("read_", "decode_")):
            continue
        if ALLOC_RE.search(body) and not BOUND_RE.search(body):
            errors.append(f"{fname}: allocates (resize/reserve) without a bounds "
                          f"check (array_count()/require())")
    return errors


def self_test(root):
    """The lint must fail when any of the four sites (or the bounds check)
    disappears — mutate pristine sources one site at a time and expect a
    complaint naming the mutated frame or helper."""
    pristine = load_sources(root)
    base_errors = run_lint(pristine)
    if base_errors:
        print("self-test needs a clean tree, but the lint already fails:")
        for e in base_errors:
            print("  " + e)
        return 1

    def mutated(**changes):
        s = dict(pristine)
        s.update(changes)
        return s

    mutations = {
        "encode site removed": mutated(
            wire_cpp=pristine["wire_cpp"].replace(
                "Writer w(FrameType::kMigration", "Writer w(FrameType::kParticles")),
        "decode site removed": mutated(
            wire_cpp=pristine["wire_cpp"].replace(
                "open_frame(frame, FrameType::kMigration",
                "open_frame(frame, FrameType::kParticles")),
        "round-trip test removed": mutated(
            tests=pristine["tests"].replace("decode_migration", "dec0de_migration")),
        "fuzz dispatcher arm removed": mutated(
            corpus_hpp=pristine["corpus_hpp"].replace(
                "case wire::FrameType::kMigration:", "case wire::FrameType::kMigration_:")),
        "seed frame removed": mutated(
            corpus_hpp=pristine["corpus_hpp"].replace(
                "add(wire::FrameType::kMigration,", "add_(wire::FrameType::kMigration,")),
        "corpus input removed": mutated(
            corpora=pristine["corpora"] - {"migration.bin"}),
        "enum value added without sites": mutated(
            wire_hpp=pristine["wire_hpp"].replace(
                "kLetDelta = 21,", "kLetDelta = 21,\n  kFrobnicate = 22,")),
        "unchecked allocation added": mutated(
            wire_cpp=pristine["wire_cpp"] +
            "\nstd::vector<int> read_evil(Reader& r) {\n"
            "  std::vector<int> v;\n  v.resize(r.u32());\n  return v;\n}\n"),
    }

    failed = 0
    for label, sources in mutations.items():
        errors = run_lint(sources)
        if errors:
            print(f"ok: '{label}' caught ({len(errors)} error(s), "
                  f"first: {errors[0]})")
        else:
            print(f"FAIL: mutation '{label}' was not caught")
            failed += 1
    return 1 if failed else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the lint fails on doctored sources")
    args = ap.parse_args()

    if args.self_test:
        return self_test(args.root)

    errors = run_lint(load_sources(args.root))
    if errors:
        print(f"wire_lint: {len(errors)} error(s)")
        for e in errors:
            print("  " + e)
        return 1
    print("wire_lint: all FrameType values fully wired "
          "(encode, decode, round-trip, fuzz, corpus) and all helpers bounds-checked")
    return 0


if __name__ == "__main__":
    sys.exit(main())
