// Writes (or verifies) the checked-in fuzz seed corpus: one minimized,
// deterministic encoded frame per FrameType under corpora/wire/, plus the
// LetDelta scenario pieces under corpora/let_delta/. Run after any wire
// format change and commit the result:
//
//   corpus_dump <repo>/tests/fuzz/corpora            # regenerate
//   corpus_dump --verify <repo>/tests/fuzz/corpora   # ctest: corpus fresh?
//
// --verify re-derives every frame in memory and byte-compares against the
// files on disk, so a wire change that forgets to refresh the corpus fails
// fast instead of letting the fuzzers start from stale (auto-rejected)
// inputs.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "../tests/fuzz/wire_corpus.hpp"

namespace fs = std::filesystem;

namespace {

struct CorpusFile {
  fs::path rel;
  std::vector<std::uint8_t> bytes;
};

std::vector<CorpusFile> derive_corpus() {
  std::vector<CorpusFile> files;
  for (auto& seed : bonsai::fuzz::seed_frames())
    files.push_back({fs::path("wire") / (seed.name + ".bin"), std::move(seed.frame)});
  bonsai::fuzz::LetDeltaScenario sc = bonsai::fuzz::make_let_delta_scenario();
  files.push_back({fs::path("let_delta") / "full_base.bin", std::move(sc.full_frame)});
  files.push_back({fs::path("let_delta") / "delta.bin", std::move(sc.delta_frame)});
  return files;
}

std::vector<std::uint8_t> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

}  // namespace

int main(int argc, char** argv) {
  bool verify = false;
  const char* dir = nullptr;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--verify") == 0) {
      verify = true;
    } else {
      dir = argv[a];
    }
  }
  if (dir == nullptr) {
    std::fprintf(stderr, "usage: corpus_dump [--verify] <corpora-dir>\n");
    return 2;
  }

  const fs::path root(dir);
  int stale = 0;
  for (const CorpusFile& file : derive_corpus()) {
    const fs::path path = root / file.rel;
    if (verify) {
      if (!fs::exists(path) || read_file(path) != file.bytes) {
        std::fprintf(stderr, "stale or missing corpus input: %s\n", path.c_str());
        ++stale;
      }
      continue;
    }
    fs::create_directories(path.parent_path());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(file.bytes.data()),
              static_cast<std::streamsize>(file.bytes.size()));
    std::printf("wrote %s (%zu bytes)\n", path.c_str(), file.bytes.size());
  }
  if (verify && stale > 0) {
    std::fprintf(stderr, "corpus out of date: regenerate with corpus_dump %s\n", dir);
    return 1;
  }
  if (verify) std::printf("corpus up to date\n");
  return 0;
}
