#include "domain/let.hpp"

#include "util/check.hpp"

namespace bonsai::domain {

namespace {

// Sender-side MAC: the remote rank will accept this cell from anywhere in its
// domain, so the branch can be pruned to its multipole.
inline bool remote_accepts(const AABB& remote_box, const TreeNode& node) {
  return remote_box.min_dist2(node.mp.com) > node.rcrit * node.rcrit;
}

}  // namespace

LetTree build_let(const TreeView& local, const AABB& remote_box) {
  LetTree let;
  if (local.empty()) return let;
  BNS_CHECK(remote_box.valid());

  struct Item {
    std::int32_t src;  // node index in the local tree
    std::int32_t dst;  // node index in the LET
  };
  let.nodes.push_back(local.nodes[0]);
  std::vector<Item> stack{{0, 0}};

  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    const TreeNode& src = local.nodes[static_cast<std::size_t>(item.src)];
    TreeNode out = src;

    if (src.count() > 0 && remote_accepts(remote_box, src)) {
      out.kind = NodeKind::kMultipoleLeaf;
      out.first_child = -1;
      out.num_children = 0;
      out.part_begin = out.part_end = 0;
    } else if (src.kind == NodeKind::kInternal) {
      // Children occupy contiguous LET slots, appended now and filled when
      // popped; internal nodes own no exported particles themselves.
      out.first_child = static_cast<std::int32_t>(let.nodes.size());
      out.part_begin = out.part_end = 0;
      for (std::uint8_t c = 0; c < src.num_children; ++c) {
        stack.push_back({src.first_child + c, out.first_child + c});
        let.nodes.emplace_back();
      }
    } else {
      // Leaf the remote rank may open: export its particles.
      out.part_begin = static_cast<std::uint32_t>(let.x.size());
      for (std::uint32_t j = src.part_begin; j < src.part_end; ++j) {
        let.x.push_back(local.x[j]);
        let.y.push_back(local.y[j]);
        let.z.push_back(local.z[j]);
        let.m.push_back(local.m[j]);
      }
      out.part_end = static_cast<std::uint32_t>(let.x.size());
    }
    let.nodes[static_cast<std::size_t>(item.dst)] = out;
  }
  return let;
}

LetTree graft_lets(std::span<const LetTree> lets, double theta) {
  BNS_CHECK(theta > 0.0);
  std::vector<const LetTree*> live;
  for (const LetTree& l : lets)
    if (!l.empty()) live.push_back(&l);

  LetTree out;
  if (live.empty()) return out;
  const std::size_t n = live.size();
  BNS_CHECK(n <= 255, "grafted root fans out to at most 255 LETs");

  std::size_t total_nodes = 1, total_parts = 0;
  for (const LetTree* l : live) {
    total_nodes += l->nodes.size();
    total_parts += l->num_particles();
  }
  out.nodes.resize(total_nodes);
  out.x.reserve(total_parts);
  out.y.reserve(total_parts);
  out.z.reserve(total_parts);
  out.m.reserve(total_parts);

  // Layout: [0] synthetic root, [1, n] the LET roots (contiguous, as the
  // traversal requires of siblings), then each LET's remaining nodes in
  // order. Non-root node j of LET k moves to base_k + j - 1.
  std::size_t base = 1 + n;
  for (std::size_t k = 0; k < n; ++k) {
    const LetTree& l = *live[k];
    const auto part_offset = static_cast<std::uint32_t>(out.x.size());
    const auto remap = [&](std::int32_t old) {
      return old == 0 ? static_cast<std::int32_t>(1 + k)
                      : static_cast<std::int32_t>(base + static_cast<std::size_t>(old) - 1);
    };
    for (std::size_t j = 0; j < l.nodes.size(); ++j) {
      TreeNode nd = l.nodes[j];
      if (nd.num_children > 0) nd.first_child = remap(nd.first_child);
      nd.part_begin += part_offset;
      nd.part_end += part_offset;
      out.nodes[static_cast<std::size_t>(remap(static_cast<std::int32_t>(j)))] = nd;
    }
    out.x.insert(out.x.end(), l.x.begin(), l.x.end());
    out.y.insert(out.y.end(), l.y.begin(), l.y.end());
    out.z.insert(out.z.end(), l.z.begin(), l.z.end());
    out.m.insert(out.m.end(), l.m.begin(), l.m.end());
    base += l.nodes.size() - 1;
  }

  TreeNode root;
  root.key_begin = 0;
  root.key_end = sfc::kKeyEnd;
  root.part_begin = 0;
  root.part_end = static_cast<std::uint32_t>(total_parts);
  root.first_child = 1;
  root.num_children = static_cast<std::uint8_t>(n);
  root.level = 0;
  root.kind = NodeKind::kInternal;
  // Two-pass multipole combine, exactly as Octree::compute_properties.
  for (std::size_t k = 0; k < n; ++k) {
    const TreeNode& ch = out.nodes[1 + k];
    root.box.expand(ch.box);
    root.mp.mass += ch.mp.mass;
    root.mp.com += ch.mp.mass * ch.mp.com;
  }
  if (root.mp.mass > 0.0) root.mp.com /= root.mp.mass;
  for (std::size_t k = 0; k < n; ++k) root.mp.add_shifted(out.nodes[1 + k].mp);
  root.rcrit = root.box.max_side() / theta + norm(root.mp.com - root.box.center());
  out.nodes[0] = root;
  return out;
}

}  // namespace bonsai::domain
