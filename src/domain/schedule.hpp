// Pipeline schedule model: reconstructs, from the measured per-stage
// durations of one step, how long the step takes (a) under the async
// dependency graph — each rank's chain sort → build → properties → LET
// exports → local gravity → remote gravity per arrived LET → integration,
// with a remote-gravity task unable to start before its LET was sent — and
// (b) under the old lockstep schedule with a global barrier after every
// stage (the sum of per-stage rank maxima). The ratio of the two is the
// overlap efficiency the step report prints. Like the Gflop/s "parallel
// model" elsewhere in the repo, this is computed from device-seconds, so it
// is meaningful even when the host has fewer cores than ranks and cannot
// physically overlap the work.
#pragma once

#include <span>
#include <utility>
#include <vector>

namespace bonsai::domain {

// Measured durations (seconds) of one rank's pipeline for one step.
struct LaneTimeline {
  double sort = 0.0;       // "Sorting SFC"
  double build = 0.0;      // "Tree-construction"
  double props = 0.0;      // "Tree-properties"
  std::vector<std::pair<int, double>> exports;  // (dst rank, seconds), send order
  double local = 0.0;      // "Gravity local"
  std::vector<std::pair<int, double>> remotes;  // (src rank, seconds)
  double integrate = 0.0;  // "Integration"
};

struct ScheduleModel {
  double critical_path = 0.0;       // async DAG completion of the rank stages
  double sequential = 0.0;          // lockstep: sum of per-stage rank maxima
  double gravity_critical = 0.0;    // DAG over exports/local/remote only
  double gravity_sequential = 0.0;  // max(exports)+max(local)+max(remotes)
};

// The model guarantees critical_path <= sequential (likewise for the gravity
// pair): pipelining can only remove barrier wait, never add work.
ScheduleModel model_schedule(std::span<const LaneTimeline> lanes);

}  // namespace bonsai::domain
