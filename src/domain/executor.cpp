#include "domain/executor.hpp"

#include "util/check.hpp"

namespace bonsai::domain {

Executor::Executor(std::size_t num_lanes) {
  BNS_CHECK(num_lanes >= 1);
  lanes_.reserve(num_lanes);
  for (std::size_t i = 0; i < num_lanes; ++i)
    lanes_.push_back(std::make_unique<ThreadPool>(1));
}

std::future<void> Executor::run(std::size_t lane, std::function<void()> job) {
  BNS_CHECK(lane < lanes_.size());
  return lanes_[lane]->submit_task(std::move(job));
}

}  // namespace bonsai::domain
