// One in-process "rank": the unit of the paper's parallelization. A rank
// owns a particle slice (a contiguous Hilbert-key interval), its own Device,
// its own octree and target groups, and per-stage timings. The multi-rank
// Simulation orchestrates ranks the way the paper's MPI layer orchestrates
// processes; swapping this emulation for real MPI/GPU backends changes the
// transport, not the dataflow.
#pragma once

#include <cstddef>

#include "device/device.hpp"
#include "domain/let.hpp"
#include "sfc/keys.hpp"
#include "tree/octree.hpp"
#include "tree/particle.hpp"
#include "tree/traverse.hpp"
#include "util/aabb.hpp"
#include "util/timer.hpp"

namespace bonsai::domain {

// How redistribute() places the domain boundaries.
enum class BalanceMode {
  kCount,  // equalize sampled particle counts (quantile cuts)
  kCost,   // weight samples by the owner rank's measured gravity s/particle
};

// Per-step knobs shared by every rank (the Simulation owns the authoritative
// copy; ranks receive it by const reference each stage).
struct SimConfig {
  int nranks = 1;
  double theta = 0.4;  // opening angle (paper production value, §IV)
  double eps = 1e-2;   // Plummer softening
  int nleaf = Octree::kDefaultNLeaf;
  int ncrit = 64;  // target-group size
  bool quadrupole = true;
  double dt = 0.0;  // 0 disables integration (forces-only steps)
  sfc::CurveType curve = sfc::CurveType::kHilbert;
  std::size_t samples_per_rank = 4096;        // boundary-key samples per rank
  int snap_level = 8;                         // boundary snap (0 = off)
  std::size_t threads_per_rank = 0;           // 0: hardware threads / nranks
  bool async = true;                          // overlapped per-rank pipeline;
                                              // false = lockstep stage loop
  BalanceMode balance = BalanceMode::kCount;  // feedback balancing needs a
                                              // previous step's gravity times
  bool trace = false;                         // record spans (--trace); shipped
                                              // to workers in the Config frame
  KernelBackend kernel = KernelBackend::kSimd;  // batched force backend
                                                // (--kernel); shipped to
                                                // workers in the Config frame
  bool let_cache = false;   // incremental LET exchange (--let-cache); shipped
                            // to workers in the Config frame
  double let_churn = 0.75;  // churn threshold: ship a full Let when the delta
                            // is not below this fraction of the full encoding

  TraversalConfig traversal() const {
    TraversalConfig t;
    t.theta = theta;
    t.eps = eps;
    t.ncrit = ncrit;
    t.quadrupole = quadrupole;
    t.backend = kernel;
    return t;
  }
};

class Rank {
 public:
  Rank(int id, std::size_t num_threads) : id_(id), device_(num_threads) {
    device_.set_trace_rank(id);
  }

  int id() const { return id_; }
  Device& device() { return device_; }
  ParticleSet& parts() { return parts_; }
  const ParticleSet& parts() const { return parts_; }
  const Octree& tree() const { return tree_; }
  std::span<const TargetGroup> groups() const { return groups_; }

  // Tight AABB of the rank's particles (valid only when non-empty); this is
  // the box remote ranks build LETs against.
  const AABB& domain_box() const { return box_; }

  // Sort by SFC key, build the octree, compute multipoles/MAC radii and
  // target groups. Stage timings accumulate into `times` under the Table II
  // row names.
  void build(const sfc::KeySpace& space, const SimConfig& cfg, TimeBreakdown& times);

  // Extract this rank's LET for a remote domain box (sender-side work).
  LetTree export_let(const AABB& remote_box) const {
    return build_let(tree_.view(parts_), remote_box);
  }

  // Forces from the rank's own tree (exact self-interactions skipped).
  InteractionStats gravity_local(const SimConfig& cfg, TimeBreakdown& times);

  // Forces from the grafted forest of imported LETs.
  InteractionStats gravity_remote(const TreeView& forest, const SimConfig& cfg,
                                  TimeBreakdown& times);

  // Symplectic-Euler kick-drift using the freshly computed accelerations.
  void integrate(double dt, TimeBreakdown& times);

 private:
  int id_;
  Device device_;
  ParticleSet parts_;
  Octree tree_;
  std::vector<TargetGroup> groups_;
  AABB box_;
};

}  // namespace bonsai::domain
