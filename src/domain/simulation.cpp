#include "domain/simulation.hpp"

#include <algorithm>
#include <numeric>
#include <ostream>
#include <thread>

#include "util/check.hpp"
#include "util/table.hpp"

namespace bonsai::domain {

namespace {

// Canonical stage order for reports (the pipeline order of Table II).
const char* const kStageOrder[] = {
    "Domain update", "Exchange particles", "Sorting SFC",
    "Tree-construction", "Tree-properties", "Exchange LET",
    "Gravity local", "Gravity remote", "Integration",
};

std::size_t threads_for(const SimConfig& cfg) {
  if (cfg.threads_per_rank > 0) return cfg.threads_per_rank;
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  return std::max<std::size_t>(1, hw / static_cast<std::size_t>(cfg.nranks));
}

}  // namespace

Simulation::Simulation(const SimConfig& cfg) : cfg_(cfg) {
  BONSAI_CHECK(cfg_.nranks >= 1);
  BONSAI_CHECK_MSG(cfg_.nranks <= 255, "grafted LET forests fan out to at most 255 ranks");
  const std::size_t threads = threads_for(cfg_);
  ranks_.reserve(static_cast<std::size_t>(cfg_.nranks));
  for (int r = 0; r < cfg_.nranks; ++r)
    ranks_.push_back(std::make_unique<Rank>(r, threads));
  decomp_ = Decomposition::uniform(cfg_.nranks);
}

void Simulation::init(ParticleSet global) {
  ranks_[0]->parts() = std::move(global);
  for (std::size_t r = 1; r < ranks_.size(); ++r) ranks_[r]->parts().clear();
  StepReport scratch;
  TimeBreakdown driver;
  redistribute(scratch, driver);
}

void Simulation::redistribute(StepReport& report, TimeBreakdown& driver_times) {
  {
    ScopedTimer t(driver_times, "Domain update");
    AABB bounds;
    for (const auto& rank : ranks_)
      if (!rank->parts().empty()) bounds.expand(rank->parts().bounds());
    if (!bounds.valid()) bounds = {{0, 0, 0}, {1, 1, 1}};  // no particles anywhere
    space_ = sfc::KeySpace(bounds, cfg_.curve);

    // One global stride for every rank: pooled samples stay uniformly
    // weighted per particle, so quantile cuts keep tracking the population
    // even when rank sizes have drifted apart.
    const std::size_t total = num_particles();
    const std::size_t target =
        cfg_.samples_per_rank * static_cast<std::size_t>(cfg_.nranks);
    const std::size_t stride = std::max<std::size_t>(1, total / std::max<std::size_t>(1, target));
    std::vector<sfc::Key> samples;
    for (const auto& rank : ranks_) {
      const auto s = sample_keys(rank->parts(), space_, stride);
      samples.insert(samples.end(), s.begin(), s.end());
    }
    decomp_ = Decomposition::from_samples(std::move(samples), cfg_.nranks, cfg_.snap_level);
  }
  {
    ScopedTimer t(driver_times, "Exchange particles");
    std::vector<ParticleSet> sets(ranks_.size());
    for (std::size_t r = 0; r < ranks_.size(); ++r)
      sets[r] = std::move(ranks_[r]->parts());
    const ExchangeStats ex = exchange(sets, space_, decomp_);
    for (std::size_t r = 0; r < ranks_.size(); ++r)
      ranks_[r]->parts() = std::move(sets[r]);
    report.migrated = ex.migrated;
    report.num_particles = ex.total;
  }
}

StepReport Simulation::step() {
  StepReport report;
  report.step = next_step_++;
  WallTimer wall;

  const std::size_t nranks = ranks_.size();
  TimeBreakdown driver_times;
  std::vector<TimeBreakdown> rank_times(nranks);

  redistribute(report, driver_times);

  for (std::size_t r = 0; r < nranks; ++r)
    ranks_[r]->build(space_, cfg_, rank_times[r]);

  // LET exchange: extraction is sender-side work, grafting receiver-side.
  std::vector<std::vector<LetTree>> imported(nranks);
  for (std::size_t src = 0; src < nranks; ++src) {
    if (ranks_[src]->parts().empty()) continue;
    ScopedTimer t(rank_times[src], "Exchange LET");
    for (std::size_t dst = 0; dst < nranks; ++dst) {
      if (dst == src || ranks_[dst]->parts().empty()) continue;
      LetTree let = ranks_[src]->export_let(ranks_[dst]->domain_box());
      report.let_cells += let.num_cells();
      report.let_particles += let.num_particles();
      imported[dst].push_back(std::move(let));
    }
  }
  std::vector<LetTree> forests(nranks);
  for (std::size_t dst = 0; dst < nranks; ++dst) {
    if (imported[dst].empty()) continue;
    ScopedTimer t(rank_times[dst], "Exchange LET");
    forests[dst] = graft_lets(imported[dst], cfg_.theta);
  }

  for (std::size_t r = 0; r < nranks; ++r) {
    ranks_[r]->parts().zero_forces();
    report.local_stats += ranks_[r]->gravity_local(cfg_, rank_times[r]);
    report.remote_stats +=
        ranks_[r]->gravity_remote(forests[r].view(), cfg_, rank_times[r]);
  }

  if (cfg_.dt != 0.0)
    for (std::size_t r = 0; r < nranks; ++r)
      ranks_[r]->integrate(cfg_.dt, rank_times[r]);

  // Fold driver-level and per-rank stage times into the two aggregate views.
  for (const char* stage : kStageOrder) {
    const double drv = driver_times.get(stage);
    double mx = drv, sum = drv;
    for (const TimeBreakdown& t : rank_times) {
      const double v = t.get(stage);
      mx = std::max(mx, v);
      sum += v;
    }
    if (mx > 0.0 || sum > 0.0) {
      report.max_times.add(stage, mx);
      report.sum_times.add(stage, sum);
    }
  }
  report.elapsed = wall.elapsed();
  return report;
}

ParticleSet Simulation::gather() const {
  ParticleSet out;
  out.reserve(num_particles());
  for (const auto& rank : ranks_) {
    const ParticleSet& p = rank->parts();
    for (std::size_t i = 0; i < p.size(); ++i) {
      out.add(p.get(i));
      out.ax.back() = p.ax[i];
      out.ay.back() = p.ay[i];
      out.az.back() = p.az[i];
      out.pot.back() = p.pot[i];
      out.key.back() = p.key[i];
    }
  }
  std::vector<std::uint32_t> perm(out.size());
  std::iota(perm.begin(), perm.end(), 0u);
  std::sort(perm.begin(), perm.end(),
            [&](std::uint32_t a, std::uint32_t b) { return out.id[a] < out.id[b]; });
  out.apply_permutation(perm);
  return out;
}

std::size_t Simulation::num_particles() const {
  std::size_t n = 0;
  for (const auto& rank : ranks_) n += rank->parts().size();
  return n;
}

double Simulation::kinetic_energy() const {
  double ke = 0.0;
  for (const auto& rank : ranks_) {
    const ParticleSet& p = rank->parts();
    for (std::size_t i = 0; i < p.size(); ++i) ke += 0.5 * p.mass[i] * norm2(p.vel(i));
  }
  return ke;
}

double Simulation::potential_energy() const {
  double pe = 0.0;
  for (const auto& rank : ranks_) {
    const ParticleSet& p = rank->parts();
    for (std::size_t i = 0; i < p.size(); ++i) pe += 0.5 * p.mass[i] * p.pot[i];
  }
  return pe;
}

void print_step_report(const StepReport& report, std::ostream& os) {
  os << "step " << report.step << ": n=" << report.num_particles
     << " migrated=" << report.migrated << " LET cells=" << report.let_cells
     << " LET particles=" << report.let_particles << '\n';

  TextTable table({"Stage", "max [ms]", "sum [ms]", "% max"});
  const double total_max = report.max_times.total();
  for (const auto& entry : report.max_times.entries()) {
    const double sum = report.sum_times.get(entry.name);
    table.add_row({entry.name, TextTable::num(entry.seconds * 1e3),
                   TextTable::num(sum * 1e3),
                   TextTable::num(total_max > 0.0 ? 100.0 * entry.seconds / total_max : 0.0,
                                  1)});
  }
  table.add_row({"Total", TextTable::num(total_max * 1e3),
                 TextTable::num(report.sum_times.total() * 1e3), "100.0"});
  table.print(os);

  const InteractionStats stats = report.stats();
  const double grav_sum =
      report.sum_times.get("Gravity local") + report.sum_times.get("Gravity remote");
  const double grav_max =
      report.max_times.get("Gravity local") + report.max_times.get("Gravity remote");
  os << "interactions: p2p/particle="
     << TextTable::num(stats.p2p_per_particle(report.num_particles), 1)
     << " p2c/particle=" << TextTable::num(stats.p2c_per_particle(report.num_particles), 1)
     << " | gravity " << TextTable::num(gflops_rate(stats.flops(), grav_sum), 2)
     << " Gflop/s (device), " << TextTable::num(gflops_rate(stats.flops(), grav_max), 2)
     << " Gflop/s (parallel model)\n";
}

}  // namespace bonsai::domain
