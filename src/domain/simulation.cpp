#include "domain/simulation.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <optional>
#include <ostream>
#include <thread>

#include "domain/channel.hpp"
#include "util/check.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace bonsai::domain {

namespace {

// Canonical stage order for reports (the pipeline order of Table II, with
// the serialization cost of the wire transport broken out of the exchange
// stages so the stage rows stay disjoint and the Total stays honest).
const char* const kStageOrder[] = {
    "Domain update", "Exchange particles", "Sorting SFC",
    "Tree-construction", "Tree-properties", "Exchange LET",
    "Wire encode", "Wire decode",
    "Gravity local", "Gravity remote", "Integration",
};

// Gravity performance figures shared by the text table and the JSON report,
// derived once so the two renderers cannot drift apart.
struct GravityRates {
  double gflops_device;    // flops / summed gravity device-seconds
  double gflops_parallel;  // flops / max-over-ranks gravity seconds
};

GravityRates gravity_rates(const StepReport& report) {
  const std::uint64_t flops = report.stats().flops();
  const double grav_sum =
      report.sum_times.get("Gravity local") + report.sum_times.get("Gravity remote");
  const double grav_max =
      report.max_times.get("Gravity local") + report.max_times.get("Gravity remote");
  return {gflops_rate(flops, grav_sum), gflops_rate(flops, grav_max)};
}

// Per-imported-LET byte percentiles shared by the text report and the JSON.
struct LetSizeSummary {
  double min_bytes = 0.0, median_bytes = 0.0, max_bytes = 0.0;
  double median_cells = 0.0, median_particles = 0.0;
};

LetSizeSummary summarize_let_sizes(std::span<const wire::LetSizeSample> sizes) {
  LetSizeSummary s;
  if (sizes.empty()) return s;
  std::vector<double> bytes, cells, parts;
  bytes.reserve(sizes.size());
  for (const wire::LetSizeSample& l : sizes) {
    bytes.push_back(static_cast<double>(l.bytes));
    cells.push_back(static_cast<double>(l.cells));
    parts.push_back(static_cast<double>(l.particles));
  }
  s.min_bytes = percentile(bytes, 0.0);
  s.median_bytes = percentile(bytes, 0.5);
  s.max_bytes = percentile(bytes, 1.0);
  s.median_cells = percentile(cells, 0.5);
  s.median_particles = percentile(parts, 0.5);
  return s;
}

std::string human_bytes(double b);

// One line per frame type present in the step's traffic matrix, aggregated
// over peers; the per-(src,dst) cells go to the --bench JSON.
void print_traffic_by_type(std::span<const wire::PeerTraffic> traffic, std::ostream& os,
                           const char* label = "traffic by type") {
  if (traffic.empty()) return;
  std::map<std::uint16_t, std::pair<std::uint64_t, std::uint64_t>> by_type;
  for (const wire::PeerTraffic& t : traffic) {
    auto& cell = by_type[t.type];
    cell.first += t.frames;
    cell.second += t.bytes;
  }
  os << label << ":";
  bool first = true;
  for (const auto& [type, cell] : by_type) {
    os << (first ? " " : " | ")
       << wire::frame_type_name(static_cast<wire::FrameType>(type)) << " "
       << cell.first << "fr " << human_bytes(static_cast<double>(cell.second));
    first = false;
  }
  os << "\n";
}

std::string human_bytes(double b) {
  const char* const units[] = {"B", "KiB", "MiB", "GiB"};
  int u = 0;
  while (b >= 1024.0 && u < 3) {
    b /= 1024.0;
    ++u;
  }
  return TextTable::num(b, u == 0 ? 0 : 1) + units[u];
}

// Power-of-two histogram of per-imported-LET frame sizes — the data behind
// the "remote gravity dominates" ROADMAP item: how much tree each rank pulls
// in from its peers, and how skewed the pull is.
void print_let_histogram(std::span<const wire::LetSizeSample> sizes, std::ostream& os) {
  if (sizes.empty()) return;
  const LetSizeSummary s = summarize_let_sizes(sizes);
  os << "imported LETs: " << sizes.size() << " | bytes med " << human_bytes(s.median_bytes)
     << " [min " << human_bytes(s.min_bytes) << ", max " << human_bytes(s.max_bytes)
     << "] | cells med " << TextTable::num(s.median_cells, 0) << " | particles med "
     << TextTable::num(s.median_particles, 0) << "\n";

  const double lo = std::floor(std::log2(std::max(s.min_bytes, 1.0)));
  const double hi = std::floor(std::log2(std::max(s.max_bytes, 1.0))) + 1.0;
  Histogram1D h(lo, hi, static_cast<std::size_t>(hi - lo));
  for (const wire::LetSizeSample& l : sizes)
    h.add(std::log2(std::max(static_cast<double>(l.bytes), 1.0)));
  os << "LET size histogram:";
  for (std::size_t b = 0; b < h.bins(); ++b) {
    if (h.count(b) == 0.0) continue;
    os << " [" << human_bytes(std::exp2(lo + static_cast<double>(b))) << ","
       << human_bytes(std::exp2(lo + static_cast<double>(b) + 1.0)) << ") "
       << static_cast<std::uint64_t>(h.count(b)) << " |";
  }
  os << "\n";
}

}  // namespace

std::size_t threads_for(const SimConfig& cfg, std::size_t hardware_threads) {
  const std::size_t hw = std::max<std::size_t>(1, hardware_threads);
  const std::size_t share =
      std::max<std::size_t>(1, hw / static_cast<std::size_t>(std::max(cfg.nranks, 1)));
  if (cfg.threads_per_rank == 0) return share;
  return std::min(cfg.threads_per_rank, cfg.async ? share : hw);
}

Simulation::Simulation(const SimConfig& cfg) : cfg_(cfg) {
  BNS_CHECK(cfg_.nranks >= 1);
  BNS_CHECK(cfg_.nranks <= 255, "grafted LET forests fan out to at most 255 ranks");
  const std::size_t threads = threads_for(cfg_, std::thread::hardware_concurrency());
  ranks_.reserve(static_cast<std::size_t>(cfg_.nranks));
  for (int r = 0; r < cfg_.nranks; ++r)
    ranks_.push_back(std::make_unique<Rank>(r, threads));
  inproc_ = std::make_unique<InProcTransport>(cfg_.nranks);
  transport_ = std::make_unique<TrafficRecordingTransport>(*inproc_);
  decomp_ = Decomposition::uniform(cfg_.nranks);
  let_state_.init(cfg_.nranks, cfg_.let_cache, cfg_.let_churn);
}

void Simulation::init(ParticleSet global) {
  ranks_[0]->parts() = std::move(global);
  for (std::size_t r = 1; r < ranks_.size(); ++r) ranks_[r]->parts().clear();
  prev_gravity_seconds_.clear();
  prev_rank_size_.clear();
  StepReport scratch;
  TimeBreakdown driver;
  redistribute(scratch, driver);
  transport_->take();  // the bootstrap scatter is not step traffic
}

namespace {

// Feedback-balancing weights: rank r's samples are weighted by its measured
// gravity seconds per particle from the previous step, so expensive regions
// shrink. The floor keeps a region whose timings underflowed from collapsing
// to nothing; before any step has been timed (or outside cost mode) the
// returned vector is empty and the cut degrades to equal-count quantiles.
std::vector<double> cost_weights(const SimConfig& cfg,
                                 std::span<const double> prev_gravity_seconds,
                                 std::span<const std::size_t> prev_rank_size) {
  std::vector<double> weight;
  if (cfg.balance != BalanceMode::kCost ||
      prev_gravity_seconds.size() != static_cast<std::size_t>(cfg.nranks))
    return weight;
  weight.resize(prev_gravity_seconds.size());
  for (std::size_t r = 0; r < weight.size(); ++r) {
    weight[r] = prev_rank_size[r] > 0
                    ? prev_gravity_seconds[r] / static_cast<double>(prev_rank_size[r])
                    : 0.0;
  }
  apply_cost_floor(weight);
  return weight;
}

}  // namespace

DomainUpdate redistribute_sets(std::vector<ParticleSet>& sets, const SimConfig& cfg,
                               std::span<const double> prev_gravity_seconds,
                               std::span<const std::size_t> prev_rank_size,
                               Transport& transport, StepReport& report,
                               TimeBreakdown& driver_times) {
  DomainUpdate du;
  {
    trace::ScopedSpan span("decomposition.update");
    ScopedTimer t(driver_times, "Domain update");
    const std::vector<double> weight =
        cost_weights(cfg, prev_gravity_seconds, prev_rank_size);
    std::vector<const ParticleSet*> ptrs;
    ptrs.reserve(sets.size());
    for (const ParticleSet& s : sets) ptrs.push_back(&s);
    du = update_domain(ptrs, cfg.nranks, cfg.curve, cfg.samples_per_rank, cfg.snap_level,
                       weight);
  }
  {
    // Manual timing so the serialization cost of the migration batches lands
    // in the wire rows instead of double-counting inside the exchange row.
    trace::ScopedSpan span("decomposition.exchange");
    WallTimer timer;
    wire::WireStats ws;
    const ExchangeStats ex = exchange(sets, du.space, du.decomp, transport, &ws);
    report.migrated = ex.migrated;
    report.num_particles = ex.total;
    report.part_wire += ws;
    driver_times.add("Exchange particles",
                     std::max(0.0, timer.elapsed() - ws.encode_seconds - ws.decode_seconds));
    driver_times.add("Wire encode", ws.encode_seconds);
    driver_times.add("Wire decode", ws.decode_seconds);
  }
  return du;
}

RankStepStats run_rank_step(Rank& rank, const SimConfig& cfg, LetExchange& net,
                            std::span<const std::uint8_t> active,
                            std::span<const AABB> boxes, TimeBreakdown& times,
                            LaneTimeline* lane, std::size_t& next_peer) {
  RankStepStats out;
  const auto r = static_cast<std::size_t>(rank.id());
  const std::size_t nranks = active.size();
  if (active[r]) {
    // Peers receive LETs round-robin from r+1 so senders spread across
    // receivers instead of all extracting for rank 0 first.
    for (; next_peer < nranks; ++next_peer) {
      const std::size_t dst = (r + next_peer) % nranks;
      if (!active[dst]) continue;
      trace::ScopedSpan span("let.export", rank.id(), rank.id());
      span.set_peer(static_cast<std::int64_t>(dst));
      WallTimer timer;
      LetTree let = rank.export_let(boxes[dst]);
      const double secs = timer.elapsed();
      times.add("Exchange LET", secs);
      if (lane) lane->exports.emplace_back(static_cast<int>(dst), secs);
      out.let_cells += let.num_cells();
      out.let_particles += let.num_particles();
      span.set_bytes(static_cast<std::int64_t>(
          net.post(static_cast<int>(r), static_cast<int>(dst), let, secs)));
    }

    rank.parts().zero_forces();
    out.local_stats = rank.gravity_local(cfg, times);
    if (lane) lane->local = times.get("Gravity local");

    // Remote gravity per imported LET, in deterministic peer order. Arrivals
    // race (socket peers advance at their own pace), and floating-point
    // accumulation is order-sensitive, so an out-of-order LET waits in
    // `pending` and every walk happens in (r+1, r+2, ...) source order: the
    // final forces are bitwise reproducible across runs, transports, and the
    // --let-cache setting (the differential bar CI compares against). LETs
    // arriving in order still overlap their walk with the remaining receives;
    // no graft barrier — the walk accepts any self-contained TreeView.
    std::vector<std::optional<wire::LetMessage>> pending(nranks);
    std::size_t next_walk = 1;
    const auto walk_ready = [&] {
      for (; next_walk < nranks; ++next_walk) {
        const std::size_t src = (r + next_walk) % nranks;
        if (!active[src]) continue;
        if (!pending[src]) break;
        wire::LetMessage& m = *pending[src];
        out.let_sizes.push_back({m.let.num_cells(), m.let.num_particles(), m.wire_bytes});
        trace::ScopedSpan span("gravity.remote", rank.id(), rank.id());
        span.set_peer(m.src);
        span.set_bytes(static_cast<std::int64_t>(m.wire_bytes));
        const double before = times.get("Gravity remote");
        out.remote_stats += rank.gravity_remote(m.let.view(), cfg, times);
        if (lane) lane->remotes.emplace_back(m.src, times.get("Gravity remote") - before);
        pending[src].reset();
      }
    };
    while (std::optional<wire::LetMessage> msg = net.recv(static_cast<int>(r))) {
      const auto src = static_cast<std::size_t>(msg->src);
      BNS_CHECK(src < nranks && src != r && active[src] && !pending[src],
                       "LET from an invalid, inactive or duplicate source rank");
      pending[src] = std::move(*msg);
      walk_ready();
    }
    walk_ready();
  } else {
    rank.parts().zero_forces();
  }

  if (cfg.dt != 0.0) rank.integrate(cfg.dt, times);
  if (lane) lane->integrate = times.get("Integration");
  times.add("Wire encode", net.encode_stats(static_cast<int>(r)).encode_seconds);
  times.add("Wire decode", net.decode_stats(static_cast<int>(r)).decode_seconds);
  return out;
}

void Simulation::redistribute(StepReport& report, TimeBreakdown& driver_times) {
  std::vector<ParticleSet> sets(ranks_.size());
  for (std::size_t r = 0; r < ranks_.size(); ++r) sets[r] = std::move(ranks_[r]->parts());
  DomainUpdate du = redistribute_sets(sets, cfg_, prev_gravity_seconds_, prev_rank_size_,
                                      *transport_, report, driver_times);
  for (std::size_t r = 0; r < ranks_.size(); ++r) ranks_[r]->parts() = std::move(sets[r]);
  space_ = du.space;
  decomp_ = std::move(du.decomp);
}

StepReport Simulation::step() {
  StepReport report;
  report.step = next_step_++;
  report.async = cfg_.async;
  report.kernel = cfg_.kernel;
  WallTimer wall;

  // Fresh endpoints every step: a failed step may leave undrained LET
  // frames (or a closed mailbox from the failure path) behind, and those
  // must not leak into the next step's exchanges.
  inproc_ = std::make_unique<InProcTransport>(cfg_.nranks);
  transport_ = std::make_unique<TrafficRecordingTransport>(*inproc_);

  const std::size_t nranks = ranks_.size();
  TimeBreakdown driver_times;
  std::vector<TimeBreakdown> rank_times(nranks);
  std::vector<LaneTimeline> lanes;

  redistribute(report, driver_times);

  if (cfg_.async) {
    lanes.resize(nranks);
    step_async(report, rank_times, lanes);
    const ScheduleModel model = model_schedule(lanes);
    report.critical_path = model.critical_path;
    report.sequential_model = model.sequential;
    report.gravity_critical = model.gravity_critical;
    report.gravity_sequential = model.gravity_sequential;
  } else {
    step_lockstep(report, rank_times);
  }

  // Feed measured gravity cost back into the next domain update.
  prev_gravity_seconds_.assign(nranks, 0.0);
  prev_rank_size_.assign(nranks, 0);
  for (std::size_t r = 0; r < nranks; ++r) {
    prev_gravity_seconds_[r] =
        rank_times[r].get("Gravity local") + rank_times[r].get("Gravity remote");
    prev_rank_size_[r] = ranks_[r]->parts().size();
  }

  fold_stage_times(report, driver_times, rank_times);
  report.traffic = transport_->take();
  report.elapsed = wall.elapsed();
  // Lane threads write their own ring buffers, so the in-process driver must
  // drain every thread (cluster drivers drain only their own: drain_thread).
  if (trace::Tracer::instance().enabled())
    report.spans = trace::Tracer::instance().drain_all();
  report.metrics = build_step_metrics(report);
  return report;
}

void fold_stage_times(StepReport& report, const TimeBreakdown& driver_times,
                      std::span<const TimeBreakdown> rank_times) {
  for (const char* stage : kStageOrder) {
    const double drv = driver_times.get(stage);
    double mx = drv, sum = drv;
    for (const TimeBreakdown& t : rank_times) {
      const double v = t.get(stage);
      mx = std::max(mx, v);
      sum += v;
    }
    if (mx > 0.0 || sum > 0.0) {
      report.max_times.add(stage, mx);
      report.sum_times.add(stage, sum);
    }
  }
}

void Simulation::step_async(StepReport& report, std::vector<TimeBreakdown>& rank_times,
                            std::vector<LaneTimeline>& lanes) {
  const std::size_t nranks = ranks_.size();

  // The active set (senders and receivers of LETs) and every rank's domain
  // box are fixed before the lanes start: the tree root box equals the tight
  // particle bounds, so receivers' boxes need not wait for their builds.
  std::vector<std::uint8_t> active(nranks, 0);
  std::vector<AABB> boxes(nranks);
  for (std::size_t r = 0; r < nranks; ++r) {
    active[r] = !ranks_[r]->parts().empty();
    if (active[r]) boxes[r] = ranks_[r]->parts().bounds();
  }

  LetExchange net(*transport_, active, &let_state_);
  if (!executor_) executor_ = std::make_unique<Executor>(nranks);

  std::vector<std::uint64_t> let_cells(nranks, 0), let_parts(nranks, 0);
  std::vector<InteractionStats> local_stats(nranks), remote_stats(nranks);
  std::vector<std::vector<wire::LetSizeSample>> sizes(nranks);
  std::vector<std::exception_ptr> errors(nranks);

  std::vector<std::future<void>> done;
  done.reserve(nranks);

  // Failure path: a lane that cannot run (or finish) its export loop still
  // owes LETs to peers that will block in recv() for them. Deliver the owed
  // messages as empties (they exert no force) starting at round-robin offset
  // `first_peer`; if even a compensation post fails, close the peer's
  // mailbox — allocation-free — so its recv() fails fast instead of hanging.
  auto post_owed = [&](std::size_t src, std::size_t first_peer) {
    for (std::size_t k = first_peer; k < nranks; ++k) {
      const std::size_t dst = (src + k) % nranks;
      if (!active[dst]) continue;
      try {
        net.post(static_cast<int>(src), static_cast<int>(dst), LetTree{}, 0.0);
      } catch (...) {
        net.close(static_cast<int>(dst));
      }
    }
  };

  auto submit_lane = [&](std::size_t r) {
    done.push_back(executor_->run(r, [&, r] {
      // Export progress is tracked outside the try so the failure path
      // knows which posts are still owed.
      std::size_t next_peer = 1;
      try {
        trace::ScopedSpan lane_span("lane.step", static_cast<std::int32_t>(r),
                                    static_cast<std::int32_t>(r), report.step);
        Rank& rank = *ranks_[r];
        TimeBreakdown& times = rank_times[r];
        LaneTimeline& lane = lanes[r];

        rank.build(space_, cfg_, times);
        lane.sort = times.get("Sorting SFC");
        lane.build = times.get("Tree-construction");
        lane.props = times.get("Tree-properties");

        RankStepStats out =
            run_rank_step(rank, cfg_, net, active, boxes, times, &lane, next_peer);
        let_cells[r] = out.let_cells;
        let_parts[r] = out.let_particles;
        local_stats[r] = out.local_stats;
        remote_stats[r] = out.remote_stats;
        sizes[r] = std::move(out.let_sizes);
      } catch (...) {
        errors[r] = std::current_exception();
        // Every lane must return before the driver can rethrow (it owns the
        // state the lanes reference), so unblock the peers first.
        if (active[r]) post_owed(r, next_peer);
      }
    }));
  };
  std::size_t submitted = 0;
  std::exception_ptr submit_error;
  try {
    for (; submitted < nranks; ++submitted) submit_lane(submitted);
  } catch (...) {
    // A submission itself threw (allocation of the task): lanes never
    // submitted owe their whole complement of LETs.
    submit_error = std::current_exception();
    for (std::size_t s = submitted; s < nranks; ++s)
      if (active[s]) post_owed(s, 1);
  }
  // Lanes trap their own exceptions, so these waits always complete; only
  // then is it safe to unwind the mailboxes/timelines the lanes reference.
  for (std::future<void>& f : done) f.wait();
  if (submit_error) std::rethrow_exception(submit_error);
  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);

  for (std::size_t r = 0; r < nranks; ++r) {
    report.let_cells += let_cells[r];
    report.let_particles += let_parts[r];
    report.local_stats += local_stats[r];
    report.remote_stats += remote_stats[r];
    report.let_wire += net.encode_stats(static_cast<int>(r));
    report.let_wire.decode_seconds += net.decode_stats(static_cast<int>(r)).decode_seconds;
    report.let_delta += net.delta_stats(static_cast<int>(r));
    report.let_sizes.insert(report.let_sizes.end(), sizes[r].begin(), sizes[r].end());
  }
}

void Simulation::step_lockstep(StepReport& report, std::vector<TimeBreakdown>& rank_times) {
  const std::size_t nranks = ranks_.size();

  for (std::size_t r = 0; r < nranks; ++r)
    ranks_[r]->build(space_, cfg_, rank_times[r]);

  // LET exchange through the same frame protocol as the async schedule:
  // extraction is sender-side work, decoding + grafting receiver-side.
  std::vector<std::uint8_t> active(nranks, 0);
  for (std::size_t r = 0; r < nranks; ++r) active[r] = !ranks_[r]->parts().empty();
  LetExchange net(*transport_, active, &let_state_);
  for (std::size_t src = 0; src < nranks; ++src) {
    if (!active[src]) continue;
    for (std::size_t dst = 0; dst < nranks; ++dst) {
      if (dst == src || !active[dst]) continue;
      WallTimer timer;
      LetTree let = ranks_[src]->export_let(ranks_[dst]->domain_box());
      rank_times[src].add("Exchange LET", timer.elapsed());
      report.let_cells += let.num_cells();
      report.let_particles += let.num_particles();
      net.post(static_cast<int>(src), static_cast<int>(dst), let, 0.0);
    }
  }
  std::vector<LetTree> forests(nranks);
  for (std::size_t dst = 0; dst < nranks; ++dst) {
    std::vector<LetTree> imported;
    while (std::optional<wire::LetMessage> msg = net.recv(static_cast<int>(dst))) {
      report.let_sizes.push_back(
          {msg->let.num_cells(), msg->let.num_particles(), msg->wire_bytes});
      imported.push_back(std::move(msg->let));
    }
    if (imported.empty()) continue;
    ScopedTimer t(rank_times[dst], "Exchange LET");
    forests[dst] = graft_lets(imported, cfg_.theta);
  }
  for (std::size_t r = 0; r < nranks; ++r) {
    rank_times[r].add("Wire encode", net.encode_stats(static_cast<int>(r)).encode_seconds);
    rank_times[r].add("Wire decode", net.decode_stats(static_cast<int>(r)).decode_seconds);
    report.let_wire += net.encode_stats(static_cast<int>(r));
    report.let_wire.decode_seconds += net.decode_stats(static_cast<int>(r)).decode_seconds;
    report.let_delta += net.delta_stats(static_cast<int>(r));
  }

  for (std::size_t r = 0; r < nranks; ++r) {
    ranks_[r]->parts().zero_forces();
    report.local_stats += ranks_[r]->gravity_local(cfg_, rank_times[r]);
    report.remote_stats +=
        ranks_[r]->gravity_remote(forests[r].view(), cfg_, rank_times[r]);
  }

  if (cfg_.dt != 0.0)
    for (std::size_t r = 0; r < nranks; ++r)
      ranks_[r]->integrate(cfg_.dt, rank_times[r]);
}

ParticleSet gather_sorted(std::span<const ParticleSet* const> sets) {
  ParticleSet out;
  std::size_t total = 0;
  for (const ParticleSet* p : sets) total += p->size();
  out.reserve(total);
  for (const ParticleSet* set : sets) {
    const ParticleSet& p = *set;
    for (std::size_t i = 0; i < p.size(); ++i) {
      out.add(p.get(i));
      out.ax.back() = p.ax[i];
      out.ay.back() = p.ay[i];
      out.az.back() = p.az[i];
      out.pot.back() = p.pot[i];
      out.key.back() = p.key[i];
    }
  }
  std::vector<std::uint32_t> perm(out.size());
  std::iota(perm.begin(), perm.end(), 0u);
  std::sort(perm.begin(), perm.end(),
            [&](std::uint32_t a, std::uint32_t b) { return out.id[a] < out.id[b]; });
  out.apply_permutation(perm);
  return out;
}

double total_kinetic_energy(std::span<const ParticleSet* const> sets) {
  double ke = 0.0;
  for (const ParticleSet* set : sets) {
    const ParticleSet& p = *set;
    for (std::size_t i = 0; i < p.size(); ++i) ke += 0.5 * p.mass[i] * norm2(p.vel(i));
  }
  return ke;
}

double total_potential_energy(std::span<const ParticleSet* const> sets) {
  double pe = 0.0;
  for (const ParticleSet* set : sets) {
    const ParticleSet& p = *set;
    for (std::size_t i = 0; i < p.size(); ++i) pe += 0.5 * p.mass[i] * p.pot[i];
  }
  return pe;
}

namespace {

std::vector<const ParticleSet*> rank_sets(const std::vector<std::unique_ptr<Rank>>& ranks) {
  std::vector<const ParticleSet*> sets;
  sets.reserve(ranks.size());
  for (const auto& rank : ranks) sets.push_back(&rank->parts());
  return sets;
}

}  // namespace

ParticleSet Simulation::gather() const { return gather_sorted(rank_sets(ranks_)); }

std::vector<ParticleSet> Simulation::checkpoint_sets() const {
  std::vector<ParticleSet> sets;
  sets.reserve(ranks_.size());
  for (const auto& rank : ranks_) sets.push_back(rank->parts());
  return sets;
}

void Simulation::restore(std::vector<ParticleSet> sets, int next_step) {
  BNS_CHECK(sets.size() == ranks_.size(),
                   "checkpoint rank count must match the simulation config");
  for (std::size_t r = 0; r < ranks_.size(); ++r)
    ranks_[r]->parts() = std::move(sets[r]);
  next_step_ = next_step;
  prev_gravity_seconds_.clear();
  prev_rank_size_.clear();
}

std::size_t Simulation::num_particles() const {
  std::size_t n = 0;
  for (const auto& rank : ranks_) n += rank->parts().size();
  return n;
}

double Simulation::kinetic_energy() const { return total_kinetic_energy(rank_sets(ranks_)); }

double Simulation::potential_energy() const {
  return total_potential_energy(rank_sets(ranks_));
}

void print_step_report(const StepReport& report, std::ostream& os) {
  os << "step " << report.step << ": n=" << report.num_particles
     << " kernel=" << kernel_backend_name(report.kernel)
     << " migrated=" << report.migrated << " LET cells=" << report.let_cells
     << " LET particles=" << report.let_particles << '\n';

  TextTable table({"Stage", "max [ms]", "sum [ms]", "% max"});
  const double total_max = report.max_times.total();
  for (const auto& entry : report.max_times.entries()) {
    const double sum = report.sum_times.get(entry.name);
    table.add_row({entry.name, TextTable::num(entry.seconds * 1e3),
                   TextTable::num(sum * 1e3),
                   TextTable::num(total_max > 0.0 ? 100.0 * entry.seconds / total_max : 0.0,
                                  1)});
  }
  table.add_row({"Total", TextTable::num(total_max * 1e3),
                 TextTable::num(report.sum_times.total() * 1e3), "100.0"});
  table.print(os);

  const InteractionStats stats = report.stats();
  const GravityRates rates = gravity_rates(report);
  os << "interactions: p2p/particle="
     << TextTable::num(stats.p2p_per_particle(report.num_particles), 1)
     << " p2c/particle=" << TextTable::num(stats.p2c_per_particle(report.num_particles), 1)
     << " | gravity " << TextTable::num(rates.gflops_device, 2)
     << " Gflop/s (device), " << TextTable::num(rates.gflops_parallel, 2)
     << " Gflop/s (parallel model)\n";
  if (stats.batches() > 0) {
    os << "batches: " << stats.pp_batches << " p-p + " << stats.pc_batches
       << " p-c, fill " << TextTable::num(100.0 * stats.fill_ratio(), 1)
       << "% (useful/padded lanes)\n";
  }

  os << "wire: LET " << human_bytes(static_cast<double>(report.let_wire.bytes)) << " in "
     << report.let_wire.frames << " frame(s), enc "
     << TextTable::num(report.let_wire.encode_seconds * 1e3) << " ms, dec "
     << TextTable::num(report.let_wire.decode_seconds * 1e3) << " ms | particles "
     << human_bytes(static_cast<double>(report.part_wire.bytes)) << " in "
     << report.part_wire.frames << " frame(s), enc "
     << TextTable::num(report.part_wire.encode_seconds * 1e3) << " ms, dec "
     << TextTable::num(report.part_wire.decode_seconds * 1e3) << " ms";
  if (report.dom_wire.frames > 0) {
    os << " | domain " << human_bytes(static_cast<double>(report.dom_wire.bytes)) << " in "
       << report.dom_wire.frames << " frame(s)";
  }
  os << "\n";
  if (report.let_delta.full_frames + report.let_delta.delta_frames > 0) {
    os << "let cache: " << report.let_delta.delta_frames << " delta + "
       << report.let_delta.full_frames << " full frame(s), saved "
       << human_bytes(static_cast<double>(report.let_delta.bytes_saved)) << ", "
       << report.let_delta.cache_hits << " hit(s), " << report.let_delta.invalidations
       << " invalidation(s)\n";
  }
  print_traffic_by_type(report.traffic, os);
  print_traffic_by_type(report.routed, os, "routed via coordinator");
  print_let_histogram(report.let_sizes, os);

  if (report.async) {
    os << "pipeline: critical path " << TextTable::num(report.critical_path * 1e3)
       << " ms vs " << TextTable::num(report.sequential_model * 1e3)
       << " ms lockstep stage-sum -> overlap efficiency "
       << TextTable::num(report.overlap_efficiency(), 2) << "x\n"
       << "  gravity+LET: " << TextTable::num(report.gravity_critical * 1e3)
       << " ms pipelined vs " << TextTable::num(report.gravity_sequential * 1e3)
       << " ms sequential max-sum (Exchange LET + Gravity local + Gravity remote)\n";
  }
}

namespace {

// Labeled metric name: base{src=S,dst=D,type=T} for one traffic-matrix cell.
std::string traffic_label(const char* base, const wire::PeerTraffic& t) {
  return std::string(base) + "{src=" + std::to_string(t.src) +
         ",dst=" + std::to_string(t.dst) +
         ",type=" + wire::frame_type_name(static_cast<wire::FrameType>(t.type)) + "}";
}

void fold_wire_stats(metrics::Snapshot& m, const char* kind, const wire::WireStats& ws) {
  const std::string base = std::string("wire.") + kind;
  m.counters[base + ".frames"] = static_cast<double>(ws.frames);
  m.counters[base + ".bytes"] = static_cast<double>(ws.bytes);
  m.counters[base + ".encode_s"] = ws.encode_seconds;
  m.counters[base + ".decode_s"] = ws.decode_seconds;
}

}  // namespace

metrics::Snapshot build_step_metrics(const StepReport& r) {
  metrics::Snapshot m;
  m.counters["step.migrated"] = static_cast<double>(r.migrated);
  m.counters["step.let_cells"] = static_cast<double>(r.let_cells);
  m.counters["step.let_particles"] = static_cast<double>(r.let_particles);
  m.counters["gravity.local.p2p"] = static_cast<double>(r.local_stats.p2p);
  m.counters["gravity.local.p2c"] = static_cast<double>(r.local_stats.p2c);
  m.counters["gravity.remote.p2p"] = static_cast<double>(r.remote_stats.p2p);
  m.counters["gravity.remote.p2c"] = static_cast<double>(r.remote_stats.p2c);
  const InteractionStats stats = r.stats();
  if (stats.batches() > 0) {
    m.counters["kernel.batch.count{kind=pp}"] = static_cast<double>(stats.pp_batches);
    m.counters["kernel.batch.count{kind=pc}"] = static_cast<double>(stats.pc_batches);
    m.counters["kernel.interactions.useful"] = static_cast<double>(stats.p2p + stats.p2c);
    m.counters["kernel.interactions.padded"] =
        static_cast<double>(stats.p2p_padded + stats.p2c_padded);
    m.gauges["kernel.batch.fill_ratio"] = stats.fill_ratio();
    // Useful interactions per drained batch as a pow-2 histogram: bucket b of
    // InteractionStats::batch_hist covers [2^b, 2^(b+1)), so bound i is set
    // to 2^(i+1) - 1 (metric buckets are (lo, hi] against integer samples).
    metrics::HistogramData h;
    h.bounds.resize(kBatchHistBuckets - 1);
    for (std::size_t b = 0; b + 1 < kBatchHistBuckets; ++b)
      h.bounds[b] = static_cast<double>((std::uint64_t{2} << b) - 1);
    h.counts.assign(kBatchHistBuckets, 0);
    for (std::size_t b = 0; b < kBatchHistBuckets; ++b)
      h.counts[b] = stats.batch_hist[b];
    h.count = stats.batches();
    h.sum = static_cast<double>(stats.p2p + stats.p2c);
    m.histograms["kernel.batch.interactions"] = std::move(h);
  }
  fold_wire_stats(m, "let", r.let_wire);
  fold_wire_stats(m, "part", r.part_wire);
  fold_wire_stats(m, "dom", r.dom_wire);
  if (r.let_delta.full_frames + r.let_delta.delta_frames > 0) {
    m.counters["let.delta.frames{kind=full}"] =
        static_cast<double>(r.let_delta.full_frames);
    m.counters["let.delta.frames{kind=delta}"] =
        static_cast<double>(r.let_delta.delta_frames);
    m.counters["let.delta.bytes_saved"] = static_cast<double>(r.let_delta.bytes_saved);
    m.counters["let.delta.cache_hits"] = static_cast<double>(r.let_delta.cache_hits);
    m.counters["let.delta.invalidations"] =
        static_cast<double>(r.let_delta.invalidations);
  }
  for (const wire::PeerTraffic& t : r.traffic) {
    m.counters[traffic_label("transport.post.frames", t)] = static_cast<double>(t.frames);
    m.counters[traffic_label("transport.post.bytes", t)] = static_cast<double>(t.bytes);
  }
  for (const wire::PeerTraffic& t : r.routed) {
    m.counters[traffic_label("transport.routed.frames", t)] = static_cast<double>(t.frames);
    m.counters[traffic_label("transport.routed.bytes", t)] = static_cast<double>(t.bytes);
  }
  m.gauges["step.num_particles"] = static_cast<double>(r.num_particles);
  m.gauges["step.elapsed_s"] = r.elapsed;
  if (r.async) {
    m.gauges["schedule.critical_path_s"] = r.critical_path;
    m.gauges["schedule.sequential_model_s"] = r.sequential_model;
    m.gauges["schedule.gravity_critical_s"] = r.gravity_critical;
    m.gauges["schedule.gravity_sequential_s"] = r.gravity_sequential;
    m.gauges["schedule.overlap_efficiency"] = r.overlap_efficiency();
  }
  for (const auto& e : r.max_times.entries())
    m.gauges["stage.max_s{stage=" + e.name + "}"] = e.seconds;
  for (const auto& e : r.sum_times.entries())
    m.gauges["stage.sum_s{stage=" + e.name + "}"] = e.seconds;
  // Pow-2 LET frame-size buckets, 16 B .. 4 GiB (the print histogram's scheme
  // with fixed bounds so snapshots merge across ranks and steps).
  const std::vector<double> bounds = metrics::pow2_bounds(4, 32);
  if (!r.let_sizes.empty()) {
    metrics::HistogramData h;
    h.bounds = bounds;
    h.counts.assign(bounds.size() + 1, 0);
    for (const wire::LetSizeSample& s : r.let_sizes) {
      const auto v = static_cast<double>(s.bytes);
      std::size_t b = 0;
      while (b < h.bounds.size() && v > h.bounds[b]) ++b;
      ++h.counts[b];
      ++h.count;
      h.sum += v;
    }
    m.histograms["let.size.bytes"] = std::move(h);
  }
  return m;
}

void write_step_report_json(const RunInfo& info, std::span<const StepReport> reports,
                            std::ostream& os) {
  const auto flags = os.flags();
  const auto precision = os.precision(12);
  os << "{\"schema\": 1,\n \"config\": {\"ranks\": " << info.ranks
     << ", \"num_particles\": " << info.num_particles << ", \"theta\": " << info.theta
     << ", \"transport\": \"" << info.transport << "\", \"topology\": \"" << info.topology
     << "\", \"cluster\": \"" << info.cluster << "\", \"balance\": \"" << info.balance
     << "\", \"kernel\": \"" << info.kernel
     << "\", \"async\": " << (info.async ? "true" : "false")
     << ", \"let_cache\": " << (info.let_cache ? "true" : "false")
     << ", \"wire_version\": " << info.wire_version << "},\n \"steps\": [";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const StepReport& r = reports[i];
    const InteractionStats stats = r.stats();
    const GravityRates rates = gravity_rates(r);
    os << (i == 0 ? "\n" : ",\n")
       << "  {\"step\": " << r.step << ", \"async\": " << (r.async ? "true" : "false")
       << ", \"num_particles\": " << r.num_particles << ", \"migrated\": " << r.migrated
       << ", \"let_cells\": " << r.let_cells << ", \"let_particles\": " << r.let_particles
       << ",\n   \"elapsed_s\": " << r.elapsed
       << ", \"critical_path_s\": " << r.critical_path
       << ", \"sequential_model_s\": " << r.sequential_model
       << ", \"gravity_critical_s\": " << r.gravity_critical
       << ", \"gravity_sequential_s\": " << r.gravity_sequential
       << ", \"overlap_efficiency\": " << r.overlap_efficiency()
       << ",\n   \"p2p\": " << stats.p2p << ", \"p2c\": " << stats.p2c
       << ", \"flops\": " << stats.flops()
       << ", \"useful_flops\": " << stats.useful_flops()
       << ", \"padded_flops\": " << stats.padded_flops()
       << ", \"pp_batches\": " << stats.pp_batches
       << ", \"pc_batches\": " << stats.pc_batches
       << ", \"fill_ratio\": " << stats.fill_ratio()
       << ", \"gflops_device\": " << rates.gflops_device
       << ", \"gflops_parallel\": " << rates.gflops_parallel
       << ",\n   \"wire\": {\"let_bytes\": " << r.let_wire.bytes
       << ", \"let_frames\": " << r.let_wire.frames
       << ", \"let_encode_s\": " << r.let_wire.encode_seconds
       << ", \"let_decode_s\": " << r.let_wire.decode_seconds
       << ", \"part_bytes\": " << r.part_wire.bytes
       << ", \"part_frames\": " << r.part_wire.frames
       << ", \"part_encode_s\": " << r.part_wire.encode_seconds
       << ", \"part_decode_s\": " << r.part_wire.decode_seconds
       << ", \"dom_bytes\": " << r.dom_wire.bytes
       << ", \"dom_frames\": " << r.dom_wire.frames
       << ", \"dom_encode_s\": " << r.dom_wire.encode_seconds
       << ", \"dom_decode_s\": " << r.dom_wire.decode_seconds
       << ", \"let_full_frames\": " << r.let_delta.full_frames
       << ", \"let_delta_frames\": " << r.let_delta.delta_frames
       << ", \"let_delta_bytes_saved\": " << r.let_delta.bytes_saved
       << ", \"let_cache_hits\": " << r.let_delta.cache_hits
       << ", \"let_cache_invalidations\": " << r.let_delta.invalidations << "}";
    const auto write_matrix = [&os](const char* key,
                                    std::span<const wire::PeerTraffic> cells) {
      os << ",\n   \"" << key << "\": [";
      for (std::size_t t = 0; t < cells.size(); ++t) {
        const wire::PeerTraffic& pt = cells[t];
        os << (t == 0 ? "" : ", ") << "{\"src\": " << pt.src << ", \"dst\": " << pt.dst
           << ", \"type\": \""
           << wire::frame_type_name(static_cast<wire::FrameType>(pt.type))
           << "\", \"frames\": " << pt.frames << ", \"bytes\": " << pt.bytes << '}';
      }
      os << "]";
    };
    write_matrix("traffic", r.traffic);
    write_matrix("routed", r.routed);
    const LetSizeSummary ls = summarize_let_sizes(r.let_sizes);
    os << ",\n   \"let_size_bytes\": {\"count\": " << r.let_sizes.size()
       << ", \"min\": " << ls.min_bytes << ", \"median\": " << ls.median_bytes
       << ", \"max\": " << ls.max_bytes << "}"
       << ",\n   \"stages\": {";
    const auto& entries = r.max_times.entries();
    for (std::size_t e = 0; e < entries.size(); ++e) {
      os << (e == 0 ? "" : ", ") << '"' << entries[e].name << "\": {\"max_s\": "
         << entries[e].seconds << ", \"sum_s\": " << r.sum_times.get(entries[e].name)
         << '}';
    }
    os << "}";
    os << ",\n   \"metrics\": ";
    metrics::to_json(os, r.metrics);
    os << "}";
  }
  os << "\n]}\n";
  os.precision(precision);
  os.flags(flags);
}

}  // namespace bonsai::domain
