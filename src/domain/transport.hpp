// Byte-oriented inter-rank transport: the seam where MPI would slot in.
//
// A Transport moves encoded wire frames (see domain/wire.hpp) between rank
// endpoints. post() is nonblocking (the MPI_Isend analogue) and recv()
// blocks until a frame addressed to the endpoint arrives — exactly the
// contract the LET exchange and the particle alltoallv are written against,
// so every backend (in-process loopback, localhost TCP, a future MPI
// subclass) is interchangeable behind this interface.
//
// Two backends ship today:
//
// * InProcTransport — per-endpoint mailboxes inside one process; frames are
//   moved, not copied, preserving the PR-2 threaded-pipeline performance.
// * SocketTransport — localhost TCP in a star topology: worker processes
//   each hold one connection to a coordinator, which routes worker-to-worker
//   frames and terminates control frames addressed to kCoordinatorRank.
//   Frames on the socket are preceded by a 16-byte routing header
//   (src, dst, length); payload bytes are identical to the in-process case.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "domain/channel.hpp"

namespace bonsai::domain {

// Destination id of the cluster coordinator (valid rank ids are >= 0).
inline constexpr int kCoordinatorRank = -1;

class Transport {
 public:
  virtual ~Transport() = default;

  // Nonblocking post of an encoded frame from `src` to `dst`.
  virtual void post(int src, int dst, std::vector<std::uint8_t> frame) = 0;

  // Blocking receive of the next frame addressed to `dst`, in arrival order;
  // nullopt once the endpoint is closed *and* drained. `dst` must be an
  // endpoint local to this transport instance.
  virtual std::optional<std::vector<std::uint8_t>> recv(int dst) = 0;

  // Mark a local endpoint as complete: pending frames stay receivable, then
  // recv() returns nullopt. Used by failure paths to fail fast, never hang.
  virtual void close(int dst) = 0;
};

// All ranks in one process; endpoint r's mailbox is a Channel of frames.
class InProcTransport final : public Transport {
 public:
  explicit InProcTransport(int nranks);

  int num_ranks() const { return static_cast<int>(mailboxes_.size()); }

  void post(int src, int dst, std::vector<std::uint8_t> frame) override;
  std::optional<std::vector<std::uint8_t>> recv(int dst) override;
  void close(int dst) override;

 private:
  std::vector<std::unique_ptr<Channel<std::vector<std::uint8_t>>>> mailboxes_;
};

// Send-side traffic accounting decorator: every post() is recorded into a
// per-(src, dst, frame type) frames/bytes matrix — the data behind the step
// report's traffic section — and forwarded to the inner transport. recv()
// and close() pass through untouched; counting sends only means summing the
// matrix over endpoints never double-counts a frame. record() is public so a
// driver can also account frames it *receives* from endpoints that run no
// recorder of their own (the cluster coordinator books worker StepResults
// this way). Thread-safe: concurrent rank pipelines post through one
// recorder.
class TrafficRecordingTransport final : public Transport {
 public:
  explicit TrafficRecordingTransport(Transport& inner) : inner_(inner) {}

  void post(int src, int dst, std::vector<std::uint8_t> frame) override;
  std::optional<std::vector<std::uint8_t>> recv(int dst) override { return inner_.recv(dst); }
  void close(int dst) override { inner_.close(dst); }

  void record(int src, int dst, std::uint16_t type, std::uint64_t bytes);

  // Drain the accumulated matrix, sorted by (src, dst, type).
  std::vector<wire::PeerTraffic> take();

 private:
  Transport& inner_;
  std::mutex mutex_;
  std::map<std::tuple<int, int, std::uint16_t>, std::pair<std::uint64_t, std::uint64_t>>
      cells_;
};

// Localhost TCP star: create with listen() on the coordinator (local
// endpoint kCoordinatorRank) or connect() on a worker (local endpoint =
// its rank id). A reader thread per socket delivers incoming frames to the
// local mailbox or, on the coordinator, forwards worker-to-worker frames.
// A peer disconnect closes the local mailboxes, so blocked recv() calls
// fail fast instead of hanging.
class SocketTransport final : public Transport {
 public:
  // Coordinator side: bind + listen immediately (so port() is known before
  // workers are spawned); accept_workers() then blocks until all `nworkers`
  // have connected and announced their rank with a Hello frame. Fail fast,
  // never hang: with timeout_ms > 0 the wait throws after that deadline,
  // and `keep_waiting`, when given, is polled between accepts — returning
  // false (e.g. a spawned worker died before connecting) aborts the wait.
  static std::unique_ptr<SocketTransport> listen(std::uint16_t port, int nworkers);
  void accept_workers(int timeout_ms = 0, const std::function<bool()>& keep_waiting = {});

  // Worker side: connect to the coordinator and announce `rank`.
  static std::unique_ptr<SocketTransport> connect(const std::string& host,
                                                  std::uint16_t port, int rank);

  ~SocketTransport() override;

  std::uint16_t port() const { return port_; }

  void post(int src, int dst, std::vector<std::uint8_t> frame) override;
  std::optional<std::vector<std::uint8_t>> recv(int dst) override;
  void close(int dst) override;

 private:
  struct Peer;  // one connected socket + its writer mutex and reader thread

  SocketTransport() = default;
  void start_reader(std::size_t peer_index);
  void write_routed(Peer& peer, int src, int dst, std::span<const std::uint8_t> frame);
  void close_all_local();

  bool coordinator_ = false;
  int local_rank_ = kCoordinatorRank;  // worker: its rank id
  int nworkers_ = 0;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::vector<std::unique_ptr<Peer>> peers_;  // coordinator: by rank; worker: [0]
  // Coordinator: one mailbox (control/result frames addressed to it).
  // Worker: one mailbox (all frames addressed to its rank).
  Channel<std::vector<std::uint8_t>> inbox_;
};

}  // namespace bonsai::domain
