// Byte-oriented inter-rank transport: the seam where MPI would slot in.
//
// A Transport moves encoded wire frames (see domain/wire.hpp) between rank
// endpoints. post() is nonblocking (the MPI_Isend analogue) and recv()
// blocks until a frame addressed to the endpoint arrives — exactly the
// contract the LET exchange and the particle alltoallv are written against,
// so every backend (in-process loopback, localhost TCP, a future MPI
// subclass) is interchangeable behind this interface.
//
// Two backends ship today:
//
// * InProcTransport — per-endpoint mailboxes inside one process; frames are
//   moved, not copied, preserving the PR-2 threaded-pipeline performance.
// * SocketTransport — localhost TCP in one of two topologies:
//
//   - star: worker processes each hold one connection to a coordinator,
//     which routes worker-to-worker frames and terminates control frames
//     addressed to kCoordinatorRank. Simple, but every worker↔worker byte
//     crosses the coordinator's socket twice.
//   - mesh: each worker additionally listens on its own port; the
//     coordinator's rendezvous hands every worker a PeerDirectory, workers
//     dial every higher-ranked peer (lower ranks accept, so each pair gets
//     exactly one connection), and post() writes worker↔worker frames
//     directly on the pair's socket — the paper's point-to-point MPI_Isend
//     structure (§III-B). Coordinator-addressed frames keep the star link.
//
//   Frames on every socket are preceded by a 16-byte routing header
//   (src, dst, length); payload bytes are identical to the in-process case.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "domain/channel.hpp"
#include "domain/wire.hpp"

namespace bonsai::domain {

// Destination id of the cluster coordinator (valid rank ids are >= 0).
inline constexpr int kCoordinatorRank = -1;

class Transport {
 public:
  virtual ~Transport() = default;

  // Nonblocking post of an encoded frame from `src` to `dst`.
  virtual void post(int src, int dst, std::vector<std::uint8_t> frame) = 0;

  // Blocking receive of the next frame addressed to `dst`, in arrival order;
  // nullopt once the endpoint is closed *and* drained. `dst` must be an
  // endpoint local to this transport instance.
  virtual std::optional<std::vector<std::uint8_t>> recv(int dst) = 0;

  // Mark a local endpoint as complete: pending frames stay receivable, then
  // recv() returns nullopt. Used by failure paths to fail fast, never hang.
  virtual void close(int dst) = 0;

  // Human-readable cause of the local endpoint's closure, empty while the
  // endpoint is open or when the backend records none. Failure paths append
  // it so a worker reports "coordinator closed connection" or the socket
  // errno instead of a bare disconnect.
  virtual std::string close_reason() const { return {}; }
};

// All ranks in one process; endpoint r's mailbox is a Channel of frames.
class InProcTransport final : public Transport {
 public:
  explicit InProcTransport(int nranks);

  int num_ranks() const { return static_cast<int>(mailboxes_.size()); }

  void post(int src, int dst, std::vector<std::uint8_t> frame) override;
  std::optional<std::vector<std::uint8_t>> recv(int dst) override;
  void close(int dst) override;

 private:
  std::vector<std::unique_ptr<Channel<std::vector<std::uint8_t>>>> mailboxes_;
};

// Send-side traffic accounting decorator: every post() is recorded into a
// per-(src, dst, frame type) frames/bytes matrix — the data behind the step
// report's traffic section — and forwarded to the inner transport. recv()
// and close() pass through untouched; counting sends only means summing the
// matrix over endpoints never double-counts a frame. record() is public so a
// driver can also account frames it *receives* from endpoints that run no
// recorder of their own (the cluster coordinator books worker StepResults
// this way). Thread-safe: concurrent rank pipelines post through one
// recorder.
class TrafficRecordingTransport final : public Transport {
 public:
  explicit TrafficRecordingTransport(Transport& inner) : inner_(inner) {}

  void post(int src, int dst, std::vector<std::uint8_t> frame) override;
  std::optional<std::vector<std::uint8_t>> recv(int dst) override { return inner_.recv(dst); }
  void close(int dst) override { inner_.close(dst); }
  std::string close_reason() const override { return inner_.close_reason(); }

  void record(int src, int dst, std::uint16_t type, std::uint64_t bytes);

  // Drain the accumulated matrix, sorted by (src, dst, type).
  std::vector<wire::PeerTraffic> take();

 private:
  Transport& inner_;
  std::mutex mutex_;
  std::map<std::tuple<int, int, std::uint16_t>, std::pair<std::uint64_t, std::uint64_t>>
      cells_;
};

// How a SocketTransport cluster wires its worker↔worker traffic.
enum class SocketTopology {
  kStar,  // everything via the coordinator, which routes
  kMesh,  // direct pair sockets between workers; star link for control only
};

// Localhost TCP: create with listen() on the coordinator (local endpoint
// kCoordinatorRank), connect() on a star worker, or connect_mesh() +
// mesh_with_peers() on a mesh worker (local endpoint = its rank id). A
// reader thread per socket delivers incoming frames to the local mailbox or,
// on the coordinator, forwards worker-to-worker frames. Any mid-frame write
// failure poisons that peer (the routing header may be partially on the
// wire, so the stream can never be trusted again): its fd is shut down and
// every later post to it throws a named error instead of desyncing the
// stream. Losing the coordinator link closes the local mailbox, so blocked
// recv() calls fail fast instead of hanging; close_reason() then says why
// ("coordinator closed connection" vs the socket errno).
class SocketTransport final : public Transport {
 public:
  // Coordinator side: bind + listen immediately (so port() is known before
  // workers are spawned); accept_workers() then blocks until all `nworkers`
  // have connected and announced their rank with a Hello frame. In mesh
  // topology every Hello must announce a listen port, and accept_workers()
  // finishes by handing each worker the PeerDirectory (before Config, which
  // the cluster driver sends next). Fail fast, never hang: with
  // timeout_ms > 0 the wait throws after that deadline, and `keep_waiting`,
  // when given, is polled between accepts — returning false (e.g. a spawned
  // worker died before connecting) aborts the wait.
  static std::unique_ptr<SocketTransport> listen(std::uint16_t port, int nworkers,
                                                 SocketTopology topology = SocketTopology::kStar);
  void accept_workers(int timeout_ms = 0, const std::function<bool()>& keep_waiting = {});

  // Worker side, star: connect to the coordinator and announce `rank`.
  static std::unique_ptr<SocketTransport> connect(const std::string& host,
                                                  std::uint16_t port, int rank);

  // Worker side, mesh: bind an own listener on `listen_port` (0: ephemeral),
  // connect to the coordinator, announce rank + listen port, and block until
  // the coordinator's PeerDirectory arrives. The worker↔worker links are not
  // up yet — call mesh_with_peers() next.
  static std::unique_ptr<SocketTransport> connect_mesh(const std::string& host,
                                                       std::uint16_t port, int rank,
                                                       std::uint16_t listen_port);

  // Establish the pair links: dial every higher-ranked directory entry
  // (announcing ourselves with a PeerHello) and accept one connection from
  // every lower-ranked peer. Throws a timed error naming the still-missing
  // ranks if a peer never dials — a partial mesh must fail, not hang.
  void mesh_with_peers(int timeout_ms = 30000);

  ~SocketTransport() override;

  std::uint16_t port() const { return port_; }
  // Mesh worker: the port its own listener is bound to (0 otherwise).
  std::uint16_t mesh_port() const { return mesh_port_; }
  SocketTopology topology() const { return topology_; }

  void post(int src, int dst, std::vector<std::uint8_t> frame) override;
  std::optional<std::vector<std::uint8_t>> recv(int dst) override;
  void close(int dst) override;
  std::string close_reason() const override;

  // Best-effort post for teardown paths: never throws; returns false when
  // the frame could not be (fully) handed to the peer. A dead or
  // never-connected peer must not strand the remaining ranks of a broadcast.
  bool post_best_effort(int src, int dst, std::vector<std::uint8_t> frame) noexcept;

  // Coordinator only: drain the matrix of worker↔worker frames this process
  // *forwarded* (src, dst, type, frames, bytes), sorted by key. The star
  // topology routes all peer traffic here; in a steady-state mesh run the
  // matrix must be empty — the measurable point of the topology.
  std::vector<wire::PeerTraffic> take_routed();

 private:
  struct Peer;  // one connected socket + its writer mutex and reader thread

  SocketTransport() = default;
  Peer& add_peer(int fd, int rank);
  void start_reader(Peer& peer);
  void write_routed(Peer& peer, int src, int dst, std::span<const std::uint8_t> frame);
  // Poison a peer whose stream can no longer be trusted: record the first
  // reason, mark it dead and shut the socket down (waking its reader). The
  // fd stays open until the destructor so the reader thread never races a
  // reuse.
  void fail_peer(Peer& peer, const std::string& reason);
  std::string peer_error(const Peer& peer) const;
  // Close the local mailbox, recording the first reason as close_reason().
  void close_local(const std::string& reason);
  void record_routed(int src, int dst, std::uint16_t type, std::uint64_t bytes);
  std::string peer_name(int rank) const;

  bool coordinator_ = false;
  SocketTopology topology_ = SocketTopology::kStar;
  int local_rank_ = kCoordinatorRank;  // worker: its rank id
  int nworkers_ = 0;
  std::uint16_t port_ = 0;       // coordinator listen port
  std::uint16_t mesh_port_ = 0;  // mesh worker: own listen port
  int listen_fd_ = -1;
  bool meshed_ = false;
  // Coordinator: index = worker rank. Worker: [0] is the coordinator link,
  // mesh pair links append behind it (mesh_link_ maps rank -> entry).
  std::vector<std::unique_ptr<Peer>> peers_;
  std::vector<Peer*> mesh_link_;          // mesh worker: by remote rank
  std::vector<wire::PeerEndpoint> directory_;  // mesh worker: rendezvous result
  // Coordinator: one mailbox (control/result frames addressed to it).
  // Worker: one mailbox (all frames addressed to its rank).
  Channel<std::vector<std::uint8_t>> inbox_;
  mutable std::mutex state_mutex_;  // close_reason_, per-peer errors, routed_
  std::string close_reason_;
  std::map<std::tuple<int, int, std::uint16_t>, std::pair<std::uint64_t, std::uint64_t>>
      routed_;
};

}  // namespace bonsai::domain
