// Central metrics registry: counters, gauges and fixed-bound histograms with
// a stable dotted naming scheme (e.g. "wire.let.bytes{rank=2}",
// "transport.post.bytes{src=0,dst=3,type=Let}", "let.size.bytes").
//
// The registry subsumes the ad-hoc accounting the codebase grew (stage Timer
// rows, wire::PeerTraffic matrices, LET size histograms): drivers fold their
// per-step aggregates into a Registry, snapshot it, and the Snapshot is what
// crosses the wire (inside a Trace frame), lands in --bench JSON, and merges
// across ranks. Kept deliberately free of wire/simulation includes so every
// layer can depend on it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace bonsai::metrics {

// Histogram with explicit upper bucket bounds: counts[i] counts samples with
// value <= bounds[i]; counts.back() (one longer than bounds) is overflow.
struct HistogramData {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  // bounds.size() + 1 entries
  std::uint64_t count = 0;
  double sum = 0.0;
};

// Plain-data form of a registry: what gets serialized, merged and reported.
struct Snapshot {
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

// Adds `from` into `into`: counters and histogram buckets sum, gauges take
// the latest (from wins). Histograms with mismatching bounds throw.
void merge(Snapshot& into, const Snapshot& from);

// Renders a Snapshot as a JSON object {"counters":{...},"gauges":{...},
// "histograms":{name:{"bounds":[...],"counts":[...],"count":n,"sum":s}}}.
void to_json(std::ostream& os, const Snapshot& snapshot);

// Power-of-two bucket bounds [2^lo_exp, 2^hi_exp], the scheme used for LET
// frame sizes.
std::vector<double> pow2_bounds(int lo_exp, int hi_exp);

// Thread-safe registry. Metric kinds live in separate namespaces keyed by
// full name; names should follow "<subsystem>.<what>.<unit>{label=value,...}".
class Registry {
 public:
  void add_counter(const std::string& name, double delta);
  void set_gauge(const std::string& name, double value);
  // Observes into a histogram created on first use with `bounds` (ignored on
  // later calls for the same name).
  void observe(const std::string& name, const std::vector<double>& bounds,
               double value);

  Snapshot snapshot() const;
  // snapshot() + clear, for per-step delta reporting.
  Snapshot take();
  void clear();

 private:
  mutable std::mutex mutex_;
  Snapshot data_;
};

}  // namespace bonsai::metrics
