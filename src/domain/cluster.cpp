#include "domain/cluster.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <deque>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "domain/channel.hpp"
#include "domain/wire.hpp"
#include "util/check.hpp"

namespace bonsai::domain {

namespace {

// Transport decorator consulting an early-arrival stash before the socket:
// a peer's LET for step S can reach a worker before its own StepBegin frame
// (the coordinator's broadcast and the routed LETs race on different
// sockets), so the worker's control loop stashes LET frames it is not yet
// ready for and LetExchange drains the stash first.
class StashTransport final : public Transport {
 public:
  explicit StashTransport(Transport& inner) : inner_(inner) {}

  void push(std::vector<std::uint8_t> frame) { stash_.push_back(std::move(frame)); }

  void post(int src, int dst, std::vector<std::uint8_t> frame) override {
    inner_.post(src, dst, std::move(frame));
  }

  std::optional<std::vector<std::uint8_t>> recv(int dst) override {
    if (!stash_.empty()) {
      std::vector<std::uint8_t> out = std::move(stash_.front());
      stash_.pop_front();
      return out;
    }
    return inner_.recv(dst);
  }

  void close(int dst) override { inner_.close(dst); }

 private:
  Transport& inner_;
  std::deque<std::vector<std::uint8_t>> stash_;
};

}  // namespace

ClusterSimulation::ClusterSimulation(const ClusterConfig& cfg) : cfg_(cfg) {
  BONSAI_CHECK(cfg_.sim.nranks >= 1);
  BONSAI_CHECK_MSG(cfg_.sim.nranks <= 255, "LET forests fan out to at most 255 ranks");
  sets_.resize(static_cast<std::size_t>(cfg_.sim.nranks));
  decomp_ = Decomposition::uniform(cfg_.sim.nranks);
  migrate_net_ = std::make_unique<InProcTransport>(cfg_.sim.nranks);

  net_ = SocketTransport::listen(cfg_.port, cfg_.sim.nranks);
  if (cfg_.spawn_workers) {
    spawn_workers();
    // Spawned workers connect within milliseconds; a generous deadline plus
    // child-liveness polling turns an exec failure into an error, not a hang.
    net_->accept_workers(/*timeout_ms=*/120000, [this] {
      for (long& pid : children_) {
        if (pid < 0) continue;
        int status = 0;
        if (::waitpid(static_cast<pid_t>(pid), &status, WNOHANG) ==
            static_cast<pid_t>(pid)) {
          pid = -1;  // reaped here; the destructor must not wait on it again
          return false;
        }
      }
      return true;
    });
  } else {
    // Externally launched workers arrive on the operator's schedule.
    net_->accept_workers();
  }
  for (int r = 0; r < cfg_.sim.nranks; ++r)
    net_->post(kCoordinatorRank, r, wire::encode_config(cfg_.sim));
}

void ClusterSimulation::spawn_workers() {
  BONSAI_CHECK_MSG(!cfg_.program.empty(), "worker spawning needs the binary path");
  // Workers on this host partition it like in-process rank pipelines do.
  SimConfig tcfg = cfg_.sim;
  tcfg.threads_per_rank = cfg_.worker_threads;
  tcfg.async = true;
  const std::size_t threads = threads_for(tcfg, std::thread::hardware_concurrency());

  for (int r = 0; r < cfg_.sim.nranks; ++r) {
    const std::string rank_str = std::to_string(r);
    const std::string coord = "127.0.0.1:" + std::to_string(net_->port());
    const std::string threads_str = std::to_string(threads);
    const char* argv[] = {cfg_.program.c_str(), "--transport", "socket",
                          "--rank-id",          rank_str.c_str(),
                          "--coordinator",      coord.c_str(),
                          "--threads",          threads_str.c_str(),
                          nullptr};
    const pid_t pid = ::fork();
    if (pid < 0) throw std::runtime_error("ClusterSimulation: fork failed");
    if (pid == 0) {
      ::execv(cfg_.program.c_str(), const_cast<char* const*>(argv));
      _exit(127);  // exec failed; the coordinator sees the hangup
    }
    children_.push_back(pid);
  }
}

ClusterSimulation::~ClusterSimulation() {
  for (int r = 0; r < cfg_.sim.nranks; ++r) {
    try {
      net_->post(kCoordinatorRank, r, wire::encode_shutdown());
    } catch (...) {
      // Worker already gone; reaping below still applies.
    }
  }
  net_.reset();  // closes sockets, joins reader threads
  for (const long pid : children_) {
    if (pid < 0) continue;  // already reaped by the liveness check
    int status = 0;
    ::waitpid(static_cast<pid_t>(pid), &status, 0);
  }
}

void ClusterSimulation::init(ParticleSet global) {
  sets_.assign(sets_.size(), ParticleSet{});
  sets_[0] = std::move(global);
  prev_gravity_seconds_.clear();
  prev_rank_size_.clear();
  next_step_ = 0;
  StepReport scratch;
  TimeBreakdown driver;
  redistribute(scratch, driver);
}

void ClusterSimulation::redistribute(StepReport& report, TimeBreakdown& driver_times) {
  DomainUpdate du = redistribute_sets(sets_, cfg_.sim, prev_gravity_seconds_,
                                      prev_rank_size_, *migrate_net_, report, driver_times);
  bounds_ = du.bounds;
  space_ = du.space;
  decomp_ = std::move(du.decomp);
}

StepReport ClusterSimulation::step() {
  StepReport report;
  report.step = next_step_++;
  report.async = false;  // workers pipeline internally, but no lane model here
  WallTimer wall;

  const std::size_t nranks = sets_.size();
  TimeBreakdown driver_times;
  std::vector<TimeBreakdown> rank_times(nranks);

  redistribute(report, driver_times);

  std::vector<std::uint8_t> active(nranks, 0);
  std::vector<AABB> boxes(nranks);
  for (std::size_t r = 0; r < nranks; ++r) {
    active[r] = !sets_[r].empty();
    if (active[r]) boxes[r] = sets_[r].bounds();
  }

  // Ship every worker its step inputs. The particle sets move out here and
  // come back (with forces) in the results, so the coordinator never holds
  // two copies. Inactive workers get an empty batch to keep the protocol
  // uniform: every worker answers every step.
  for (std::size_t r = 0; r < nranks; ++r) {
    wire::StepBegin sb;
    sb.step = report.step;
    sb.bounds = bounds_;
    sb.active = active;
    sb.boxes = boxes;
    sb.parts = std::move(sets_[r]);
    WallTimer timer;
    std::vector<std::uint8_t> frame = wire::encode_step_begin(sb);
    report.part_wire.encode_seconds += timer.elapsed();
    report.part_wire.frames += 1;
    report.part_wire.bytes += frame.size();
    net_->post(kCoordinatorRank, static_cast<int>(r), std::move(frame));
  }

  // Collect one result per worker, in arrival order.
  std::vector<std::uint8_t> seen(nranks, 0);
  for (std::size_t i = 0; i < nranks; ++i) {
    std::optional<std::vector<std::uint8_t>> frame = net_->recv(kCoordinatorRank);
    BONSAI_CHECK_MSG(frame.has_value(), "a worker disconnected before its step result");
    WallTimer timer;
    wire::StepResult sr = wire::decode_step_result(*frame);
    report.part_wire.decode_seconds += timer.elapsed();
    report.part_wire.frames += 1;
    report.part_wire.bytes += frame->size();
    BONSAI_CHECK_MSG(sr.rank >= 0 && sr.rank < static_cast<int>(nranks) &&
                         !seen[static_cast<std::size_t>(sr.rank)],
                     "duplicate or out-of-range step result");
    seen[static_cast<std::size_t>(sr.rank)] = 1;
    const auto r = static_cast<std::size_t>(sr.rank);
    sets_[r] = std::move(sr.parts);
    rank_times[r] = std::move(sr.times);
    report.let_cells += sr.let_cells;
    report.let_particles += sr.let_particles;
    report.local_stats += sr.local_stats;
    report.remote_stats += sr.remote_stats;
    report.let_wire += sr.let_wire;
    report.let_sizes.insert(report.let_sizes.end(), sr.let_sizes.begin(),
                            sr.let_sizes.end());
  }

  prev_gravity_seconds_.assign(nranks, 0.0);
  prev_rank_size_.assign(nranks, 0);
  for (std::size_t r = 0; r < nranks; ++r) {
    prev_gravity_seconds_[r] =
        rank_times[r].get("Gravity local") + rank_times[r].get("Gravity remote");
    prev_rank_size_[r] = sets_[r].size();
  }

  fold_stage_times(report, driver_times, rank_times);
  report.elapsed = wall.elapsed();
  return report;
}

namespace {

std::vector<const ParticleSet*> set_pointers(const std::vector<ParticleSet>& sets) {
  std::vector<const ParticleSet*> out;
  out.reserve(sets.size());
  for (const ParticleSet& s : sets) out.push_back(&s);
  return out;
}

}  // namespace

ParticleSet ClusterSimulation::gather() const { return gather_sorted(set_pointers(sets_)); }

std::size_t ClusterSimulation::num_particles() const {
  std::size_t n = 0;
  for (const ParticleSet& p : sets_) n += p.size();
  return n;
}

double ClusterSimulation::kinetic_energy() const {
  return total_kinetic_energy(set_pointers(sets_));
}

double ClusterSimulation::potential_energy() const {
  return total_potential_energy(set_pointers(sets_));
}

int run_worker(const std::string& host, std::uint16_t port, int rank_id,
               std::size_t threads) {
  std::unique_ptr<SocketTransport> net = SocketTransport::connect(host, port, rank_id);

  std::optional<std::vector<std::uint8_t>> frame = net->recv(rank_id);
  if (!frame) throw std::runtime_error("worker: coordinator closed before config");
  SimConfig cfg = wire::decode_config(*frame);
  BONSAI_CHECK_MSG(rank_id >= 0 && rank_id < cfg.nranks,
                   "worker rank id outside the configured rank count");
  cfg.threads_per_rank = threads;
  cfg.async = true;
  Rank rank(rank_id, threads_for(cfg, std::thread::hardware_concurrency()));
  StashTransport snet(*net);

  // The previous step's StepResult encode time: it cannot ride in the frame
  // it measures (the timings are part of the payload), so it is reported one
  // step late — per-step rows shift slightly, trajectory totals stay honest.
  double pending_result_encode_s = 0.0;

  for (;;) {
    frame = net->recv(rank_id);
    if (!frame) throw std::runtime_error("worker: coordinator disconnected");
    const wire::FrameType type = wire::frame_type(*frame);
    if (type == wire::FrameType::kShutdown) return 0;
    if (type == wire::FrameType::kLet) {
      // A peer raced its LETs ahead of our StepBegin; hold them for the
      // exchange below.
      snet.push(std::move(*frame));
      continue;
    }
    if (type != wire::FrameType::kStepBegin)
      throw std::runtime_error("worker: unexpected frame type from coordinator");

    WallTimer decode_timer;
    wire::StepBegin sb = wire::decode_step_begin(*frame);
    const double sb_decode_s = decode_timer.elapsed();
    BONSAI_CHECK(sb.active.size() == static_cast<std::size_t>(cfg.nranks));
    const sfc::KeySpace space(sb.bounds, cfg.curve);
    rank.parts() = std::move(sb.parts);

    TimeBreakdown times;
    times.add("Wire decode", sb_decode_s);
    times.add("Wire encode", pending_result_encode_s);
    pending_result_encode_s = 0.0;
    rank.build(space, cfg, times);

    // The exact same per-rank step body as the in-process async lanes, so
    // out-of-process runs reproduce in-process forces.
    wire::StepResult sr;
    sr.rank = rank_id;
    LetExchange let_net(snet, sb.active);
    std::size_t next_peer = 1;
    RankStepStats out =
        run_rank_step(rank, cfg, let_net, sb.active, sb.boxes, times,
                      /*lane=*/nullptr, next_peer);
    sr.let_cells = out.let_cells;
    sr.let_particles = out.let_particles;
    sr.local_stats = out.local_stats;
    sr.remote_stats = out.remote_stats;
    sr.let_sizes = std::move(out.let_sizes);
    sr.let_wire = let_net.encode_stats(rank_id);
    sr.let_wire.decode_seconds = let_net.decode_stats(rank_id).decode_seconds;
    sr.times = times;
    sr.parts = std::move(rank.parts());
    WallTimer encode_timer;
    std::vector<std::uint8_t> result = wire::encode_step_result(sr);
    pending_result_encode_s = encode_timer.elapsed();
    net->post(rank_id, kCoordinatorRank, std::move(result));
  }
}

}  // namespace bonsai::domain
