#include "domain/cluster.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <deque>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "domain/channel.hpp"
#include "domain/wire.hpp"
#include "util/check.hpp"
#include "util/trace.hpp"

namespace bonsai::domain {

namespace {

// Demultiplexes a worker's single socket inbox by frame class. Control
// frames from the coordinator, LETs, SPMD domain frames and migration
// batches all race on the one connection (peers advance at their own pace
// inside a step, and a fast peer's next-step frames can arrive before this
// worker's own StepBegin), so each protocol phase pulls from its own queue
// and frames it is not yet ready for wait in theirs — the generalization of
// PR 3's LET stash. Single-consumer: only the worker's driver thread calls
// recv(). Once the underlying endpoint closes, queued frames stay
// receivable, then recv() returns nullopt (fail fast, never hang).
class FrameDemux {
 public:
  enum class Class : std::size_t {
    kControl = 0,  // StepBegin / Shutdown / Config
    kLet,
    kBoundaries,
    kKeySamples,
    kMigration,
  };
  static constexpr std::size_t kNumClasses = 5;

  FrameDemux(Transport& inner, int rank) : inner_(inner), rank_(rank) {}

  std::optional<std::vector<std::uint8_t>> recv(Class cls) {
    auto& queue = queues_[static_cast<std::size_t>(cls)];
    while (queue.empty()) {
      if (closed_) return std::nullopt;
      std::optional<std::vector<std::uint8_t>> frame = inner_.recv(rank_);
      if (!frame) {
        closed_ = true;
        return std::nullopt;
      }
      const Class got = classify(wire::frame_type(*frame));
      queues_[static_cast<std::size_t>(got)].push_back(std::move(*frame));
    }
    std::vector<std::uint8_t> out = std::move(queue.front());
    queue.pop_front();
    return out;
  }

 private:
  static Class classify(wire::FrameType type) {
    switch (type) {
      case wire::FrameType::kLet: return Class::kLet;
      case wire::FrameType::kLetDelta: return Class::kLet;
      case wire::FrameType::kBoundaries: return Class::kBoundaries;
      case wire::FrameType::kKeySamples: return Class::kKeySamples;
      case wire::FrameType::kMigration: return Class::kMigration;
      default: return Class::kControl;
    }
  }

  Transport& inner_;
  int rank_;
  std::array<std::deque<std::vector<std::uint8_t>>, kNumClasses> queues_;
  bool closed_ = false;
};

// Transport view handing one demux class to a protocol written against the
// plain Transport interface (LetExchange, MigrationExchange): post() goes
// out through the recorded socket, recv() pulls only this class's frames.
class DemuxTransport final : public Transport {
 public:
  DemuxTransport(FrameDemux& demux, Transport& out, FrameDemux::Class cls)
      : demux_(demux), out_(out), cls_(cls) {}

  void post(int src, int dst, std::vector<std::uint8_t> frame) override {
    out_.post(src, dst, std::move(frame));
  }

  std::optional<std::vector<std::uint8_t>> recv(int dst) override {
    (void)dst;
    return demux_.recv(cls_);
  }

  void close(int dst) override { out_.close(dst); }
  std::string close_reason() const override { return out_.close_reason(); }

 private:
  FrameDemux& demux_;
  Transport& out_;
  FrameDemux::Class cls_;
};

std::vector<const ParticleSet*> set_pointers(const std::vector<ParticleSet>& sets) {
  std::vector<const ParticleSet*> out;
  out.reserve(sets.size());
  for (const ParticleSet& s : sets) out.push_back(&s);
  return out;
}

void fill_energy(const ParticleSet& parts, wire::StepResult& sr) {
  const ParticleSet* sets[] = {&parts};
  sr.kinetic = total_kinetic_energy(sets);
  sr.potential = total_potential_energy(sets);
}

}  // namespace

ClusterSimulation::ClusterSimulation(const ClusterConfig& cfg) : cfg_(cfg) {
  BNS_CHECK(cfg_.sim.nranks >= 1);
  BNS_CHECK(cfg_.sim.nranks <= 255, "LET forests fan out to at most 255 ranks");
  sets_.resize(static_cast<std::size_t>(cfg_.sim.nranks));
  decomp_ = Decomposition::uniform(cfg_.sim.nranks);
  migrate_net_ = std::make_unique<InProcTransport>(cfg_.sim.nranks);
  migrate_rec_ = std::make_unique<TrafficRecordingTransport>(*migrate_net_);

  // Tracing is decided before any worker exists; workers inherit the flag
  // from the Config frame and enable their own process's tracer on receipt.
  if (cfg_.sim.trace) trace::Tracer::instance().set_enabled(true);

  net_ = SocketTransport::listen(cfg_.port, cfg_.sim.nranks, cfg_.topology);
  if (cfg_.on_listen) cfg_.on_listen(net_->port());
  if (cfg_.spawn_workers) {
    spawn_workers();
    // Spawned workers connect within milliseconds; a generous deadline plus
    // child-liveness polling turns an exec failure into an error, not a hang.
    net_->accept_workers(/*timeout_ms=*/120000, [this] {
      for (long& pid : children_) {
        if (pid < 0) continue;
        int status = 0;
        if (::waitpid(static_cast<pid_t>(pid), &status, WNOHANG) ==
            static_cast<pid_t>(pid)) {
          pid = -1;  // reaped here; the destructor must not wait on it again
          return false;
        }
      }
      return true;
    });
  } else if (cfg_.on_listen) {
    // Workers launched by the on_listen hook (in-process test threads) are
    // already racing toward connect(); bound the wait so a broken hook fails
    // the test instead of hanging it.
    net_->accept_workers(/*timeout_ms=*/120000);
  } else {
    // Externally launched workers arrive on the operator's schedule.
    net_->accept_workers();
  }
  for (int r = 0; r < cfg_.sim.nranks; ++r)
    net_->post(kCoordinatorRank, r, wire::encode_config(cfg_.sim));
}

void ClusterSimulation::spawn_workers() {
  BNS_CHECK(!cfg_.program.empty(), "worker spawning needs the binary path");
  // Workers on this host partition it like in-process rank pipelines do.
  SimConfig tcfg = cfg_.sim;
  tcfg.threads_per_rank = cfg_.worker_threads;
  tcfg.async = true;
  const std::size_t threads = threads_for(tcfg, std::thread::hardware_concurrency());

  const bool mesh = cfg_.topology == SocketTopology::kMesh;
  for (int r = 0; r < cfg_.sim.nranks; ++r) {
    const std::string rank_str = std::to_string(r);
    const std::string coord = "127.0.0.1:" + std::to_string(net_->port());
    const std::string threads_str = std::to_string(threads);
    std::vector<const char*> argv = {cfg_.program.c_str(), "--transport", "socket",
                                     "--rank-id",          rank_str.c_str(),
                                     "--coordinator",      coord.c_str(),
                                     "--threads",          threads_str.c_str()};
    if (mesh) {
      // Spawned mesh workers pick their own ephemeral listen ports; the
      // coordinator's directory tells the peers where to dial.
      argv.insert(argv.end(), {"--topology", "mesh", "--listen-port", "0"});
    }
    argv.push_back(nullptr);
    const pid_t pid = ::fork();
    if (pid < 0) throw std::runtime_error("ClusterSimulation: fork failed");
    if (pid == 0) {
      ::execv(cfg_.program.c_str(), const_cast<char* const*>(argv.data()));
      _exit(127);  // exec failed; the coordinator sees the hangup
    }
    children_.push_back(pid);
  }
}

void ClusterSimulation::broadcast_shutdown() noexcept {
  // Strictly best-effort, one peer at a time: the broadcast races worker
  // teardown by construction (a worker that failed mid-step, or whose link
  // already died, is normal here), and a dead or never-connected worker must
  // not strand the ranks after it — they are still blocked in recv() waiting
  // for this very frame.
  for (int r = 0; r < cfg_.sim.nranks; ++r)
    net_->post_best_effort(kCoordinatorRank, r, wire::encode_shutdown());
}

ClusterSimulation::~ClusterSimulation() {
  broadcast_shutdown();
  net_.reset();  // closes sockets, joins reader threads
  for (const long pid : children_) {
    if (pid < 0) continue;  // already reaped by the liveness check
    int status = 0;
    ::waitpid(static_cast<pid_t>(pid), &status, 0);
  }
}

void ClusterSimulation::init(ParticleSet global) {
  sets_.assign(sets_.size(), ParticleSet{});
  sets_[0] = std::move(global);
  prev_gravity_seconds_.clear();
  prev_rank_size_.clear();
  next_step_ = 0;
  spmd_stepped_ = false;
  spmd_particles_ = 0;
  spmd_kinetic_ = spmd_potential_ = 0.0;
  StepReport scratch;
  TimeBreakdown driver;
  redistribute(scratch, driver);
  migrate_rec_->take();  // the bootstrap scatter is not step traffic
  // SPMD: the slices stay here until the first StepBegin ships them out;
  // afterwards the workers own them for the rest of the run.
  bootstrap_pending_ = cfg_.mode == ClusterMode::kSpmd;
}

void ClusterSimulation::redistribute(StepReport& report, TimeBreakdown& driver_times) {
  DomainUpdate du = redistribute_sets(sets_, cfg_.sim, prev_gravity_seconds_,
                                      prev_rank_size_, *migrate_rec_, report, driver_times);
  bounds_ = du.bounds;
  space_ = du.space;
  decomp_ = std::move(du.decomp);
}

StepReport ClusterSimulation::step() {
  return cfg_.mode == ClusterMode::kSpmd ? step_spmd() : step_hub();
}

wire::StepResult ClusterSimulation::recv_step_result(TrafficRecordingTransport& rec,
                                                     StepReport& report,
                                                     std::vector<std::uint8_t>& seen,
                                                     std::span<const std::int64_t> post_ns,
                                                     std::vector<trace::Span>& spans) {
  std::optional<std::vector<std::uint8_t>> frame;
  for (;;) {
    {
      trace::ScopedSpan wait("cluster.recv.result", kCoordinatorRank);
      frame = net_->recv(kCoordinatorRank);
    }
    BNS_CHECK(frame.has_value(), "a worker disconnected before its step result (" +
                                            net_->close_reason() + ")");
    if (wire::frame_type(*frame) != wire::FrameType::kTrace) break;
    // A worker's observability sidecar, sent just ahead of its StepResult:
    // estimate the worker's clock offset from the StepBegin/Trace round-trip
    // and merge its spans onto the coordinator's clock.
    const std::int64_t arrive_ns = now_ns();
    wire::TraceFrame tf = wire::decode_trace(*frame);
    BNS_CHECK(tf.src >= 0 && tf.src < static_cast<int>(post_ns.size()),
                     "trace frame from an impossible rank");
    trace::ClockSync sync;
    sync.coord_post_ns = post_ns[static_cast<std::size_t>(tf.src)];
    sync.coord_arrive_ns = arrive_ns;
    sync.worker_recv_ns = tf.recv_ns;
    sync.worker_send_ns = tf.send_ns;
    trace::shift_spans(tf.spans, trace::estimate_clock_offset(sync));
    spans.insert(spans.end(), std::make_move_iterator(tf.spans.begin()),
                 std::make_move_iterator(tf.spans.end()));
  }
  WallTimer timer;
  wire::StepResult sr = wire::decode_step_result(*frame);
  report.part_wire.decode_seconds += timer.elapsed();
  report.part_wire.frames += 1;
  report.part_wire.bytes += frame->size();
  BNS_CHECK(sr.rank >= 0 && sr.rank < static_cast<int>(seen.size()) &&
                       !seen[static_cast<std::size_t>(sr.rank)],
                   "duplicate or out-of-range step result");
  seen[static_cast<std::size_t>(sr.rank)] = 1;
  rec.record(sr.rank, kCoordinatorRank,
             static_cast<std::uint16_t>(wire::FrameType::kStepResult), frame->size());
  report.let_cells += sr.let_cells;
  report.let_particles += sr.let_particles;
  report.local_stats += sr.local_stats;
  report.remote_stats += sr.remote_stats;
  report.let_wire += sr.let_wire;
  report.part_wire += sr.part_wire;
  report.dom_wire += sr.dom_wire;
  report.let_delta += sr.let_delta;
  report.let_sizes.insert(report.let_sizes.end(), sr.let_sizes.begin(),
                          sr.let_sizes.end());
  wire::merge_traffic(report.traffic, sr.traffic);
  return sr;
}

StepReport ClusterSimulation::step_hub() {
  StepReport report;
  report.step = next_step_++;
  report.async = false;  // workers pipeline internally, but no lane model here
  report.kernel = cfg_.sim.kernel;
  WallTimer wall;

  const std::size_t nranks = sets_.size();
  TimeBreakdown driver_times;
  std::vector<TimeBreakdown> rank_times(nranks);
  TrafficRecordingTransport rec(*net_);

  redistribute(report, driver_times);

  std::vector<std::uint8_t> active(nranks, 0);
  std::vector<AABB> boxes(nranks);
  for (std::size_t r = 0; r < nranks; ++r) {
    active[r] = !sets_[r].empty();
    if (active[r]) boxes[r] = sets_[r].bounds();
  }

  // Ship every worker its step inputs. The particle sets move out here and
  // come back (with forces) in the results, so the coordinator never holds
  // two copies. Inactive workers get an empty batch to keep the protocol
  // uniform: every worker answers every step.
  std::vector<std::int64_t> post_ns(nranks, 0);
  for (std::size_t r = 0; r < nranks; ++r) {
    wire::StepBegin sb;
    sb.step = report.step;
    sb.mode = wire::StepMode::kHub;
    sb.bounds = bounds_;
    sb.active = active;
    sb.boxes = boxes;
    sb.parts = std::move(sets_[r]);
    trace::ScopedSpan span("cluster.post.step_begin", kCoordinatorRank, 0, report.step);
    span.set_peer(static_cast<std::int64_t>(r));
    WallTimer timer;
    std::vector<std::uint8_t> frame = wire::encode_step_begin(sb);
    report.part_wire.encode_seconds += timer.elapsed();
    report.part_wire.frames += 1;
    report.part_wire.bytes += frame.size();
    span.set_bytes(static_cast<std::int64_t>(frame.size()));
    post_ns[r] = now_ns();
    rec.post(kCoordinatorRank, static_cast<int>(r), std::move(frame));
  }

  // Collect one result per worker, in arrival order.
  std::vector<std::uint8_t> seen(nranks, 0);
  std::vector<trace::Span> worker_spans;
  for (std::size_t i = 0; i < nranks; ++i) {
    wire::StepResult sr = recv_step_result(rec, report, seen, post_ns, worker_spans);
    const auto r = static_cast<std::size_t>(sr.rank);
    sets_[r] = std::move(sr.parts);
    rank_times[r] = std::move(sr.times);
  }

  prev_gravity_seconds_.assign(nranks, 0.0);
  prev_rank_size_.assign(nranks, 0);
  for (std::size_t r = 0; r < nranks; ++r) {
    prev_gravity_seconds_[r] =
        rank_times[r].get("Gravity local") + rank_times[r].get("Gravity remote");
    prev_rank_size_[r] = sets_[r].size();
  }

  wire::merge_traffic(report.traffic, rec.take());
  wire::merge_traffic(report.traffic, migrate_rec_->take());
  wire::merge_traffic(report.routed, net_->take_routed());
  fold_stage_times(report, driver_times, rank_times);
  report.elapsed = wall.elapsed();
  // drain_thread, not drain_all: in-process test workers drain their own
  // buffers, which this driver must not steal from.
  if (trace::Tracer::instance().enabled()) {
    report.spans = trace::Tracer::instance().drain_thread();
    report.spans.insert(report.spans.end(),
                        std::make_move_iterator(worker_spans.begin()),
                        std::make_move_iterator(worker_spans.end()));
  }
  report.metrics = build_step_metrics(report);
  return report;
}

StepReport ClusterSimulation::step_spmd() {
  StepReport report;
  report.step = next_step_++;
  report.async = false;
  report.kernel = cfg_.sim.kernel;
  WallTimer wall;

  const std::size_t nranks = sets_.size();
  TrafficRecordingTransport rec(*net_);

  // A bare step trigger — plus, on the first step, the bootstrap slices the
  // init() redistribute computed. From then on the coordinator holds no
  // particle state: the workers sample, decompose and migrate among
  // themselves and report only aggregates.
  const bool bootstrap = bootstrap_pending_;
  bootstrap_pending_ = false;
  std::vector<std::int64_t> post_ns(nranks, 0);
  for (std::size_t r = 0; r < nranks; ++r) {
    wire::StepBegin sb;
    sb.step = report.step;
    sb.mode = bootstrap ? wire::StepMode::kSpmdBootstrap : wire::StepMode::kSpmdStep;
    if (bootstrap) sb.parts = std::move(sets_[r]);
    trace::ScopedSpan span("cluster.post.step_begin", kCoordinatorRank, 0, report.step);
    span.set_peer(static_cast<std::int64_t>(r));
    WallTimer timer;
    std::vector<std::uint8_t> frame = wire::encode_step_begin(sb);
    report.part_wire.encode_seconds += timer.elapsed();
    report.part_wire.frames += 1;
    report.part_wire.bytes += frame.size();
    span.set_bytes(static_cast<std::int64_t>(frame.size()));
    post_ns[r] = now_ns();
    rec.post(kCoordinatorRank, static_cast<int>(r), std::move(frame));
  }

  std::vector<TimeBreakdown> rank_times(nranks);
  std::vector<std::uint8_t> seen(nranks, 0);
  std::vector<trace::Span> worker_spans;
  std::vector<sfc::Key> agreed_bounds;
  std::size_t total = 0;
  std::uint64_t migrated = 0;
  double kinetic = 0.0, potential = 0.0;
  for (std::size_t i = 0; i < nranks; ++i) {
    wire::StepResult sr = recv_step_result(rec, report, seen, post_ns, worker_spans);
    rank_times[static_cast<std::size_t>(sr.rank)] = std::move(sr.times);
    total += sr.local_count;
    migrated += sr.migrated;
    kinetic += sr.kinetic;
    potential += sr.potential;
    // Decentralized decomposition cross-check: every worker must have cut
    // the identical partition, or the LET/migration protocols are exchanging
    // against different domains — fail fast, never average.
    BNS_CHECK(!sr.boundaries.empty(), "SPMD step result without boundaries");
    if (agreed_bounds.empty()) {
      agreed_bounds = std::move(sr.boundaries);
    } else {
      BNS_CHECK(agreed_bounds == sr.boundaries,
                       "workers computed diverging decompositions");
    }
  }
  report.num_particles = total;
  report.migrated = migrated;
  decomp_ = Decomposition::from_boundaries(std::move(agreed_bounds));
  spmd_particles_ = total;
  spmd_kinetic_ = kinetic;
  spmd_potential_ = potential;
  spmd_stepped_ = true;

  wire::merge_traffic(report.traffic, rec.take());
  wire::merge_traffic(report.routed, net_->take_routed());
  TimeBreakdown driver_times;
  fold_stage_times(report, driver_times, rank_times);
  report.elapsed = wall.elapsed();
  if (trace::Tracer::instance().enabled()) {
    report.spans = trace::Tracer::instance().drain_thread();
    report.spans.insert(report.spans.end(),
                        std::make_move_iterator(worker_spans.begin()),
                        std::make_move_iterator(worker_spans.end()));
  }
  report.metrics = build_step_metrics(report);
  return report;
}

ParticleSet ClusterSimulation::gather() const {
  if (cfg_.mode == ClusterMode::kSpmd && spmd_stepped_) {
    // Collect round-trip: each worker replies with its resident particles
    // (forces included); worth O(N) only because gather is rare (validation,
    // snapshots) rather than per-step protocol.
    const std::size_t nranks = sets_.size();
    wire::StepBegin sb;
    sb.step = next_step_;
    sb.mode = wire::StepMode::kCollect;
    const std::vector<std::uint8_t> frame = wire::encode_step_begin(sb);
    for (std::size_t r = 0; r < nranks; ++r)
      net_->post(kCoordinatorRank, static_cast<int>(r), frame);
    std::vector<ParticleSet> collected(nranks);
    std::vector<std::uint8_t> seen(nranks, 0);
    for (std::size_t i = 0; i < nranks; ++i) {
      std::optional<std::vector<std::uint8_t>> reply = net_->recv(kCoordinatorRank);
      BNS_CHECK(reply.has_value(), "a worker disconnected during gather (" +
                                              net_->close_reason() + ")");
      wire::ParticleBatch batch = wire::decode_particles(*reply);
      BNS_CHECK(batch.src >= 0 && batch.src < static_cast<int>(nranks) &&
                           !seen[static_cast<std::size_t>(batch.src)],
                       "duplicate or out-of-range gather reply");
      BNS_CHECK(batch.with_forces, "gather replies must carry forces");
      seen[static_cast<std::size_t>(batch.src)] = 1;
      collected[static_cast<std::size_t>(batch.src)] = std::move(batch.parts);
    }
    return gather_sorted(set_pointers(collected));
  }
  return gather_sorted(set_pointers(sets_));
}

std::size_t ClusterSimulation::num_particles() const {
  if (cfg_.mode == ClusterMode::kSpmd && spmd_stepped_) return spmd_particles_;
  std::size_t n = 0;
  for (const ParticleSet& p : sets_) n += p.size();
  return n;
}

double ClusterSimulation::kinetic_energy() const {
  if (cfg_.mode == ClusterMode::kSpmd && spmd_stepped_) return spmd_kinetic_;
  return total_kinetic_energy(set_pointers(sets_));
}

double ClusterSimulation::potential_energy() const {
  if (cfg_.mode == ClusterMode::kSpmd && spmd_stepped_) return spmd_potential_;
  return total_potential_energy(set_pointers(sets_));
}

namespace {

// Per-worker state the SPMD protocol carries across steps (the feedback for
// cost balancing; everything else lives in the resident ParticleSet).
struct SpmdState {
  double prev_gravity_seconds = 0.0;
  std::size_t prev_size = 0;
};

// Broadcast one encoded frame to every peer, accounting encode time once and
// frames/bytes per post (each peer receives its own copy of the bytes).
template <typename EncodeFn>
void broadcast(Transport& out, int self, int nranks, wire::WireStats& ws,
               EncodeFn&& encode) {
  WallTimer timer;
  const std::vector<std::uint8_t> frame = encode();
  ws.encode_seconds += timer.elapsed();
  for (int dst = 0; dst < nranks; ++dst) {
    if (dst == self) continue;
    ws.frames += 1;
    ws.bytes += frame.size();
    out.post(self, dst, frame);
  }
}

// The build + LET exchange + gravity + integration tail both worker modes
// share, LET statistics copied into the step result — one definition, so the
// hub and SPMD reports cannot drift.
void run_let_gravity_phase(Rank& rank, const SimConfig& cfg, const sfc::KeySpace& space,
                           FrameDemux& demux, Transport& out,
                           const std::vector<std::uint8_t>& active,
                           const std::vector<AABB>& boxes, LetChannelState& let_state,
                           TimeBreakdown& times, wire::StepResult& sr) {
  rank.build(space, cfg, times);
  DemuxTransport let_net_view(demux, out, FrameDemux::Class::kLet);
  LetExchange let_net(let_net_view, active, &let_state);
  std::size_t next_peer = 1;
  RankStepStats out_stats =
      run_rank_step(rank, cfg, let_net, active, boxes, times, /*lane=*/nullptr, next_peer);
  const int self = rank.id();
  sr.let_cells = out_stats.let_cells;
  sr.let_particles = out_stats.let_particles;
  sr.local_stats = out_stats.local_stats;
  sr.remote_stats = out_stats.remote_stats;
  sr.let_sizes = std::move(out_stats.let_sizes);
  sr.let_wire = let_net.encode_stats(self);
  sr.let_wire.decode_seconds = let_net.decode_stats(self).decode_seconds;
  sr.let_delta = let_net.delta_stats(self);
}

// The decentralized per-step domain update + migration + LET/gravity body of
// one SPMD worker. Fills sr's statistics (times excepted: the caller owns
// the breakdown) and leaves the stepped particles resident in `rank`.
void run_spmd_step(Rank& rank, const SimConfig& cfg, int step, FrameDemux& demux,
                   Transport& out, SpmdState& st, LetChannelState& let_state,
                   TimeBreakdown& times, wire::StepResult& sr) {
  const int nranks = cfg.nranks;
  const int self = rank.id();
  ParticleSet& parts = rank.parts();
  wire::WireStats dom_ws;

  // Compose a disconnect error with the transport's recorded cause, so "a
  // peer vanished" distinguishes an orderly peer close from a socket errno.
  const auto vanished = [&out](const char* during) {
    const std::string why = out.close_reason();
    return std::runtime_error(std::string("worker: a peer vanished during ") + during +
                              (why.empty() ? "" : " (" + why + ")"));
  };

  // Phase spans cannot be RAII here (scopes span declarations the tail
  // needs), so they are emitted manually at each phase boundary.
  auto emit_phase = [&](const char* name, std::int64_t begin_ns) {
    if (!trace::Tracer::instance().enabled()) return;
    trace::RawSpan span;
    span.name = name;
    span.begin_ns = begin_ns;
    span.end_ns = now_ns();
    span.rank = self;
    span.lane = self;
    span.step = step;
    trace::Tracer::instance().emit(span);
  };

  // --- Phase 1: pre-migration allgather of bounds/population/cost weight ---
  // After it, every rank holds the identical inputs the centralized
  // update_domain() consumes, so the KeySpace, stride and weight vector are
  // bitwise-identical on all ranks.
  const std::int64_t phase_domain_ns = now_ns();
  WallTimer domain_timer;
  wire::Boundaries pre;
  pre.src = self;
  pre.step = step;
  pre.count = parts.size();
  if (!parts.empty()) pre.box = parts.bounds();
  if (cfg.balance == BalanceMode::kCost && step > 0 && st.prev_size > 0)
    pre.weight = st.prev_gravity_seconds / static_cast<double>(st.prev_size);
  broadcast(out, self, nranks, dom_ws, [&] { return wire::encode_boundaries(pre); });

  std::vector<std::uint64_t> counts(static_cast<std::size_t>(nranks), 0);
  std::vector<double> weights(static_cast<std::size_t>(nranks), 0.0);
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(nranks), 0);
  AABB bounds;
  counts[static_cast<std::size_t>(self)] = pre.count;
  weights[static_cast<std::size_t>(self)] = pre.weight;
  seen[static_cast<std::size_t>(self)] = 1;
  if (pre.count > 0) bounds.expand(pre.box);
  for (int k = 0; k + 1 < nranks; ++k) {
    std::optional<std::vector<std::uint8_t>> frame =
        demux.recv(FrameDemux::Class::kBoundaries);
    if (!frame) throw vanished("the domain allgather");
    WallTimer timer;
    const wire::Boundaries b = wire::decode_boundaries(*frame);
    dom_ws.decode_seconds += timer.elapsed();
    BNS_CHECK(b.src >= 0 && b.src < nranks && !seen[static_cast<std::size_t>(b.src)],
                     "boundaries from an impossible or duplicate rank");
    BNS_CHECK(b.step == step && !b.post_migration,
                     "boundaries from the wrong step or phase");
    seen[static_cast<std::size_t>(b.src)] = 1;
    counts[static_cast<std::size_t>(b.src)] = b.count;
    weights[static_cast<std::size_t>(b.src)] = b.weight;
    if (b.count > 0) bounds.expand(b.box);
  }
  bounds = domain_bounds_or_default(bounds);
  const sfc::KeySpace space(bounds, cfg.curve);
  std::size_t total = 0;
  for (const std::uint64_t c : counts) total += static_cast<std::size_t>(c);
  const std::size_t stride = sample_stride(total, nranks, cfg.samples_per_rank);
  const bool use_weights = cfg.balance == BalanceMode::kCost && step > 0;
  if (use_weights) apply_cost_floor(weights);

  // --- Phase 2: sampled-key allgather -> identical Decomposition ------------
  wire::KeySamples mine;
  mine.src = self;
  mine.step = step;
  mine.keys = sample_keys(parts, space, stride);
  broadcast(out, self, nranks, dom_ws, [&] { return wire::encode_key_samples(mine); });

  std::vector<std::vector<sfc::Key>> samples(static_cast<std::size_t>(nranks));
  samples[static_cast<std::size_t>(self)] = std::move(mine.keys);
  seen.assign(static_cast<std::size_t>(nranks), 0);
  seen[static_cast<std::size_t>(self)] = 1;
  for (int k = 0; k + 1 < nranks; ++k) {
    std::optional<std::vector<std::uint8_t>> frame =
        demux.recv(FrameDemux::Class::kKeySamples);
    if (!frame) throw vanished("the sample allgather");
    WallTimer timer;
    wire::KeySamples ks = wire::decode_key_samples(*frame);
    dom_ws.decode_seconds += timer.elapsed();
    BNS_CHECK(
        ks.src >= 0 && ks.src < nranks && !seen[static_cast<std::size_t>(ks.src)],
        "key samples from an impossible or duplicate rank");
    BNS_CHECK(ks.step == step, "key samples from the wrong step");
    seen[static_cast<std::size_t>(ks.src)] = 1;
    samples[static_cast<std::size_t>(ks.src)] = std::move(ks.keys);
  }
  // Pool in rank order — the exact concatenation update_domain() builds — so
  // every rank cuts the identical boundaries.
  std::vector<Decomposition::WeightedKey> pooled;
  for (std::size_t r = 0; r < samples.size(); ++r) {
    const double w = use_weights ? weights[r] : 1.0;
    for (const sfc::Key key : samples[r]) pooled.push_back({key, w});
  }
  const Decomposition decomp =
      Decomposition::from_weighted_samples(std::move(pooled), nranks, cfg.snap_level);
  sr.boundaries.assign(decomp.boundaries().begin(), decomp.boundaries().end());
  const double dom_wire_pre = dom_ws.encode_seconds + dom_ws.decode_seconds;
  times.add("Domain update", std::max(0.0, domain_timer.elapsed() - dom_wire_pre));
  emit_phase("domain.update", phase_domain_ns);

  // --- Phase 3: peer-to-peer migration (the alltoallv, boundary crossers
  // only), then phase 4: post-migration allgather of the active set and the
  // tight domain boxes peers build LETs against. Phase 3's recv loop is the
  // migration barrier: no rank proceeds before owning its full new slice.
  const std::int64_t phase_migrate_ns = now_ns();
  WallTimer exchange_timer;
  DemuxTransport mig_net(demux, out, FrameDemux::Class::kMigration);
  MigrationExchange mex(mig_net, nranks);
  const ExchangeStats ex = exchange_resident(parts, self, space, decomp, mex, step);
  sr.migrated = ex.migrated;
  wire::WireStats part_ws = mex.encode_stats(self);
  part_ws.decode_seconds = mex.decode_stats(self).decode_seconds;

  wire::Boundaries post;
  post.src = self;
  post.step = step;
  post.post_migration = true;
  post.count = parts.size();
  if (!parts.empty()) post.box = parts.bounds();
  broadcast(out, self, nranks, dom_ws, [&] { return wire::encode_boundaries(post); });

  std::vector<std::uint8_t> active(static_cast<std::size_t>(nranks), 0);
  std::vector<AABB> boxes(static_cast<std::size_t>(nranks));
  active[static_cast<std::size_t>(self)] = post.count > 0;
  if (post.count > 0) boxes[static_cast<std::size_t>(self)] = post.box;
  seen.assign(static_cast<std::size_t>(nranks), 0);
  seen[static_cast<std::size_t>(self)] = 1;
  for (int k = 0; k + 1 < nranks; ++k) {
    std::optional<std::vector<std::uint8_t>> frame =
        demux.recv(FrameDemux::Class::kBoundaries);
    if (!frame) throw vanished("the box allgather");
    WallTimer timer;
    const wire::Boundaries b = wire::decode_boundaries(*frame);
    dom_ws.decode_seconds += timer.elapsed();
    BNS_CHECK(b.src >= 0 && b.src < nranks && !seen[static_cast<std::size_t>(b.src)],
                     "post boxes from an impossible or duplicate rank");
    BNS_CHECK(b.step == step && b.post_migration,
                     "post boxes from the wrong step or phase");
    seen[static_cast<std::size_t>(b.src)] = 1;
    active[static_cast<std::size_t>(b.src)] = b.count > 0;
    if (b.count > 0) boxes[static_cast<std::size_t>(b.src)] = b.box;
  }
  const double exchange_wire = (dom_ws.encode_seconds + dom_ws.decode_seconds -
                                dom_wire_pre) +
                               part_ws.encode_seconds + part_ws.decode_seconds;
  times.add("Exchange particles", std::max(0.0, exchange_timer.elapsed() - exchange_wire));
  times.add("Wire encode", dom_ws.encode_seconds + part_ws.encode_seconds);
  times.add("Wire decode", dom_ws.decode_seconds + part_ws.decode_seconds);
  emit_phase("decomposition.migrate", phase_migrate_ns);
  sr.dom_wire = dom_ws;
  sr.part_wire = part_ws;

  // --- Build + LET exchange + gravity + integration: the exact same step
  // body as the in-process lanes and the hub workers.
  run_let_gravity_phase(rank, cfg, space, demux, out, active, boxes, let_state, times, sr);

  st.prev_gravity_seconds =
      times.get("Gravity local") + times.get("Gravity remote");
  st.prev_size = parts.size();
}

}  // namespace

int run_worker(const std::string& host, std::uint16_t port, int rank_id,
               std::size_t threads, SocketTopology topology, std::uint16_t listen_port) {
  std::unique_ptr<SocketTransport> net =
      topology == SocketTopology::kMesh
          ? SocketTransport::connect_mesh(host, port, rank_id, listen_port)
          : SocketTransport::connect(host, port, rank_id);
  // Mesh: the directory is in hand; stand up the pair links before touching
  // the control stream, so peers' step frames have somewhere to arrive.
  if (topology == SocketTopology::kMesh) net->mesh_with_peers();
  TrafficRecordingTransport out(*net);
  FrameDemux demux(out, rank_id);

  const auto coordinator_down = [&net](const char* what) {
    const std::string why = net->close_reason();
    return std::runtime_error(std::string("worker: ") + what +
                              (why.empty() ? "" : " (" + why + ")"));
  };

  std::optional<std::vector<std::uint8_t>> frame = demux.recv(FrameDemux::Class::kControl);
  if (!frame) throw coordinator_down("coordinator closed before config");
  SimConfig cfg = wire::decode_config(*frame);
  BNS_CHECK(rank_id >= 0 && rank_id < cfg.nranks,
                   "worker rank id outside the configured rank count");
  cfg.threads_per_rank = threads;
  cfg.async = true;
  if (cfg.trace) trace::Tracer::instance().set_enabled(true);
  Rank rank(rank_id, threads_for(cfg, std::thread::hardware_concurrency()));
  SpmdState st;
  // Incremental-LET caches live here, beside the resident Rank: they persist
  // across steps and die with the worker (a reconnect starts from version 0,
  // so the first frames after it are full — the protocol is self-healing).
  LetChannelState let_state;
  let_state.init(cfg.nranks, cfg.let_cache, cfg.let_churn);

  // The previous step's StepResult encode time: it cannot ride in the frame
  // it measures (the timings are part of the payload), so it is reported one
  // step late — per-step rows shift slightly, trajectory totals stay honest.
  double pending_result_encode_s = 0.0;

  for (;;) {
    frame = demux.recv(FrameDemux::Class::kControl);
    if (!frame) throw coordinator_down("coordinator disconnected");
    const wire::FrameType type = wire::frame_type(*frame);
    if (type == wire::FrameType::kShutdown) return 0;
    if (type != wire::FrameType::kStepBegin)
      throw std::runtime_error("worker: unexpected frame type from coordinator");

    WallTimer decode_timer;
    wire::StepBegin sb = wire::decode_step_begin(*frame);
    const double sb_decode_s = decode_timer.elapsed();
    // Worker-local clock sample for the coordinator's offset estimate: as
    // close as possible to the moment the StepBegin was in hand.
    const std::int64_t recv_ns = now_ns();

    if (sb.mode == wire::StepMode::kCollect) {
      // Snapshot request: ship the resident particles (forces included)
      // without stepping. SPMD gather() and future checkpointing use this.
      // Bypass the traffic recorder: the reply belongs to no step, and must
      // not surface as Particles-class bytes in the next step's matrix.
      net->post(rank_id, kCoordinatorRank,
                wire::encode_particles(rank_id, rank.parts(), /*with_forces=*/true));
      continue;
    }

    TimeBreakdown times;
    times.add("Wire decode", sb_decode_s);
    times.add("Wire encode", pending_result_encode_s);
    pending_result_encode_s = 0.0;

    wire::StepResult sr;
    sr.rank = rank_id;
    if (sb.mode == wire::StepMode::kHub) {
      // Hub: the coordinator computed the domain update; this worker runs
      // the per-rank pipeline on the shipped batch and returns it.
      BNS_CHECK(sb.active.size() == static_cast<std::size_t>(cfg.nranks));
      const sfc::KeySpace space(sb.bounds, cfg.curve);
      rank.parts() = std::move(sb.parts);
      run_let_gravity_phase(rank, cfg, space, demux, out, sb.active, sb.boxes, let_state,
                            times, sr);
      // Energies and balance feedback stay coordinator-side in hub mode (it
      // owns the returned sets); only the population count rides along.
      sr.local_count = rank.parts().size();
      sr.parts = std::move(rank.parts());
    } else {
      // SPMD: resident state, distributed domain update, peer migration.
      if (sb.mode == wire::StepMode::kSpmdBootstrap) rank.parts() = std::move(sb.parts);
      run_spmd_step(rank, cfg, sb.step, demux, out, st, let_state, times, sr);
      fill_energy(rank.parts(), sr);
      sr.local_count = rank.parts().size();
      // sr.parts stays empty: the particles never leave this worker.
    }
    sr.times = times;
    sr.traffic = out.take();
    if (cfg.trace) {
      // The step's spans ship just ahead of the StepResult. The overall step
      // span is emitted manually (its natural scope would outlive the drain),
      // then the whole buffer is drained — only this thread's: concurrent
      // in-process workers must not steal each other's spans. The worker's
      // own metric deltas ride along for the wire tests and per-rank tooling;
      // the coordinator's bench metrics are rebuilt from the aggregated
      // report, not from these.
      trace::RawSpan step_span;
      step_span.name = "worker.step";
      step_span.begin_ns = recv_ns;
      step_span.end_ns = now_ns();
      step_span.rank = rank_id;
      step_span.lane = rank_id;
      step_span.step = sb.step;
      trace::Tracer::instance().emit(step_span);
      wire::TraceFrame tf;
      tf.src = rank_id;
      tf.step = sb.step;
      tf.recv_ns = recv_ns;
      tf.spans = trace::Tracer::instance().drain_thread();
      StepReport wr;
      wr.step = sb.step;
      wr.num_particles = sr.local_count;
      wr.migrated = sr.migrated;
      wr.let_cells = sr.let_cells;
      wr.let_particles = sr.let_particles;
      wr.local_stats = sr.local_stats;
      wr.remote_stats = sr.remote_stats;
      wr.let_wire = sr.let_wire;
      wr.part_wire = sr.part_wire;
      wr.dom_wire = sr.dom_wire;
      wr.let_delta = sr.let_delta;
      wr.let_sizes = sr.let_sizes;
      wr.traffic = sr.traffic;
      tf.metrics = build_step_metrics(wr);
      tf.send_ns = now_ns();
      // Like the collect reply, the sidecar bypasses the traffic recorder:
      // observability must not perturb the step's own traffic matrix.
      net->post(rank_id, kCoordinatorRank, wire::encode_trace(tf));
    }
    WallTimer encode_timer;
    std::vector<std::uint8_t> result = wire::encode_step_result(sr);
    pending_result_encode_s = encode_timer.elapsed();
    net->post(rank_id, kCoordinatorRank, std::move(result));
  }
}

}  // namespace bonsai::domain
