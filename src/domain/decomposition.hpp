// Hilbert-key domain decomposition (§III-B1 of the paper).
//
// The global SFC key range [0, kKeyEnd) is cut into one contiguous interval
// per rank. Because keys order particles along the Peano-Hilbert curve, each
// interval is a geometrically compact region, and — when boundaries are
// snapped to octree-cell key boundaries — a union of branches of the global
// octree. Boundaries are chosen from *sampled* particle keys, the paper's
// low-cost alternative to a full parallel sort of all keys: every rank
// contributes a stride-sample of its keys, the samples are sorted, and the
// N-quantiles become the new boundaries.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "domain/wire.hpp"
#include "sfc/keys.hpp"
#include "tree/particle.hpp"

namespace bonsai::domain {

class Transport;
class MigrationExchange;

// A partition of the SFC key space into contiguous per-rank intervals.
// Rank r owns keys in [boundaries()[r], boundaries()[r+1]).
class Decomposition {
 public:
  // Snapping boundaries to level-8 cells keeps domains unions of octree
  // branches without visibly perturbing the sampled balance (2^24 cells).
  static constexpr int kDefaultSnapLevel = 8;

  // Single rank owning the whole key space.
  Decomposition() = default;

  // Equal key intervals (the load-oblivious baseline; poor balance for
  // clustered distributions, useful for bootstrapping and tests).
  static Decomposition uniform(int nranks);

  // Explicit interior boundaries; `bounds` must be the full monotone vector
  // {0, b_1, ..., b_{n-1}, kKeyEnd}.
  static Decomposition from_boundaries(std::vector<sfc::Key> bounds);

  // Equalized-count boundaries from sampled keys: sort the samples and cut at
  // the rank quantiles, optionally snapping each boundary down to the first
  // key of its level-`snap_level` cell. Falls back to uniform() when no
  // samples are available.
  static Decomposition from_samples(std::vector<sfc::Key> samples, int nranks,
                                    int snap_level = kDefaultSnapLevel);

  // A sampled key together with the relative cost it represents (e.g. the
  // owner rank's measured gravity seconds per particle).
  struct WeightedKey {
    sfc::Key key;
    double weight;
  };

  // Cost-weighted boundaries (the paper balances domains on measured
  // tree-walk cost, §III-B1): cut the sorted samples at equal cumulative
  // *weight* rather than equal count, so regions that were expensive last
  // step shrink. Non-positive weights count as zero; if no weight survives,
  // falls back to the equal-count cut over the same keys.
  static Decomposition from_weighted_samples(std::vector<WeightedKey> samples, int nranks,
                                             int snap_level = kDefaultSnapLevel);

  int num_ranks() const { return static_cast<int>(bounds_.size()) - 1; }

  // Owner rank of a key (keys are always < kKeyEnd).
  int rank_of(sfc::Key key) const;

  sfc::Key begin_key(int rank) const { return bounds_[static_cast<std::size_t>(rank)]; }
  sfc::Key end_key(int rank) const { return bounds_[static_cast<std::size_t>(rank) + 1]; }

  std::span<const sfc::Key> boundaries() const { return bounds_; }

  // Re-verify the partition: a full monotone boundary vector anchored at 0
  // and kKeyEnd, one interval per rank (pass -1 to skip the rank-count
  // check). Throws CheckError on violation; update_domain() runs this in
  // Debug and sanitizer builds.
  void check_invariants(int expected_ranks = -1) const;

 private:
  std::vector<sfc::Key> bounds_{0, sfc::kKeyEnd};
};

// Deterministic sample of every `stride`-th particle key, computed through
// `space` (does not require the set to be sorted or keyed already). The
// stride must be shared by all ranks: pooled samples are then uniformly
// weighted per *particle*, so sample quantiles estimate population quantiles
// even when rank sizes differ.
std::vector<sfc::Key> sample_keys(const ParticleSet& parts, const sfc::KeySpace& space,
                                  std::size_t stride);

// The pieces of the per-step domain update, exposed separately so the
// centralized update_domain() below and the decentralized SPMD workers run
// the *same arithmetic* on the same inputs and therefore derive the
// identical KeySpace, stride and Decomposition:

// Fallback when no particle exists anywhere (keeps KeySpace constructible).
inline AABB domain_bounds_or_default(AABB bounds) {
  if (!bounds.valid()) bounds = {{0, 0, 0}, {1, 1, 1}};
  return bounds;
}

// The global sample stride for a population of `total` particles.
std::size_t sample_stride(std::size_t total, int nranks, std::size_t samples_per_rank);

// Feedback-balancing floor: w = max(w, 1e-3 * max(w)) keeps a rank whose
// timings underflowed from collapsing its region to nothing.
void apply_cost_floor(std::span<double> weights);

// Result of one "Domain update" stage: the raw global particle bounds (kept
// so a remote worker can reconstruct the KeySpace bit-identically), the key
// space built from them, and the new partition.
struct DomainUpdate {
  AABB bounds;
  sfc::KeySpace space;
  Decomposition decomp;
};

// The per-step domain update shared by the in-process Simulation and the
// cluster coordinator: global bounds -> KeySpace, pooled stride-sampling of
// every rank's keys (one global stride, so pooled samples stay uniformly
// weighted per particle), and a weighted quantile cut. `weights` gives each
// rank's per-sample cost weight (empty = uniform; see BalanceMode::kCost).
DomainUpdate update_domain(std::span<const ParticleSet* const> rank_parts, int nranks,
                           sfc::CurveType curve, std::size_t samples_per_rank,
                           int snap_level, std::span<const double> weights);

struct ExchangeStats {
  std::uint64_t total = 0;     // particles across all ranks after the exchange
  std::uint64_t migrated = 0;  // particles that changed owner rank
};

// Migrate every particle to its owner rank: the analogue of the MPI
// alltoallv of §III-B1, spoken in wire frames. Every source rank posts one
// encoded particle batch (its emigrants, possibly none) to every other rank
// through `transport`; each destination decodes its expected batches in
// source order and splices them around its own stayers, so the resulting
// populations and orderings are identical to the historical in-memory move.
// Positions, velocities, masses and ids travel bit-for-bit, forces are reset
// (they are recomputed each step), and each particle's `key` field is left
// holding its freshly computed SFC key. Serialization cost/volume is
// accumulated into `wire_stats` when given.
ExchangeStats exchange(std::vector<ParticleSet>& rank_parts, const sfc::KeySpace& space,
                       const Decomposition& decomp, Transport& transport,
                       wire::WireStats* wire_stats = nullptr);

// Convenience overload routing through a scratch in-process transport.
ExchangeStats exchange(std::vector<ParticleSet>& rank_parts, const sfc::KeySpace& space,
                       const Decomposition& decomp);

// The decentralized alltoallv cell of one resident rank (the SPMD path):
// compute each local particle's key and owner, post one Migration frame per
// peer through `mex` (possibly empty — peers count on exactly nranks-1
// arrivals), receive the inbound batches, and splice them around the local
// stayers in source-rank order — reproducing bit-for-bit the population and
// ordering exchange() gives rank `self` when run over all ranks at once.
// Returns {total = resident population afterwards, migrated = emigrants
// posted}; summed over all ranks these match the centralized stats.
ExchangeStats exchange_resident(ParticleSet& mine, int self, const sfc::KeySpace& space,
                                const Decomposition& decomp, MigrationExchange& mex,
                                int step);

}  // namespace bonsai::domain
