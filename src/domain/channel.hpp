// Nonblocking point-to-point channels and the LET exchange protocol.
//
// Channel<T> is the unbounded MPSC mailbox the in-process transport is built
// on: a sender posts and keeps computing (the MPI_Isend analogue); the
// receiver drains whenever it is ready.
//
// LetExchange is the all-to-all LET protocol of one step, spoken over a
// byte-oriented Transport (domain/transport.hpp): post() serializes a
// LetTree to a versioned wire frame (domain/wire.hpp) and hands the *bytes*
// to the transport; recv() decodes and validates the next arrived frame.
// Live tree objects never cross the rank boundary, so the same protocol runs
// unchanged over the in-process loopback and over sockets between separate
// processes.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "domain/wire.hpp"

namespace bonsai::domain {

class Transport;

// Unbounded multi-producer single-consumer mailbox. send() never blocks
// (the MPI_Isend analogue); recv() blocks until a message or close() arrives.
template <typename T>
class Channel {
 public:
  Channel() = default;
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  void send(T value) {
    {
      std::lock_guard lock(mutex_);
      queue_.push_back(std::move(value));
    }
    cv_.notify_one();
  }

  // Blocks until a message is available; nullopt once closed *and* drained.
  std::optional<T> recv() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return !queue_.empty() || closed_; });
    return pop_locked();
  }

  // Nonblocking receive; nullopt when the mailbox is currently empty.
  std::optional<T> try_recv() {
    std::lock_guard lock(mutex_);
    return pop_locked();
  }

  // Completion signal: no further send() will follow. Pending messages stay
  // receivable; subsequent recv() on an empty mailbox returns nullopt.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

 private:
  std::optional<T> pop_locked() {
    if (queue_.empty()) return std::nullopt;
    T out = std::move(queue_.front());
    queue_.pop_front();
    return out;
  }

  std::deque<T> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool closed_ = false;
};

// Persistent state of the incremental LET exchange (--let-cache), owned by
// the driver — the Simulation in-proc, the worker loop in cluster mode — and
// lent to each step's ephemeral LetExchange. Caches are per directed pair:
// `send[src * nranks + dst]` is the exporter's mirror of what dst currently
// holds of src's LET, `recv[dst * nranks + src]` the importer's actual copy
// (a cluster worker only ever touches its own row of each). `scratch[src]`
// is the per-source encode buffer whose capacity persists across steps, so
// posting no longer grows a fresh vector every time. With `enabled` false
// the scratch reuse still applies but every post ships a full frame and no
// cache is consulted — the differential reference path.
struct LetChannelState {
  bool enabled = false;
  double churn_ratio = 0.75;
  int nranks = 0;
  std::vector<wire::LetCacheEntry> send, recv;
  std::vector<std::vector<std::uint8_t>> scratch;

  void init(int n, bool on, double churn) {
    enabled = on;
    churn_ratio = churn;
    nranks = n;
    const std::size_t pairs = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
    send.assign(pairs, {});
    recv.assign(pairs, {});
    scratch.assign(static_cast<std::size_t>(n), {});
  }

  wire::LetCacheEntry& send_entry(int src, int dst) {
    return send[static_cast<std::size_t>(src) * static_cast<std::size_t>(nranks) +
                static_cast<std::size_t>(dst)];
  }
  wire::LetCacheEntry& recv_entry(int dst, int src) {
    return recv[static_cast<std::size_t>(dst) * static_cast<std::size_t>(nranks) +
                static_cast<std::size_t>(src)];
  }
};

// The all-to-all LET exchange of one step over a Transport: serialized LET
// frames plus expected-arrival bookkeeping. Senders and receivers are both
// known up front (the active = non-empty ranks), so recv() can stop a
// receiver after its last expected message without any close handshake.
class LetExchange {
 public:
  // `active[r]` marks ranks that both send and receive LETs this step; an
  // active destination expects one LET from every other active rank. The
  // transport must outlive the exchange and route ids [0, active.size()).
  // `state` (optional) carries the incremental-exchange caches and encode
  // scratch across steps; it must outlive the exchange and match its rank
  // count.
  LetExchange(Transport& transport, const std::vector<std::uint8_t>& active,
              LetChannelState* state = nullptr);

  int num_ranks() const { return static_cast<int>(remaining_.size()); }

  // LETs dst still has to receive; starts at (number of active ranks - 1)
  // for an active dst and counts down with each recv().
  std::size_t remaining(int dst) const;

  // Nonblocking post of src's LET for dst (called from src's driver thread):
  // encodes the frame, hands the bytes to the transport, and accounts the
  // encode under src. Returns the encoded frame size.
  std::size_t post(int src, int dst, const LetTree& let, double export_seconds);

  // Blocking receive of dst's next LET, in arrival order; nullopt once every
  // expected LET has been delivered. Decodes + validates the frame and
  // accounts the decode under dst. Must only be called from dst's driver
  // thread (the single consumer of dst's endpoint). Throws if the endpoint
  // was close()d before all expected arrivals (fail fast, never hang).
  std::optional<wire::LetMessage> recv(int dst);

  // Failure-path escape hatch: closes dst's transport endpoint so a peer
  // blocked in recv() trips the closed-early check instead of waiting
  // forever. Works even when an empty compensation frame cannot be built.
  void close(int dst);

  // Serialization accounting, per rank: encodes posted by r (frames/bytes
  // out + encode seconds) and decodes consumed by r (decode seconds). Each
  // entry is touched only by its own rank's driver thread.
  const wire::WireStats& encode_stats(int r) const;
  const wire::WireStats& decode_stats(int r) const;

  // Incremental-exchange accounting: full/delta frames and bytes saved
  // posted by r, plus deltas applied (cache_hits) and cache resets
  // (invalidations) observed by r as an importer. All zero when the cache
  // is off.
  const wire::LetDeltaStats& delta_stats(int r) const;

 private:
  Transport& transport_;
  LetChannelState* state_;               // nullptr: always-full legacy path
  std::vector<std::size_t> remaining_;  // per-dst, touched only by its consumer
  std::vector<wire::WireStats> encode_;  // per-src
  std::vector<wire::WireStats> decode_;  // per-dst
  std::vector<wire::LetDeltaStats> delta_;  // exporter side per-src, importer per-dst
};

// The particle alltoallv of one SPMD step over a Transport — the LET mailbox
// pattern applied to migration frames. Every rank posts exactly one
// Migration frame (its owner-changing particles, possibly none) to every
// other rank and expects nranks-1 arrivals, so recv() stops a receiver after
// its last expected batch without a close handshake. Unlike LETs, migration
// has no active set: empty ranks can gain particles, so all ranks
// participate every step.
class MigrationExchange {
 public:
  MigrationExchange(Transport& transport, int nranks);

  int num_ranks() const { return static_cast<int>(remaining_.size()); }

  // Batches dst still has to receive; starts at nranks - 1.
  std::size_t remaining(int dst) const;

  // Nonblocking post of src's emigrants bound for dst: encodes the frame,
  // hands the bytes to the transport, accounts the encode under src. Returns
  // the encoded frame size.
  std::size_t post(int src, int dst, const ParticleSet& parts, int step);

  // Blocking receive of dst's next inbound batch, in arrival order; nullopt
  // once every expected batch arrived. Throws if the endpoint closes early
  // (fail fast, never hang) or a frame belongs to a different step.
  std::optional<wire::MigrationMsg> recv(int dst, int step);

  // Serialization accounting, mirroring LetExchange.
  const wire::WireStats& encode_stats(int r) const;
  const wire::WireStats& decode_stats(int r) const;

 private:
  Transport& transport_;
  std::vector<std::size_t> remaining_;
  std::vector<wire::WireStats> encode_;
  std::vector<wire::WireStats> decode_;
};

}  // namespace bonsai::domain
