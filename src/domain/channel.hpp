// Nonblocking point-to-point channels: the in-process analogue of the
// MPI_Isend/Irecv transport of §III-B3. A sender posts a message and keeps
// computing; the receiver drains its mailbox whenever it is ready for remote
// work. This is the seam where a real wire transport (MPI, sockets) would
// slot in — only Channel/LetExchange would change, not the pipeline.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "domain/let.hpp"

namespace bonsai::domain {

// Unbounded multi-producer single-consumer mailbox. send() never blocks
// (the MPI_Isend analogue); recv() blocks until a message or close() arrives.
template <typename T>
class Channel {
 public:
  Channel() = default;
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  void send(T value) {
    {
      std::lock_guard lock(mutex_);
      queue_.push_back(std::move(value));
    }
    cv_.notify_one();
  }

  // Blocks until a message is available; nullopt once closed *and* drained.
  std::optional<T> recv() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return !queue_.empty() || closed_; });
    return pop_locked();
  }

  // Nonblocking receive; nullopt when the mailbox is currently empty.
  std::optional<T> try_recv() {
    std::lock_guard lock(mutex_);
    return pop_locked();
  }

  // Completion signal: no further send() will follow. Pending messages stay
  // receivable; subsequent recv() on an empty mailbox returns nullopt.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

 private:
  std::optional<T> pop_locked() {
    if (queue_.empty()) return std::nullopt;
    T out = std::move(queue_.front());
    queue_.pop_front();
    return out;
  }

  std::deque<T> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool closed_ = false;
};

// One LET in flight from rank `src`, carrying the sender-side extraction cost
// so the schedule model can reconstruct when the message could have arrived.
struct LetMessage {
  int src = -1;
  LetTree let;
  double export_seconds = 0.0;
};

// The all-to-all LET mailboxes of one step: a Channel per destination rank
// plus expected-arrival bookkeeping. Senders and receivers are both known up
// front (the active = non-empty ranks), so recv() can stop a receiver after
// its last expected message without any close handshake.
class LetExchange {
 public:
  // `active[r]` marks ranks that both send and receive LETs this step; an
  // active destination expects one LET from every other active rank.
  explicit LetExchange(const std::vector<std::uint8_t>& active);

  int num_ranks() const { return static_cast<int>(mailboxes_.size()); }

  // LETs dst still has to receive; starts at (number of active ranks - 1)
  // for an active dst and counts down with each recv().
  std::size_t remaining(int dst) const;

  // Nonblocking post of src's LET for dst (called from src's driver thread).
  void post(int src, int dst, LetTree let, double export_seconds);

  // Blocking receive of dst's next LET, in arrival order; nullopt once every
  // expected LET has been delivered. Must only be called from dst's driver
  // thread (the single consumer of dst's mailbox). Throws if the mailbox was
  // close()d before all expected arrivals (fail fast, never hang).
  std::optional<LetMessage> recv(int dst);

  // Failure-path escape hatch: allocation-free, so it works even when the
  // empty-LET compensation post cannot be built. A peer blocked in recv()
  // then trips recv's closed-early check instead of waiting forever.
  void close(int dst);

 private:
  std::vector<std::unique_ptr<Channel<LetMessage>>> mailboxes_;
  std::vector<std::size_t> remaining_;  // per-dst, touched only by its consumer
};

}  // namespace bonsai::domain
