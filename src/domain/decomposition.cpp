#include "domain/decomposition.hpp"

#include <algorithm>

#include "domain/channel.hpp"
#include "domain/transport.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace bonsai::domain {

Decomposition Decomposition::uniform(int nranks) {
  BNS_CHECK(nranks >= 1);
  std::vector<sfc::Key> bounds;
  bounds.reserve(static_cast<std::size_t>(nranks) + 1);
  const sfc::Key span = sfc::kKeyEnd / static_cast<sfc::Key>(nranks);
  for (int r = 0; r < nranks; ++r) bounds.push_back(span * static_cast<sfc::Key>(r));
  bounds.push_back(sfc::kKeyEnd);
  return from_boundaries(std::move(bounds));
}

Decomposition Decomposition::from_boundaries(std::vector<sfc::Key> bounds) {
  BNS_CHECK(bounds.size() >= 2);
  BNS_CHECK(bounds.front() == 0 && bounds.back() == sfc::kKeyEnd);
  BNS_CHECK(std::is_sorted(bounds.begin(), bounds.end()),
                   "domain boundaries must be monotone");
  Decomposition d;
  d.bounds_ = std::move(bounds);
  return d;
}

Decomposition Decomposition::from_samples(std::vector<sfc::Key> samples, int nranks,
                                          int snap_level) {
  BNS_CHECK(nranks >= 1);
  BNS_CHECK(snap_level >= 0 && snap_level <= sfc::kMaxLevel);
  if (samples.empty() || nranks == 1) return uniform(nranks);

  std::sort(samples.begin(), samples.end());
  std::vector<sfc::Key> bounds;
  bounds.reserve(static_cast<std::size_t>(nranks) + 1);
  bounds.push_back(0);
  for (int r = 1; r < nranks; ++r) {
    const std::size_t idx = (static_cast<std::size_t>(r) * samples.size()) /
                            static_cast<std::size_t>(nranks);
    sfc::Key b = samples[idx];
    if (snap_level > 0) b = sfc::cell_first_key(b, snap_level);
    // Duplicate samples (or aggressive snapping) may produce non-monotone
    // cuts; clamping keeps the partition valid at the cost of empty ranks.
    b = std::max(b, bounds.back());
    bounds.push_back(b);
  }
  bounds.push_back(sfc::kKeyEnd);
  return from_boundaries(std::move(bounds));
}

Decomposition Decomposition::from_weighted_samples(std::vector<WeightedKey> samples,
                                                   int nranks, int snap_level) {
  BNS_CHECK(nranks >= 1);
  BNS_CHECK(snap_level >= 0 && snap_level <= sfc::kMaxLevel);
  double total = 0.0;
  for (const WeightedKey& s : samples) total += std::max(s.weight, 0.0);
  if (samples.empty() || nranks == 1 || !(total > 0.0)) {
    std::vector<sfc::Key> keys;
    keys.reserve(samples.size());
    for (const WeightedKey& s : samples) keys.push_back(s.key);
    return from_samples(std::move(keys), nranks, snap_level);
  }

  std::sort(samples.begin(), samples.end(),
            [](const WeightedKey& a, const WeightedKey& b) { return a.key < b.key; });
  std::vector<sfc::Key> bounds;
  bounds.reserve(static_cast<std::size_t>(nranks) + 1);
  bounds.push_back(0);
  double cum = 0.0;
  std::size_t i = 0;
  for (int r = 1; r < nranks; ++r) {
    // First sample whose cumulative weight reaches the r-th weight quantile
    // becomes the cut (the equal-count cut is the weight==1 special case).
    const double cut = total * static_cast<double>(r) / static_cast<double>(nranks);
    while (i + 1 < samples.size() && cum + std::max(samples[i].weight, 0.0) < cut)
      cum += std::max(samples[i++].weight, 0.0);
    sfc::Key b = samples[i].key;
    if (snap_level > 0) b = sfc::cell_first_key(b, snap_level);
    b = std::max(b, bounds.back());
    bounds.push_back(b);
  }
  bounds.push_back(sfc::kKeyEnd);
  return from_boundaries(std::move(bounds));
}

void Decomposition::check_invariants(int expected_ranks) const {
  BNS_CHECK(bounds_.size() >= 2);
  BNS_CHECK(expected_ranks < 0 || num_ranks() == expected_ranks,
            "partition has ", num_ranks(), " ranks, expected ", expected_ranks);
  BNS_CHECK(bounds_.front() == 0 && bounds_.back() == sfc::kKeyEnd,
            "partition must cover the whole key space");
  BNS_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()),
            "domain boundaries must be monotone");
}

int Decomposition::rank_of(sfc::Key key) const {
  BNS_DCHECK(key < sfc::kKeyEnd);
  // Count interior boundaries <= key; bounds_ = {0, b_1, ..., b_{n-1}, end}.
  const auto first = bounds_.begin() + 1;
  const auto last = bounds_.end() - 1;
  return static_cast<int>(std::upper_bound(first, last, key) - first);
}

std::vector<sfc::Key> sample_keys(const ParticleSet& parts, const sfc::KeySpace& space,
                                  std::size_t stride) {
  BNS_CHECK(stride >= 1);
  std::vector<sfc::Key> samples;
  const std::size_t n = parts.size();
  if (n == 0) return samples;
  samples.reserve((n + stride - 1) / stride);
  for (std::size_t i = 0; i < n; i += stride) samples.push_back(space.key(parts.pos(i)));
  return samples;
}

std::size_t sample_stride(std::size_t total, int nranks, std::size_t samples_per_rank) {
  const std::size_t target = samples_per_rank * static_cast<std::size_t>(nranks);
  return std::max<std::size_t>(1, total / std::max<std::size_t>(1, target));
}

void apply_cost_floor(std::span<double> weights) {
  double max_w = 0.0;
  for (const double w : weights) max_w = std::max(max_w, w);
  for (double& w : weights) w = std::max(w, 1e-3 * max_w);
}

DomainUpdate update_domain(std::span<const ParticleSet* const> rank_parts, int nranks,
                           sfc::CurveType curve, std::size_t samples_per_rank,
                           int snap_level, std::span<const double> weights) {
  BNS_CHECK(static_cast<int>(rank_parts.size()) == nranks);
  BNS_CHECK(weights.empty() || weights.size() == rank_parts.size());

  DomainUpdate out;
  std::size_t total = 0;
  for (const ParticleSet* parts : rank_parts) {
    if (!parts->empty()) out.bounds.expand(parts->bounds());
    total += parts->size();
  }
  out.bounds = domain_bounds_or_default(out.bounds);
  out.space = sfc::KeySpace(out.bounds, curve);

  // One global stride for every rank: pooled samples stay uniformly weighted
  // per particle, so quantile cuts keep tracking the population even when
  // rank sizes have drifted apart.
  const std::size_t stride = sample_stride(total, nranks, samples_per_rank);

  std::vector<Decomposition::WeightedKey> samples;
  for (std::size_t r = 0; r < rank_parts.size(); ++r) {
    const auto s = sample_keys(*rank_parts[r], out.space, stride);
    const double w = weights.empty() ? 1.0 : weights[r];
    for (const sfc::Key k : s) samples.push_back({k, w});
  }
  out.decomp = Decomposition::from_weighted_samples(std::move(samples), nranks, snap_level);
  if constexpr (kDcheckEnabled) out.decomp.check_invariants(nranks);
  return out;
}

namespace {

// Append `from`'s particles to `to`, preserving the wire-carried SFC keys.
void append_particles(ParticleSet& to, const ParticleSet& from) {
  for (std::size_t i = 0; i < from.size(); ++i) {
    to.add(from.get(i));
    to.key.back() = from.key[i];
  }
}

}  // namespace

ExchangeStats exchange(std::vector<ParticleSet>& rank_parts, const sfc::KeySpace& space,
                       const Decomposition& decomp, Transport& transport,
                       wire::WireStats* wire_stats) {
  BNS_CHECK(static_cast<int>(rank_parts.size()) == decomp.num_ranks());
  const auto nranks = static_cast<std::size_t>(decomp.num_ranks());
  wire::WireStats ws;

  // Counting pre-pass (the alltoallv handshake): compute each particle's key
  // and owner once, so destinations can reserve before any copy happens.
  ExchangeStats stats;
  std::vector<std::vector<int>> dest(nranks);
  std::vector<std::size_t> counts(nranks, 0);
  for (std::size_t r = 0; r < nranks; ++r) {
    ParticleSet& parts = rank_parts[r];
    dest[r].resize(parts.size());
    for (std::size_t i = 0; i < parts.size(); ++i) {
      parts.key[i] = space.key(parts.pos(i));
      const int d = decomp.rank_of(parts.key[i]);
      dest[r][i] = d;
      ++counts[static_cast<std::size_t>(d)];
      if (d != static_cast<int>(r)) ++stats.migrated;
    }
  }

  // Send side: every source posts one encoded emigrant batch per remote rank
  // (possibly empty — destinations count on exactly nranks-1 arrivals).
  // Stayers never touch the wire.
  for (std::size_t r = 0; r < nranks; ++r) {
    const ParticleSet& parts = rank_parts[r];
    std::vector<ParticleSet> batches(nranks);
    for (std::size_t i = 0; i < parts.size(); ++i) {
      const auto d = static_cast<std::size_t>(dest[r][i]);
      if (d == r) continue;
      batches[d].add(parts.get(i));
      batches[d].key.back() = parts.key[i];
    }
    for (std::size_t d = 0; d < nranks; ++d) {
      if (d == r) continue;
      WallTimer timer;
      std::vector<std::uint8_t> frame =
          wire::encode_particles(static_cast<int>(r), batches[d], /*with_forces=*/false);
      ws.encode_seconds += timer.elapsed();
      ws.frames += 1;
      ws.bytes += frame.size();
      transport.post(static_cast<int>(r), static_cast<int>(d), std::move(frame));
    }
  }

  // Receive side: decode the nranks-1 expected batches (any arrival order —
  // they are spliced by source rank afterwards) and interleave them with the
  // destination's own stayers, reproducing the historical (source rank,
  // source index) ordering exactly.
  std::vector<ParticleSet> incoming(nranks);
  for (std::size_t d = 0; d < nranks; ++d) {
    std::vector<ParticleSet> arrived(nranks);
    for (std::size_t k = 0; k + 1 < nranks; ++k) {
      std::optional<std::vector<std::uint8_t>> frame = transport.recv(static_cast<int>(d));
      BNS_CHECK(frame.has_value(),
                       "particle endpoint closed before all expected batches");
      WallTimer timer;
      wire::ParticleBatch batch = wire::decode_particles(*frame);
      ws.decode_seconds += timer.elapsed();
      BNS_CHECK(batch.src >= 0 && batch.src < static_cast<int>(nranks) &&
                           batch.src != static_cast<int>(d),
                       "particle batch from an impossible source rank");
      BNS_CHECK(!batch.with_forces, "migration batches must travel force-free");
      arrived[static_cast<std::size_t>(batch.src)] = std::move(batch.parts);
    }
    incoming[d].reserve(counts[d]);
    for (std::size_t src = 0; src < nranks; ++src) {
      if (src == d) {
        const ParticleSet& own = rank_parts[d];
        for (std::size_t i = 0; i < own.size(); ++i) {
          if (static_cast<std::size_t>(dest[d][i]) != d) continue;
          incoming[d].add(own.get(i));
          incoming[d].key.back() = own.key[i];
        }
      } else {
        append_particles(incoming[d], arrived[src]);
      }
    }
  }
  for (const ParticleSet& in : incoming) stats.total += in.size();
  rank_parts.swap(incoming);
  if (wire_stats) *wire_stats += ws;
  return stats;
}

ExchangeStats exchange(std::vector<ParticleSet>& rank_parts, const sfc::KeySpace& space,
                       const Decomposition& decomp) {
  InProcTransport scratch(decomp.num_ranks());
  return exchange(rank_parts, space, decomp, scratch, nullptr);
}

ExchangeStats exchange_resident(ParticleSet& mine, int self, const sfc::KeySpace& space,
                                const Decomposition& decomp, MigrationExchange& mex,
                                int step) {
  const auto nranks = static_cast<std::size_t>(decomp.num_ranks());
  const auto r = static_cast<std::size_t>(self);
  BNS_CHECK(r < nranks);

  // Key + owner per local particle, exactly as the centralized pre-pass does.
  ExchangeStats stats;
  std::vector<int> dest(mine.size());
  for (std::size_t i = 0; i < mine.size(); ++i) {
    mine.key[i] = space.key(mine.pos(i));
    dest[i] = decomp.rank_of(mine.key[i]);
    if (dest[i] != self) ++stats.migrated;
  }

  // Send side: one emigrant batch per peer, empty batches included (peers
  // count on exactly nranks-1 arrivals).
  std::vector<ParticleSet> batches(nranks);
  for (std::size_t i = 0; i < mine.size(); ++i) {
    const auto d = static_cast<std::size_t>(dest[i]);
    if (d == r) continue;
    batches[d].add(mine.get(i));
    batches[d].key.back() = mine.key[i];
  }
  for (std::size_t d = 0; d < nranks; ++d) {
    if (d == r) continue;
    mex.post(self, static_cast<int>(d), batches[d], step);
  }

  // Receive side: collect the nranks-1 inbound batches (any arrival order),
  // then splice them around the local stayers in source-rank order — the
  // ordering exchange() produces for this rank.
  std::vector<ParticleSet> arrived(nranks);
  std::vector<std::uint8_t> seen(nranks, 0);
  while (std::optional<wire::MigrationMsg> msg = mex.recv(self, step)) {
    BNS_CHECK(msg->src >= 0 && msg->src < static_cast<int>(nranks) &&
                         msg->src != self && !seen[static_cast<std::size_t>(msg->src)],
                     "migration batch from an impossible or duplicate source rank");
    seen[static_cast<std::size_t>(msg->src)] = 1;
    arrived[static_cast<std::size_t>(msg->src)] = std::move(msg->parts);
  }
  ParticleSet out;
  std::size_t stayers = mine.size() - static_cast<std::size_t>(stats.migrated);
  for (const ParticleSet& a : arrived) stayers += a.size();
  out.reserve(stayers);
  for (std::size_t src = 0; src < nranks; ++src) {
    if (src == r) {
      for (std::size_t i = 0; i < mine.size(); ++i) {
        if (static_cast<std::size_t>(dest[i]) != r) continue;
        out.add(mine.get(i));
        out.key.back() = mine.key[i];
      }
    } else {
      append_particles(out, arrived[src]);
    }
  }
  mine = std::move(out);
  stats.total = mine.size();
  return stats;
}

}  // namespace bonsai::domain
