#include "domain/decomposition.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace bonsai::domain {

Decomposition Decomposition::uniform(int nranks) {
  BONSAI_CHECK(nranks >= 1);
  std::vector<sfc::Key> bounds;
  bounds.reserve(static_cast<std::size_t>(nranks) + 1);
  const sfc::Key span = sfc::kKeyEnd / static_cast<sfc::Key>(nranks);
  for (int r = 0; r < nranks; ++r) bounds.push_back(span * static_cast<sfc::Key>(r));
  bounds.push_back(sfc::kKeyEnd);
  return from_boundaries(std::move(bounds));
}

Decomposition Decomposition::from_boundaries(std::vector<sfc::Key> bounds) {
  BONSAI_CHECK(bounds.size() >= 2);
  BONSAI_CHECK(bounds.front() == 0 && bounds.back() == sfc::kKeyEnd);
  BONSAI_CHECK_MSG(std::is_sorted(bounds.begin(), bounds.end()),
                   "domain boundaries must be monotone");
  Decomposition d;
  d.bounds_ = std::move(bounds);
  return d;
}

Decomposition Decomposition::from_samples(std::vector<sfc::Key> samples, int nranks,
                                          int snap_level) {
  BONSAI_CHECK(nranks >= 1);
  BONSAI_CHECK(snap_level >= 0 && snap_level <= sfc::kMaxLevel);
  if (samples.empty() || nranks == 1) return uniform(nranks);

  std::sort(samples.begin(), samples.end());
  std::vector<sfc::Key> bounds;
  bounds.reserve(static_cast<std::size_t>(nranks) + 1);
  bounds.push_back(0);
  for (int r = 1; r < nranks; ++r) {
    const std::size_t idx = (static_cast<std::size_t>(r) * samples.size()) /
                            static_cast<std::size_t>(nranks);
    sfc::Key b = samples[idx];
    if (snap_level > 0) b = sfc::cell_first_key(b, snap_level);
    // Duplicate samples (or aggressive snapping) may produce non-monotone
    // cuts; clamping keeps the partition valid at the cost of empty ranks.
    b = std::max(b, bounds.back());
    bounds.push_back(b);
  }
  bounds.push_back(sfc::kKeyEnd);
  return from_boundaries(std::move(bounds));
}

Decomposition Decomposition::from_weighted_samples(std::vector<WeightedKey> samples,
                                                   int nranks, int snap_level) {
  BONSAI_CHECK(nranks >= 1);
  BONSAI_CHECK(snap_level >= 0 && snap_level <= sfc::kMaxLevel);
  double total = 0.0;
  for (const WeightedKey& s : samples) total += std::max(s.weight, 0.0);
  if (samples.empty() || nranks == 1 || !(total > 0.0)) {
    std::vector<sfc::Key> keys;
    keys.reserve(samples.size());
    for (const WeightedKey& s : samples) keys.push_back(s.key);
    return from_samples(std::move(keys), nranks, snap_level);
  }

  std::sort(samples.begin(), samples.end(),
            [](const WeightedKey& a, const WeightedKey& b) { return a.key < b.key; });
  std::vector<sfc::Key> bounds;
  bounds.reserve(static_cast<std::size_t>(nranks) + 1);
  bounds.push_back(0);
  double cum = 0.0;
  std::size_t i = 0;
  for (int r = 1; r < nranks; ++r) {
    // First sample whose cumulative weight reaches the r-th weight quantile
    // becomes the cut (the equal-count cut is the weight==1 special case).
    const double cut = total * static_cast<double>(r) / static_cast<double>(nranks);
    while (i + 1 < samples.size() && cum + std::max(samples[i].weight, 0.0) < cut)
      cum += std::max(samples[i++].weight, 0.0);
    sfc::Key b = samples[i].key;
    if (snap_level > 0) b = sfc::cell_first_key(b, snap_level);
    b = std::max(b, bounds.back());
    bounds.push_back(b);
  }
  bounds.push_back(sfc::kKeyEnd);
  return from_boundaries(std::move(bounds));
}

int Decomposition::rank_of(sfc::Key key) const {
  BONSAI_ASSERT(key < sfc::kKeyEnd);
  // Count interior boundaries <= key; bounds_ = {0, b_1, ..., b_{n-1}, end}.
  const auto first = bounds_.begin() + 1;
  const auto last = bounds_.end() - 1;
  return static_cast<int>(std::upper_bound(first, last, key) - first);
}

std::vector<sfc::Key> sample_keys(const ParticleSet& parts, const sfc::KeySpace& space,
                                  std::size_t stride) {
  BONSAI_CHECK(stride >= 1);
  std::vector<sfc::Key> samples;
  const std::size_t n = parts.size();
  if (n == 0) return samples;
  samples.reserve((n + stride - 1) / stride);
  for (std::size_t i = 0; i < n; i += stride) samples.push_back(space.key(parts.pos(i)));
  return samples;
}

ExchangeStats exchange(std::vector<ParticleSet>& rank_parts, const sfc::KeySpace& space,
                       const Decomposition& decomp) {
  BONSAI_CHECK(static_cast<int>(rank_parts.size()) == decomp.num_ranks());
  const auto nranks = static_cast<std::size_t>(decomp.num_ranks());

  // Counting pre-pass (the alltoallv handshake): compute each particle's key
  // and owner once, so destinations can reserve before any copy happens.
  ExchangeStats stats;
  std::vector<std::vector<int>> dest(nranks);
  std::vector<std::size_t> counts(nranks, 0);
  for (std::size_t r = 0; r < nranks; ++r) {
    ParticleSet& parts = rank_parts[r];
    dest[r].resize(parts.size());
    for (std::size_t i = 0; i < parts.size(); ++i) {
      parts.key[i] = space.key(parts.pos(i));
      const int d = decomp.rank_of(parts.key[i]);
      dest[r][i] = d;
      ++counts[static_cast<std::size_t>(d)];
      if (d != static_cast<int>(r)) ++stats.migrated;
    }
  }

  std::vector<ParticleSet> incoming(nranks);
  for (std::size_t d = 0; d < nranks; ++d) incoming[d].reserve(counts[d]);
  for (std::size_t r = 0; r < nranks; ++r) {
    const ParticleSet& parts = rank_parts[r];
    for (std::size_t i = 0; i < parts.size(); ++i) {
      ParticleSet& in = incoming[static_cast<std::size_t>(dest[r][i])];
      in.add(parts.get(i));
      in.key.back() = parts.key[i];
    }
  }
  for (const ParticleSet& in : incoming) stats.total += in.size();
  rank_parts.swap(incoming);
  return stats;
}

}  // namespace bonsai::domain
