#include "domain/wire.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <map>
#include <tuple>

#include "util/check.hpp"

namespace bonsai::domain::wire {

namespace {

constexpr bool kHostLittle = std::endian::native == std::endian::little;

// Per-node wire footprint: keys (16) + particle range (8) + child link (5) +
// level/kind (2) + box (48) + multipole (80) + rcrit (8).
constexpr std::size_t kNodeBytes = 167;

// Per-particle footprint without / with the force block.
constexpr std::size_t kParticleBytes = 9 * 8;
constexpr std::size_t kParticleForceBytes = 13 * 8;

// --- Flat little-endian writer ----------------------------------------------
class Writer {
 public:
  explicit Writer(FrameType type) {
    buf_.reserve(64);
    header(type);
  }

  // Build the frame inside `reuse` (its capacity carries over), for posting
  // paths that encode every step: finish() hands the buffer back to the
  // caller, who keeps it for the next encode.
  Writer(FrameType type, std::vector<std::uint8_t>&& reuse) : buf_(std::move(reuse)) {
    buf_.clear();
    if (buf_.capacity() < 64) buf_.reserve(64);
    header(type);
  }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { raw(v); }
  void u32(std::uint32_t v) { raw(v); }
  void u64(std::uint64_t v) { raw(v); }
  void i32(std::int32_t v) { raw(static_cast<std::uint32_t>(v)); }
  void f64(double v) { raw(std::bit_cast<std::uint64_t>(v)); }

  void f64_span(std::span<const double> v) { raw_span(v); }
  void u64_span(std::span<const std::uint64_t> v) { raw_span(v); }
  void bytes(std::span<const std::uint8_t> v) { buf_.insert(buf_.end(), v.begin(), v.end()); }

  void vec3(const Vec3d& v) {
    f64(v.x);
    f64(v.y);
    f64(v.z);
  }

  void aabb(const AABB& b) {
    vec3(b.lo);
    vec3(b.hi);
  }

  std::vector<std::uint8_t> finish() {
    const std::uint64_t payload = buf_.size() - kHeaderBytes;
    for (int i = 0; i < 8; ++i)
      buf_[8 + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(payload >> (8 * i));
    return std::move(buf_);
  }

 private:
  void header(FrameType type) {
    u32(kMagic);
    u16(kVersion);
    u16(static_cast<std::uint16_t>(type));
    u64(0);  // payload length, patched by finish()
  }

  template <typename T>
  void raw(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i)
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  template <typename T>
  void raw_span(std::span<const T> v) {
    if constexpr (kHostLittle) {
      const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
      buf_.insert(buf_.end(), p, p + v.size_bytes());
    } else {
      for (const T x : v) raw(std::bit_cast<std::uint64_t>(x));
    }
  }

  std::vector<std::uint8_t> buf_;
};

// --- Bounds-checked little-endian reader -------------------------------------
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::size_t remaining() const { return bytes_.size() - pos_; }

  void require(bool cond, const char* what) {
    if (!cond) throw WireError(std::string("wire decode: ") + what);
  }

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() { return raw<std::uint16_t>(); }
  std::uint32_t u32() { return raw<std::uint32_t>(); }
  std::uint64_t u64() { return raw<std::uint64_t>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(raw<std::uint32_t>()); }
  double f64() { return std::bit_cast<double>(raw<std::uint64_t>()); }

  void f64_span(std::span<double> out) { raw_span(out); }
  void u64_span(std::span<std::uint64_t> out) { raw_span(out); }

  // Sized-array handshake: validate that `count` elements of `elem_bytes`
  // each actually fit in the remaining payload *before* any allocation, so a
  // corrupted count can neither overflow nor trigger a huge resize.
  std::size_t array_count(std::uint64_t count, std::size_t elem_bytes, const char* what) {
    require(elem_bytes == 0 || count <= remaining() / elem_bytes, what);
    return static_cast<std::size_t>(count);
  }

  Vec3d vec3() { return {f64(), f64(), f64()}; }

  AABB aabb() {
    AABB b;
    b.lo = vec3();
    b.hi = vec3();
    return b;
  }

  void done() { require(pos_ == bytes_.size(), "trailing bytes after payload"); }

 private:
  std::span<const std::uint8_t> take(std::size_t n) {
    require(n <= remaining(), "truncated frame");
    const auto s = bytes_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  template <typename T>
  T raw() {
    const auto s = take(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
      v = static_cast<T>(v | (static_cast<T>(s[i]) << (8 * i)));
    return v;
  }

  template <typename T>
  void raw_span(std::span<T> out) {
    if (out.empty()) return;  // empty vector => null data(); memcpy(null,...) is UB
    const auto s = take(out.size_bytes());
    if constexpr (kHostLittle) {
      std::memcpy(out.data(), s.data(), s.size());
    } else {
      Reader sub(s);
      for (T& x : out) x = std::bit_cast<T>(sub.raw<std::uint64_t>());
    }
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

// Validate the header and position a Reader at the payload.
Reader open_frame(std::span<const std::uint8_t> frame, FrameType expected) {
  const FrameType type = frame_type(frame);
  if (type != expected)
    throw WireError("wire decode: unexpected frame type " +
                    std::to_string(static_cast<int>(type)) + " (expected " +
                    std::to_string(static_cast<int>(expected)) + ")");
  return Reader(frame.subspan(kHeaderBytes));
}

void put_node(Writer& w, const TreeNode& nd) {
  w.u64(nd.key_begin);
  w.u64(nd.key_end);
  w.u32(nd.part_begin);
  w.u32(nd.part_end);
  w.i32(nd.first_child);
  w.u8(nd.num_children);
  w.u8(nd.level);
  w.u8(static_cast<std::uint8_t>(nd.kind));
  w.aabb(nd.box);
  w.f64(nd.mp.mass);
  w.vec3(nd.mp.com);
  for (double q : nd.mp.quad.q) w.f64(q);
  w.f64(nd.rcrit);
}

// Enforce the structural invariants both LET producers guarantee: children
// are a forward-pointing contiguous block inside the node array (so
// traversal cannot cycle), leaves have no children, and the particle range
// lies inside the payload arrays. Shared by the full-frame decoder and the
// LetDelta patcher, which re-runs it on every node of the *patched* tree
// before that tree is ever walked. Normalizes leaf child links to -1.
void validate_node(TreeNode& nd, std::size_t index, std::size_t num_nodes,
                   std::size_t num_particles) {
  const auto require = [](bool cond, const char* what) {
    if (!cond) throw WireError(std::string("wire decode: ") + what);
  };
  require(nd.key_begin <= nd.key_end, "node key range inverted");
  require(nd.part_begin <= nd.part_end, "node particle range inverted");
  require(nd.part_end <= num_particles, "node particle range out of bounds");
  if (nd.kind == NodeKind::kInternal) {
    require(nd.num_children >= 1, "internal node without children");
    require(nd.first_child > static_cast<std::int32_t>(index),
            "child block does not point forward");
    require(static_cast<std::size_t>(nd.first_child) + nd.num_children <= num_nodes,
            "child block out of bounds");
  } else {
    require(nd.num_children == 0, "leaf node with children");
    nd.first_child = -1;
  }
}

// Read one node and enforce the invariants above.
TreeNode read_node(Reader& r, std::size_t index, std::size_t num_nodes,
                   std::size_t num_particles) {
  TreeNode nd;
  nd.key_begin = r.u64();
  nd.key_end = r.u64();
  nd.part_begin = r.u32();
  nd.part_end = r.u32();
  nd.first_child = r.i32();
  nd.num_children = r.u8();
  nd.level = r.u8();
  const std::uint8_t kind = r.u8();
  nd.box = r.aabb();
  nd.mp.mass = r.f64();
  nd.mp.com = r.vec3();
  for (double& q : nd.mp.quad.q) q = r.f64();
  nd.rcrit = r.f64();

  r.require(kind <= static_cast<std::uint8_t>(NodeKind::kMultipoleLeaf),
            "unknown node kind");
  nd.kind = static_cast<NodeKind>(kind);
  validate_node(nd, index, num_nodes, num_particles);
  return nd;
}

void put_particle_payload(Writer& w, int src, const ParticleSet& p, bool with_forces) {
  w.i32(src);
  w.u8(with_forces ? 1 : 0);
  w.u64(p.size());
  w.f64_span(p.x);
  w.f64_span(p.y);
  w.f64_span(p.z);
  w.f64_span(p.vx);
  w.f64_span(p.vy);
  w.f64_span(p.vz);
  w.f64_span(p.mass);
  w.u64_span(p.id);
  w.u64_span(p.key);
  if (with_forces) {
    w.f64_span(p.ax);
    w.f64_span(p.ay);
    w.f64_span(p.az);
    w.f64_span(p.pot);
  }
}

ParticleBatch read_particle_payload(Reader& r) {
  ParticleBatch batch;
  batch.src = r.i32();
  const std::uint8_t flags = r.u8();
  r.require(flags <= 1, "unknown particle batch flags");
  batch.with_forces = flags != 0;
  const std::size_t n =
      r.array_count(r.u64(), batch.with_forces ? kParticleForceBytes : kParticleBytes,
                    "particle count exceeds payload");
  ParticleSet& p = batch.parts;
  p.resize(n);
  r.f64_span(p.x);
  r.f64_span(p.y);
  r.f64_span(p.z);
  r.f64_span(p.vx);
  r.f64_span(p.vy);
  r.f64_span(p.vz);
  r.f64_span(p.mass);
  r.u64_span(p.id);
  r.u64_span(p.key);
  if (batch.with_forces) {
    r.f64_span(p.ax);
    r.f64_span(p.ay);
    r.f64_span(p.az);
    r.f64_span(p.pot);
  }
  return batch;
}

}  // namespace

const char* frame_type_name(FrameType type) {
  switch (type) {
    case FrameType::kLet: return "Let";
    case FrameType::kParticles: return "Particles";
    case FrameType::kHello: return "Hello";
    case FrameType::kConfig: return "Config";
    case FrameType::kStepBegin: return "StepBegin";
    case FrameType::kStepResult: return "StepResult";
    case FrameType::kShutdown: return "Shutdown";
    case FrameType::kBoundaries: return "Boundaries";
    case FrameType::kKeySamples: return "KeySamples";
    case FrameType::kMigration: return "Migration";
    case FrameType::kPeerDirectory: return "PeerDirectory";
    case FrameType::kPeerHello: return "PeerHello";
    case FrameType::kTrace: return "Trace";
    case FrameType::kJobSubmit: return "JobSubmit";
    case FrameType::kJobStatus: return "JobStatus";
    case FrameType::kJobResult: return "JobResult";
    case FrameType::kJobCancel: return "JobCancel";
    case FrameType::kSnapshot: return "Snapshot";
    case FrameType::kMetricsQuery: return "MetricsQuery";
    case FrameType::kMetricsReport: return "MetricsReport";
    case FrameType::kLetDelta: return "LetDelta";
  }
  return "Unknown";
}

void merge_traffic(std::vector<PeerTraffic>& into, std::span<const PeerTraffic> add) {
  const auto key = [](const PeerTraffic& t) { return std::tie(t.src, t.dst, t.type); };
  for (const PeerTraffic& t : add) {
    auto it = std::lower_bound(into.begin(), into.end(), t,
                               [&](const PeerTraffic& a, const PeerTraffic& b) {
                                 return key(a) < key(b);
                               });
    if (it != into.end() && key(*it) == key(t)) {
      it->frames += t.frames;
      it->bytes += t.bytes;
    } else {
      into.insert(it, t);
    }
  }
}

FrameType frame_type(std::span<const std::uint8_t> frame) {
  if (frame.size() < kHeaderBytes) throw WireError("wire decode: frame shorter than header");
  Reader r(frame);
  if (r.u32() != kMagic) throw WireError("wire decode: bad magic");
  const std::uint16_t version = r.u16();
  if (version != kVersion)
    throw WireError("wire decode: version mismatch (got " + std::to_string(version) +
                    ", expected " + std::to_string(kVersion) + ")");
  const auto type = static_cast<FrameType>(r.u16());
  if (r.u64() != frame.size() - kHeaderBytes)
    throw WireError("wire decode: payload length mismatch");
  return type;
}

namespace {

void put_let(Writer& w, const LetMessage& msg) {
  w.i32(msg.src);
  w.f64(msg.export_seconds);
  w.u32(static_cast<std::uint32_t>(msg.let.nodes.size()));
  w.u32(static_cast<std::uint32_t>(msg.let.num_particles()));
  for (const TreeNode& nd : msg.let.nodes) put_node(w, nd);
  w.f64_span(msg.let.x);
  w.f64_span(msg.let.y);
  w.f64_span(msg.let.z);
  w.f64_span(msg.let.m);
}

}  // namespace

std::vector<std::uint8_t> encode_let(const LetMessage& msg) {
  Writer w(FrameType::kLet);
  put_let(w, msg);
  return w.finish();
}

std::vector<std::uint8_t> encode_let_scratch(const LetMessage& msg,
                                             std::vector<std::uint8_t>& scratch) {
  Writer w(FrameType::kLet, std::move(scratch));
  put_let(w, msg);
  scratch = w.finish();
  return {scratch.begin(), scratch.end()};
}

LetMessage decode_let(std::span<const std::uint8_t> frame) {
  Reader r = open_frame(frame, FrameType::kLet);
  LetMessage msg;
  msg.wire_bytes = frame.size();
  msg.src = r.i32();
  msg.export_seconds = r.f64();
  const std::size_t num_nodes = r.u32();
  const std::size_t num_parts = r.u32();
  r.require(num_nodes <= r.remaining() / kNodeBytes,
            "node count exceeds payload");
  r.require(num_parts <= (r.remaining() - num_nodes * kNodeBytes) / (4 * 8),
            "particle count exceeds payload");
  msg.let.nodes.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i)
    msg.let.nodes.push_back(read_node(r, i, num_nodes, num_parts));
  msg.let.x.resize(num_parts);
  msg.let.y.resize(num_parts);
  msg.let.z.resize(num_parts);
  msg.let.m.resize(num_parts);
  r.f64_span(msg.let.x);
  r.f64_span(msg.let.y);
  r.f64_span(msg.let.z);
  r.f64_span(msg.let.m);
  r.done();
  return msg;
}

// --- Incremental LET codec (wire v7) -----------------------------------------
// A LetDelta frame patches the LET a peer already holds into the fresh one.
// Node topology ships as per-node records — matched nodes name their cached
// counterpart (by index delta) and carry only the structural fields that
// changed; unmatched nodes ship the full 167-byte record. The floating-point
// payload (17 values per matched node, 4 per particle) ships as the XOR of
// each value against a prediction extrapolated from up to three cached
// generations; because exporter and importer extrapolate from mirrored,
// bit-identical inputs, the residual is lossless and near-zero for smoothly
// drifting values, so only its significant low bytes travel (a 4-bit length
// per value, two per byte, then the byte stream).
namespace {

constexpr std::size_t kNodeValues = 17;  // box(6) mass com(3) quad(6) rcrit
constexpr std::size_t kPartValues = 4;   // x y z m

void node_values(const TreeNode& nd, double* out) {
  out[0] = nd.box.lo.x;
  out[1] = nd.box.lo.y;
  out[2] = nd.box.lo.z;
  out[3] = nd.box.hi.x;
  out[4] = nd.box.hi.y;
  out[5] = nd.box.hi.z;
  out[6] = nd.mp.mass;
  out[7] = nd.mp.com.x;
  out[8] = nd.mp.com.y;
  out[9] = nd.mp.com.z;
  for (std::size_t i = 0; i < 6; ++i) out[10 + i] = nd.mp.quad.q[i];
  out[16] = nd.rcrit;
}

void set_node_values(TreeNode& nd, const double* v) {
  nd.box.lo = {v[0], v[1], v[2]};
  nd.box.hi = {v[3], v[4], v[5]};
  nd.mp.mass = v[6];
  nd.mp.com = {v[7], v[8], v[9]};
  for (std::size_t i = 0; i < 6; ++i) nd.mp.quad.q[i] = v[10 + i];
  nd.rcrit = v[16];
}

// Extrapolate the next value from up to three cached generations (v1 newest).
// Kept out-of-line so the exporter and the importer run the *same* machine
// code: the XOR residual is lossless either way, but identical predictions
// are what make it small. Prediction order follows how long the element has
// been tracked, so freshly matched nodes fall back to last-value prediction.
[[gnu::noinline]] double predict(double v1, double v2, double v3, std::uint8_t age) {
  if (age >= 3) return 3.0 * (v1 - v2) + v3;  // quadratic extrapolation
  if (age == 2) return 2.0 * v1 - v2;         // linear extrapolation
  return v1;
}

void put_varint(Writer& w, std::uint64_t v) {
  while (v >= 0x80) {
    w.u8(static_cast<std::uint8_t>(0x80 | (v & 0x7F)));
    v >>= 7;
  }
  w.u8(static_cast<std::uint8_t>(v));
}

std::uint64_t read_varint(Reader& r) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    r.require(shift < 64, "varint too long");
    const std::uint8_t b = r.u8();
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if (!(b & 0x80)) return v;
    shift += 7;
  }
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

// Encoder half of the XOR-residual value stream.
struct ValueBlob {
  std::vector<std::uint8_t> lens;   // significant-byte count per value (0..8)
  std::vector<std::uint8_t> data;   // concatenated residual low bytes, LE

  void put(double actual, double pred) {
    std::uint64_t d =
        std::bit_cast<std::uint64_t>(actual) ^ std::bit_cast<std::uint64_t>(pred);
    std::uint8_t n = 0;
    while (d != 0) {
      data.push_back(static_cast<std::uint8_t>(d & 0xFF));
      d >>= 8;
      ++n;
    }
    lens.push_back(n);
  }

  void write(Writer& w) const {
    for (std::size_t i = 0; i < lens.size(); i += 2) {
      const std::uint8_t hi = (i + 1 < lens.size()) ? lens[i + 1] : 0;
      w.u8(static_cast<std::uint8_t>(lens[i] | (hi << 4)));
    }
    w.bytes(data);
  }
};

// Decoder half: the nibble lengths are read up front (validated <= 8), then
// get() consumes residual bytes value by value.
class ValueBlobReader {
 public:
  ValueBlobReader(Reader& r, std::size_t count) : r_(r), lens_(count) {
    for (std::size_t i = 0; i < count; i += 2) {
      const std::uint8_t b = r.u8();
      lens_[i] = b & 0x0F;
      if (i + 1 < count)
        lens_[i + 1] = b >> 4;
      else
        r.require((b >> 4) == 0, "value length padding not zero");
    }
    for (const std::uint8_t n : lens_)
      r.require(n <= 8, "value length out of range");
  }

  double get(double pred) {
    const std::uint8_t n = lens_[next_++];
    std::uint64_t d = 0;
    for (std::uint8_t i = 0; i < n; ++i)
      d |= static_cast<std::uint64_t>(r_.u8()) << (8 * i);
    return std::bit_cast<double>(d ^ std::bit_cast<std::uint64_t>(pred));
  }

 private:
  Reader& r_;
  std::vector<std::uint8_t> lens_;
  std::size_t next_ = 0;
};

// Match each node of `next` to its cached counterpart by the exact
// (key range, level) triple — the identity that survives a step while every
// float around it drifts. Each cached node matches at most once; the first
// claimant wins, deterministically.
std::vector<std::int32_t> match_nodes(const LetTree& cached, const LetTree& next) {
  std::map<std::array<std::uint64_t, 3>, std::int32_t> index;
  for (std::size_t j = 0; j < cached.nodes.size(); ++j) {
    const TreeNode& nd = cached.nodes[j];
    index.try_emplace({nd.key_begin, nd.key_end, nd.level},
                      static_cast<std::int32_t>(j));
  }
  std::vector<std::int32_t> match(next.nodes.size(), -1);
  for (std::size_t i = 0; i < next.nodes.size(); ++i) {
    const TreeNode& nd = next.nodes[i];
    const auto it = index.find({nd.key_begin, nd.key_end, nd.level});
    if (it == index.end()) continue;
    match[i] = it->second;
    index.erase(it);  // claim it
  }
  return match;
}

// Per-particle counterpart indices, derived from matched particle leaves of
// equal population: their ranges map element-wise.
std::vector<std::int64_t> match_particles(const LetTree& cached, const LetTree& next,
                                          std::span<const std::int32_t> nmatch) {
  std::vector<std::int64_t> match(next.num_particles(), -1);
  for (std::size_t i = 0; i < next.nodes.size(); ++i) {
    if (nmatch[i] < 0) continue;
    const TreeNode& nd = next.nodes[i];
    const TreeNode& od = cached.nodes[static_cast<std::size_t>(nmatch[i])];
    if (nd.kind != NodeKind::kParticleLeaf || od.kind != NodeKind::kParticleLeaf)
      continue;
    if (nd.count() != od.count() || nd.count() == 0) continue;
    for (std::uint32_t k = 0; k < nd.count(); ++k)
      match[nd.part_begin + k] = static_cast<std::int64_t>(od.part_begin) + k;
  }
  return match;
}

// Advance a pair's mirrored cache to `next` (the tree the peer now holds),
// shifting the per-element value history along the match arrays. Empty match
// arrays mean a full-frame reset: every element restarts at age 1. The
// caller sets `version`. Built fully before anything is assigned, so a
// throw (allocation) leaves the cache untouched.
void advance_let_cache(LetCacheEntry& cache, LetTree next,
                       std::span<const std::int32_t> nmatch,
                       std::span<const std::int64_t> pmatch) {
  const std::size_t n = next.num_cells();
  const std::size_t p = next.num_particles();
  std::vector<double> nh1(n * kNodeValues, 0.0), nh2(n * kNodeValues, 0.0);
  std::vector<double> ph1(p * kPartValues, 0.0), ph2(p * kPartValues, 0.0);
  std::vector<std::uint8_t> na(n, 1), pa(p, 1);
  if (!nmatch.empty()) {
    for (std::size_t i = 0; i < n; ++i) {
      if (nmatch[i] < 0) continue;
      const std::size_t j = static_cast<std::size_t>(nmatch[i]);
      node_values(cache.tree.nodes[j], &nh1[i * kNodeValues]);
      if (cache.node_age[j] >= 2)
        std::copy_n(&cache.node_hist1[j * kNodeValues], kNodeValues,
                    &nh2[i * kNodeValues]);
      na[i] = static_cast<std::uint8_t>(std::min<int>(cache.node_age[j] + 1, 3));
    }
    for (std::size_t k = 0; k < p; ++k) {
      if (pmatch[k] < 0) continue;
      const std::size_t q = static_cast<std::size_t>(pmatch[k]);
      ph1[k * kPartValues + 0] = cache.tree.x[q];
      ph1[k * kPartValues + 1] = cache.tree.y[q];
      ph1[k * kPartValues + 2] = cache.tree.z[q];
      ph1[k * kPartValues + 3] = cache.tree.m[q];
      if (cache.part_age[q] >= 2)
        std::copy_n(&cache.part_hist1[q * kPartValues], kPartValues,
                    &ph2[k * kPartValues]);
      pa[k] = static_cast<std::uint8_t>(std::min<int>(cache.part_age[q] + 1, 3));
    }
  }
  cache.tree = std::move(next);
  cache.node_hist1 = std::move(nh1);
  cache.node_hist2 = std::move(nh2);
  cache.part_hist1 = std::move(ph1);
  cache.part_hist2 = std::move(ph2);
  cache.node_age = std::move(na);
  cache.part_age = std::move(pa);
}

// Exact wire footprint of the full Let frame for the same tree.
std::uint64_t full_let_bytes(const LetTree& let) {
  return kHeaderBytes + 4 + 8 + 4 + 4 + let.num_cells() * kNodeBytes +
         let.num_particles() * kPartValues * 8;
}

}  // namespace

void LetCacheEntry::check_consistency() const {
  if (version == 0) {
    BNS_CHECK(tree.nodes.empty() && tree.num_particles() == 0 && node_hist1.empty() &&
                  node_hist2.empty() && part_hist1.empty() && part_hist2.empty() &&
                  node_age.empty() && part_age.empty(),
              "unsynced LET cache entry must be empty");
    return;
  }
  const std::size_t n = tree.num_cells();
  const std::size_t p = tree.num_particles();
  BNS_CHECK(node_hist1.size() == n * kNodeValues && node_hist2.size() == n * kNodeValues,
            "node history arrays out of step with the cached tree");
  BNS_CHECK(part_hist1.size() == p * kPartValues && part_hist2.size() == p * kPartValues,
            "particle history arrays out of step with the cached tree");
  BNS_CHECK(node_age.size() == n && part_age.size() == p,
            "age arrays out of step with the cached tree");
  for (const std::uint8_t a : node_age)
    BNS_CHECK(a >= 1 && a <= 3, "node age outside the prediction window");
  for (const std::uint8_t a : part_age)
    BNS_CHECK(a >= 1 && a <= 3, "particle age outside the prediction window");
}

LetEncodeResult encode_let_cached(const LetMessage& msg, LetCacheEntry& cache,
                                  double churn_ratio,
                                  std::vector<std::uint8_t>* scratch) {
  const LetTree& let = msg.let;
  LetEncodeResult res;
  res.full_bytes = full_let_bytes(let);
  std::vector<std::uint8_t> local;
  std::vector<std::uint8_t>& buf = scratch ? *scratch : local;

  if (cache.version != 0 && !let.empty()) {
    const std::vector<std::int32_t> nmatch = match_nodes(cache.tree, let);
    const std::vector<std::int64_t> pmatch = match_particles(cache.tree, let, nmatch);

    Writer w(FrameType::kLetDelta, std::move(buf));
    w.i32(msg.src);
    w.f64(msg.export_seconds);
    w.u64(cache.version);
    w.u32(static_cast<std::uint32_t>(let.num_cells()));
    w.u32(static_cast<std::uint32_t>(let.num_particles()));

    ValueBlob node_blob;
    for (std::size_t i = 0; i < let.nodes.size(); ++i) {
      const TreeNode& nd = let.nodes[i];
      if (nmatch[i] < 0) {
        w.u8(0);
        put_node(w, nd);
        continue;
      }
      const std::size_t j = static_cast<std::size_t>(nmatch[i]);
      const TreeNode& od = cache.tree.nodes[j];
      w.u8(1);
      put_varint(w, zigzag(static_cast<std::int64_t>(j) - static_cast<std::int64_t>(i)));
      std::uint8_t sflags = 0;
      if (nd.part_begin != od.part_begin || nd.part_end != od.part_end) sflags |= 1;
      if (nd.first_child != od.first_child || nd.num_children != od.num_children ||
          nd.kind != od.kind)
        sflags |= 2;
      w.u8(sflags);
      if (sflags & 1) {
        put_varint(w, zigzag(static_cast<std::int64_t>(nd.part_begin) -
                             static_cast<std::int64_t>(od.part_begin)));
        put_varint(w, zigzag(static_cast<std::int64_t>(nd.part_end) -
                             static_cast<std::int64_t>(od.part_end)));
      }
      if (sflags & 2) {
        w.i32(nd.first_child);
        w.u8(nd.num_children);
        w.u8(static_cast<std::uint8_t>(nd.kind));
      }
      double vals[kNodeValues], base[kNodeValues];
      node_values(nd, vals);
      node_values(od, base);
      for (std::size_t k = 0; k < kNodeValues; ++k)
        node_blob.put(vals[k],
                      predict(base[k], cache.node_hist1[j * kNodeValues + k],
                              cache.node_hist2[j * kNodeValues + k], cache.node_age[j]));
    }

    // Particle coverage as runs of matched/raw indices.
    std::vector<std::array<std::int64_t, 3>> runs;  // {len, kind, old_start}
    const std::size_t np = let.num_particles();
    for (std::size_t k = 0; k < np;) {
      if (pmatch[k] < 0) {
        std::size_t e = k;
        while (e < np && pmatch[e] < 0) ++e;
        runs.push_back({static_cast<std::int64_t>(e - k), 0, 0});
        k = e;
      } else {
        std::size_t e = k;
        while (e + 1 < np && pmatch[e + 1] == pmatch[e] + 1) ++e;
        ++e;
        runs.push_back({static_cast<std::int64_t>(e - k), 1, pmatch[k]});
        k = e;
      }
    }
    w.u32(static_cast<std::uint32_t>(runs.size()));
    std::size_t covered = 0;
    for (const auto& run : runs) {
      put_varint(w, static_cast<std::uint64_t>(run[0]));
      w.u8(static_cast<std::uint8_t>(run[1]));
      if (run[1] == 1)
        put_varint(w, zigzag(run[2] - static_cast<std::int64_t>(covered)));
      covered += static_cast<std::size_t>(run[0]);
    }

    ValueBlob part_blob;
    for (std::size_t k = 0; k < np; ++k) {
      const double actual[kPartValues] = {let.x[k], let.y[k], let.z[k], let.m[k]};
      if (pmatch[k] < 0) {
        for (std::size_t c = 0; c < kPartValues; ++c) part_blob.put(actual[c], 0.0);
        continue;
      }
      const std::size_t q = static_cast<std::size_t>(pmatch[k]);
      const double base[kPartValues] = {cache.tree.x[q], cache.tree.y[q],
                                        cache.tree.z[q], cache.tree.m[q]};
      for (std::size_t c = 0; c < kPartValues; ++c)
        part_blob.put(actual[c],
                      predict(base[c], cache.part_hist1[q * kPartValues + c],
                              cache.part_hist2[q * kPartValues + c], cache.part_age[q]));
    }

    node_blob.write(w);
    part_blob.write(w);
    buf = w.finish();

    if (static_cast<double>(buf.size()) <
        churn_ratio * static_cast<double>(res.full_bytes)) {
      res.frame.assign(buf.begin(), buf.end());
      res.is_delta = true;
      advance_let_cache(cache, let, nmatch, pmatch);
      ++cache.version;
      if constexpr (kDcheckEnabled) cache.check_consistency();
      return res;
    }
    // Churn beyond the threshold: the patch is not worth shipping. Fall
    // through to a full frame, which also resets the peer's cache.
  }

  Writer w(FrameType::kLet, std::move(buf));
  put_let(w, msg);
  buf = w.finish();
  res.frame.assign(buf.begin(), buf.end());
  res.is_delta = false;
  advance_let_cache(cache, let, {}, {});
  cache.version = 1;
  if constexpr (kDcheckEnabled) cache.check_consistency();
  return res;
}

int peek_let_src(std::span<const std::uint8_t> frame) {
  const FrameType type = frame_type(frame);
  if (type != FrameType::kLet && type != FrameType::kLetDelta)
    throw WireError("wire decode: not a LET-class frame");
  Reader r(frame.subspan(kHeaderBytes));
  return r.i32();
}

LetMessage decode_let_cached(std::span<const std::uint8_t> frame, LetCacheEntry& cache) {
  if (frame_type(frame) == FrameType::kLet) {
    LetMessage msg = decode_let(frame);
    advance_let_cache(cache, msg.let, {}, {});
    cache.version = 1;
    if constexpr (kDcheckEnabled) cache.check_consistency();
    return msg;
  }

  Reader r = open_frame(frame, FrameType::kLetDelta);
  LetMessage msg;
  msg.wire_bytes = frame.size();
  msg.src = r.i32();
  msg.export_seconds = r.f64();
  const std::uint64_t base = r.u64();
  if (cache.version == 0)
    throw WireError("wire decode: LET delta without a cached base tree");
  if (base != cache.version)
    throw WireError("wire decode: LET delta base version mismatch (got " +
                    std::to_string(base) + ", expected " +
                    std::to_string(cache.version) + ")");

  const std::size_t num_nodes = r.u32();
  const std::size_t num_parts = r.u32();
  // Every node record costs at least one byte and every particle at least
  // two nibble bytes of value stream, so corrupted counts cannot trigger a
  // huge allocation.
  r.require(num_nodes <= r.remaining(), "node count exceeds payload");
  r.require(num_parts <= r.remaining() / 2, "particle count exceeds payload");
  const std::size_t old_nodes = cache.tree.num_cells();
  const std::size_t old_parts = cache.tree.num_particles();

  std::vector<TreeNode> nodes;
  nodes.reserve(num_nodes);
  std::vector<std::int32_t> nmatch(num_nodes, -1);
  std::size_t num_matched = 0;
  for (std::size_t i = 0; i < num_nodes; ++i) {
    const std::uint8_t flags = r.u8();
    r.require(flags <= 1, "unknown LET delta node flags");
    if (!(flags & 1)) {
      nodes.push_back(read_node(r, i, num_nodes, num_parts));
      continue;
    }
    const std::int64_t j = static_cast<std::int64_t>(i) + unzigzag(read_varint(r));
    r.require(j >= 0 && j < static_cast<std::int64_t>(old_nodes),
              "LET delta node match out of range");
    nmatch[i] = static_cast<std::int32_t>(j);
    ++num_matched;
    TreeNode nd = cache.tree.nodes[static_cast<std::size_t>(j)];
    const std::uint8_t sflags = r.u8();
    r.require(sflags <= 3, "unknown LET delta node change flags");
    if (sflags & 1) {
      const std::int64_t pb =
          static_cast<std::int64_t>(nd.part_begin) + unzigzag(read_varint(r));
      const std::int64_t pe =
          static_cast<std::int64_t>(nd.part_end) + unzigzag(read_varint(r));
      r.require(pb >= 0 && pb <= static_cast<std::int64_t>(num_parts) && pe >= 0 &&
                    pe <= static_cast<std::int64_t>(num_parts),
                "LET delta particle range out of bounds");
      nd.part_begin = static_cast<std::uint32_t>(pb);
      nd.part_end = static_cast<std::uint32_t>(pe);
    }
    if (sflags & 2) {
      nd.first_child = r.i32();
      nd.num_children = r.u8();
      const std::uint8_t kind = r.u8();
      r.require(kind <= static_cast<std::uint8_t>(NodeKind::kMultipoleLeaf),
                "unknown node kind");
      nd.kind = static_cast<NodeKind>(kind);
    }
    nodes.push_back(nd);
  }

  const std::size_t num_runs = r.u32();
  std::vector<std::int64_t> pmatch(num_parts, -1);
  std::size_t covered = 0;
  for (std::size_t run = 0; run < num_runs; ++run) {
    const std::uint64_t len = read_varint(r);
    r.require(len >= 1 && len <= num_parts - covered,
              "LET delta runs exceed particle count");
    const std::uint8_t kind = r.u8();
    r.require(kind <= 1, "unknown LET delta run kind");
    if (kind == 1) {
      const std::int64_t old_start =
          static_cast<std::int64_t>(covered) + unzigzag(read_varint(r));
      r.require(old_start >= 0 && static_cast<std::uint64_t>(old_start) + len <=
                                      static_cast<std::uint64_t>(old_parts),
                "LET delta run out of range");
      for (std::uint64_t k = 0; k < len; ++k)
        pmatch[covered + k] = old_start + static_cast<std::int64_t>(k);
    }
    covered += static_cast<std::size_t>(len);
  }
  r.require(covered == num_parts, "LET delta runs do not cover particles");

  ValueBlobReader node_vals(r, num_matched * kNodeValues);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    if (nmatch[i] < 0) continue;
    const std::size_t j = static_cast<std::size_t>(nmatch[i]);
    double base_vals[kNodeValues], out[kNodeValues];
    node_values(cache.tree.nodes[j], base_vals);
    for (std::size_t k = 0; k < kNodeValues; ++k)
      out[k] = node_vals.get(
          predict(base_vals[k], cache.node_hist1[j * kNodeValues + k],
                  cache.node_hist2[j * kNodeValues + k], cache.node_age[j]));
    set_node_values(nodes[i], out);
  }

  ValueBlobReader part_vals(r, num_parts * kPartValues);
  msg.let.x.resize(num_parts);
  msg.let.y.resize(num_parts);
  msg.let.z.resize(num_parts);
  msg.let.m.resize(num_parts);
  for (std::size_t k = 0; k < num_parts; ++k) {
    double pred[kPartValues] = {0.0, 0.0, 0.0, 0.0};
    if (pmatch[k] >= 0) {
      const std::size_t q = static_cast<std::size_t>(pmatch[k]);
      const double base_vals[kPartValues] = {cache.tree.x[q], cache.tree.y[q],
                                             cache.tree.z[q], cache.tree.m[q]};
      for (std::size_t c = 0; c < kPartValues; ++c)
        pred[c] = predict(base_vals[c], cache.part_hist1[q * kPartValues + c],
                          cache.part_hist2[q * kPartValues + c], cache.part_age[q]);
    }
    msg.let.x[k] = part_vals.get(pred[0]);
    msg.let.y[k] = part_vals.get(pred[1]);
    msg.let.z[k] = part_vals.get(pred[2]);
    msg.let.m[k] = part_vals.get(pred[3]);
  }
  r.done();

  // The patched tree gets the same traversal-safety validation a full frame
  // gets, before it can be walked or cached.
  for (std::size_t i = 0; i < num_nodes; ++i)
    validate_node(nodes[i], i, num_nodes, num_parts);
  msg.let.nodes = std::move(nodes);

  // Patch validated: commit the pair's new state. Nothing above mutated the
  // cache, so a thrown WireError leaves it exactly as it was.
  advance_let_cache(cache, msg.let, nmatch, pmatch);
  ++cache.version;
  if constexpr (kDcheckEnabled) cache.check_consistency();
  return msg;
}

std::vector<std::uint8_t> encode_particles(int src, const ParticleSet& parts,
                                           bool with_forces) {
  Writer w(FrameType::kParticles);
  put_particle_payload(w, src, parts, with_forces);
  return w.finish();
}

ParticleBatch decode_particles(std::span<const std::uint8_t> frame) {
  Reader r = open_frame(frame, FrameType::kParticles);
  ParticleBatch batch = read_particle_payload(r);
  r.done();
  return batch;
}

std::vector<std::uint8_t> encode_hello(int rank, std::uint16_t listen_port) {
  Writer w(FrameType::kHello);
  w.i32(rank);
  w.u16(listen_port);
  return w.finish();
}

Hello decode_hello(std::span<const std::uint8_t> frame) {
  Reader r = open_frame(frame, FrameType::kHello);
  Hello h;
  h.rank = r.i32();
  h.listen_port = r.u16();
  r.done();
  return h;
}

std::vector<std::uint8_t> encode_peer_directory(std::span<const PeerEndpoint> peers) {
  Writer w(FrameType::kPeerDirectory);
  w.u32(static_cast<std::uint32_t>(peers.size()));
  for (const PeerEndpoint& p : peers) {
    w.u16(p.port);
    w.u32(static_cast<std::uint32_t>(p.host.size()));
    for (const char c : p.host) w.u8(static_cast<std::uint8_t>(c));
  }
  return w.finish();
}

std::vector<PeerEndpoint> decode_peer_directory(std::span<const std::uint8_t> frame) {
  Reader r = open_frame(frame, FrameType::kPeerDirectory);
  const std::size_t n =
      r.array_count(r.u32(), 2 + 4, "directory entry count exceeds payload");
  r.require(n >= 1 && n <= 255, "directory rank count out of range");
  std::vector<PeerEndpoint> peers(n);
  for (PeerEndpoint& p : peers) {
    p.port = r.u16();
    const std::size_t len = r.array_count(r.u32(), 1, "directory host exceeds payload");
    p.host.resize(len);
    for (char& c : p.host) c = static_cast<char>(r.u8());
  }
  r.done();
  return peers;
}

std::vector<std::uint8_t> encode_peer_hello(int rank) {
  Writer w(FrameType::kPeerHello);
  w.i32(rank);
  return w.finish();
}

int decode_peer_hello(std::span<const std::uint8_t> frame) {
  Reader r = open_frame(frame, FrameType::kPeerHello);
  const int rank = r.i32();
  r.done();
  return rank;
}

std::vector<std::uint8_t> encode_config(const SimConfig& cfg) {
  Writer w(FrameType::kConfig);
  w.i32(cfg.nranks);
  w.f64(cfg.theta);
  w.f64(cfg.eps);
  w.i32(cfg.nleaf);
  w.i32(cfg.ncrit);
  w.u8(cfg.quadrupole ? 1 : 0);
  w.f64(cfg.dt);
  w.u8(cfg.curve == sfc::CurveType::kMorton ? 1 : 0);
  w.u64(cfg.samples_per_rank);
  w.i32(cfg.snap_level);
  w.u8(cfg.balance == BalanceMode::kCost ? 1 : 0);
  w.u8(cfg.trace ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(cfg.kernel));
  w.u8(cfg.let_cache ? 1 : 0);
  w.f64(cfg.let_churn);
  return w.finish();
}

SimConfig decode_config(std::span<const std::uint8_t> frame) {
  Reader r = open_frame(frame, FrameType::kConfig);
  SimConfig cfg;
  cfg.nranks = r.i32();
  cfg.theta = r.f64();
  cfg.eps = r.f64();
  cfg.nleaf = r.i32();
  cfg.ncrit = r.i32();
  cfg.quadrupole = r.u8() != 0;
  cfg.dt = r.f64();
  cfg.curve = r.u8() != 0 ? sfc::CurveType::kMorton : sfc::CurveType::kHilbert;
  cfg.samples_per_rank = r.u64();
  cfg.snap_level = r.i32();
  cfg.balance = r.u8() != 0 ? BalanceMode::kCost : BalanceMode::kCount;
  cfg.trace = r.u8() != 0;
  const std::uint8_t kernel = r.u8();
  r.require(kernel <= static_cast<std::uint8_t>(KernelBackend::kSimdFloat),
            "config kernel backend out of range");
  cfg.kernel = static_cast<KernelBackend>(kernel);
  const std::uint8_t let_cache = r.u8();
  r.require(let_cache <= 1, "unknown config let-cache flag");
  cfg.let_cache = let_cache != 0;
  cfg.let_churn = r.f64();
  r.done();
  r.require(cfg.nranks >= 1 && cfg.nranks <= 255, "config rank count out of range");
  return cfg;
}

std::vector<std::uint8_t> encode_step_begin(const StepBegin& sb) {
  BNS_CHECK(sb.active.size() == sb.boxes.size());
  Writer w(FrameType::kStepBegin);
  w.i32(sb.step);
  w.u8(static_cast<std::uint8_t>(sb.mode));
  w.aabb(sb.bounds);
  w.u32(static_cast<std::uint32_t>(sb.active.size()));
  for (const std::uint8_t a : sb.active) w.u8(a != 0 ? 1 : 0);
  for (const AABB& b : sb.boxes) w.aabb(b);
  put_particle_payload(w, -1, sb.parts, /*with_forces=*/false);
  return w.finish();
}

StepBegin decode_step_begin(std::span<const std::uint8_t> frame) {
  Reader r = open_frame(frame, FrameType::kStepBegin);
  StepBegin sb;
  sb.step = r.i32();
  const std::uint8_t mode = r.u8();
  r.require(mode <= static_cast<std::uint8_t>(StepMode::kCollect), "unknown step mode");
  sb.mode = static_cast<StepMode>(mode);
  sb.bounds = r.aabb();
  const std::size_t nranks =
      r.array_count(r.u32(), 1 + 6 * 8, "rank count exceeds payload");
  sb.active.resize(nranks);
  for (std::uint8_t& a : sb.active) a = r.u8();
  sb.boxes.resize(nranks);
  for (AABB& b : sb.boxes) b = r.aabb();
  ParticleBatch batch = read_particle_payload(r);
  r.require(!batch.with_forces, "step-begin batch must not carry forces");
  sb.parts = std::move(batch.parts);
  r.done();
  return sb;
}

std::vector<std::uint8_t> encode_boundaries(const Boundaries& b) {
  Writer w(FrameType::kBoundaries);
  w.i32(b.src);
  w.i32(b.step);
  w.u8(b.post_migration ? 1 : 0);
  w.u64(b.count);
  w.aabb(b.box);
  w.f64(b.weight);
  return w.finish();
}

Boundaries decode_boundaries(std::span<const std::uint8_t> frame) {
  Reader r = open_frame(frame, FrameType::kBoundaries);
  Boundaries b;
  b.src = r.i32();
  b.step = r.i32();
  const std::uint8_t phase = r.u8();
  r.require(phase <= 1, "unknown boundaries phase");
  b.post_migration = phase != 0;
  b.count = r.u64();
  b.box = r.aabb();
  b.weight = r.f64();
  r.done();
  return b;
}

std::vector<std::uint8_t> encode_key_samples(const KeySamples& ks) {
  Writer w(FrameType::kKeySamples);
  w.i32(ks.src);
  w.i32(ks.step);
  w.u64(ks.keys.size());
  w.u64_span(ks.keys);
  return w.finish();
}

KeySamples decode_key_samples(std::span<const std::uint8_t> frame) {
  Reader r = open_frame(frame, FrameType::kKeySamples);
  KeySamples ks;
  ks.src = r.i32();
  ks.step = r.i32();
  const std::size_t n = r.array_count(r.u64(), 8, "sample count exceeds payload");
  ks.keys.resize(n);
  r.u64_span(ks.keys);
  r.done();
  return ks;
}

std::vector<std::uint8_t> encode_migration(int src, int step, const ParticleSet& parts) {
  Writer w(FrameType::kMigration);
  w.i32(step);
  put_particle_payload(w, src, parts, /*with_forces=*/false);
  return w.finish();
}

MigrationMsg decode_migration(std::span<const std::uint8_t> frame) {
  Reader r = open_frame(frame, FrameType::kMigration);
  MigrationMsg msg;
  msg.step = r.i32();
  ParticleBatch batch = read_particle_payload(r);
  r.require(!batch.with_forces, "migration batches must travel force-free");
  msg.src = batch.src;
  msg.parts = std::move(batch.parts);
  r.done();
  return msg;
}

namespace {

void put_wire_stats(Writer& w, const WireStats& ws) {
  w.u64(ws.frames);
  w.u64(ws.bytes);
  w.f64(ws.encode_seconds);
  w.f64(ws.decode_seconds);
}

WireStats read_wire_stats(Reader& r) {
  WireStats ws;
  ws.frames = r.u64();
  ws.bytes = r.u64();
  ws.encode_seconds = r.f64();
  ws.decode_seconds = r.f64();
  return ws;
}

}  // namespace

namespace {

void put_interaction_stats(Writer& w, const InteractionStats& s) {
  w.u64(s.p2p);
  w.u64(s.p2c);
  w.u64(s.p2p_padded);
  w.u64(s.p2c_padded);
  w.u64(s.pp_batches);
  w.u64(s.pc_batches);
  for (std::size_t b = 0; b < kBatchHistBuckets; ++b) w.u64(s.batch_hist[b]);
}

InteractionStats read_interaction_stats(Reader& r) {
  InteractionStats s;
  s.p2p = r.u64();
  s.p2c = r.u64();
  s.p2p_padded = r.u64();
  s.p2c_padded = r.u64();
  s.pp_batches = r.u64();
  s.pc_batches = r.u64();
  for (std::size_t b = 0; b < kBatchHistBuckets; ++b) s.batch_hist[b] = r.u64();
  return s;
}

}  // namespace

std::vector<std::uint8_t> encode_step_result(const StepResult& sr) {
  Writer w(FrameType::kStepResult);
  w.i32(sr.rank);
  w.u64(sr.let_cells);
  w.u64(sr.let_particles);
  put_interaction_stats(w, sr.local_stats);
  put_interaction_stats(w, sr.remote_stats);
  w.u64(sr.migrated);
  w.u64(sr.local_count);
  w.f64(sr.kinetic);
  w.f64(sr.potential);
  w.u32(static_cast<std::uint32_t>(sr.times.entries().size()));
  for (const auto& e : sr.times.entries()) {
    w.u32(static_cast<std::uint32_t>(e.name.size()));
    for (const char c : e.name) w.u8(static_cast<std::uint8_t>(c));
    w.f64(e.seconds);
  }
  w.u32(static_cast<std::uint32_t>(sr.let_sizes.size()));
  for (const LetSizeSample& s : sr.let_sizes) {
    w.u64(s.cells);
    w.u64(s.particles);
    w.u64(s.bytes);
  }
  put_wire_stats(w, sr.let_wire);
  put_wire_stats(w, sr.part_wire);
  put_wire_stats(w, sr.dom_wire);
  w.u64(sr.let_delta.full_frames);
  w.u64(sr.let_delta.delta_frames);
  w.u64(sr.let_delta.bytes_saved);
  w.u64(sr.let_delta.cache_hits);
  w.u64(sr.let_delta.invalidations);
  w.u32(static_cast<std::uint32_t>(sr.boundaries.size()));
  w.u64_span(sr.boundaries);
  w.u32(static_cast<std::uint32_t>(sr.traffic.size()));
  for (const PeerTraffic& t : sr.traffic) {
    w.i32(t.src);
    w.i32(t.dst);
    w.u16(t.type);
    w.u64(t.frames);
    w.u64(t.bytes);
  }
  put_particle_payload(w, sr.rank, sr.parts, /*with_forces=*/true);
  return w.finish();
}

StepResult decode_step_result(std::span<const std::uint8_t> frame) {
  Reader r = open_frame(frame, FrameType::kStepResult);
  StepResult sr;
  sr.rank = r.i32();
  sr.let_cells = r.u64();
  sr.let_particles = r.u64();
  sr.local_stats = read_interaction_stats(r);
  sr.remote_stats = read_interaction_stats(r);
  sr.migrated = r.u64();
  sr.local_count = r.u64();
  sr.kinetic = r.f64();
  sr.potential = r.f64();
  const std::size_t ntimes = r.array_count(r.u32(), 4 + 8, "timing count exceeds payload");
  for (std::size_t i = 0; i < ntimes; ++i) {
    const std::size_t len = r.array_count(r.u32(), 1, "timing name exceeds payload");
    std::string name(len, '\0');
    for (char& c : name) c = static_cast<char>(r.u8());
    sr.times.add(name, r.f64());
  }
  const std::size_t nsizes = r.array_count(r.u32(), 3 * 8, "LET size count exceeds payload");
  sr.let_sizes.resize(nsizes);
  for (LetSizeSample& s : sr.let_sizes) {
    s.cells = r.u64();
    s.particles = r.u64();
    s.bytes = r.u64();
  }
  sr.let_wire = read_wire_stats(r);
  sr.part_wire = read_wire_stats(r);
  sr.dom_wire = read_wire_stats(r);
  sr.let_delta.full_frames = r.u64();
  sr.let_delta.delta_frames = r.u64();
  sr.let_delta.bytes_saved = r.u64();
  sr.let_delta.cache_hits = r.u64();
  sr.let_delta.invalidations = r.u64();
  const std::size_t nbounds = r.array_count(r.u32(), 8, "boundary count exceeds payload");
  sr.boundaries.resize(nbounds);
  r.u64_span(sr.boundaries);
  const std::size_t ntraffic =
      r.array_count(r.u32(), 4 + 4 + 2 + 8 + 8, "traffic count exceeds payload");
  sr.traffic.resize(ntraffic);
  for (PeerTraffic& t : sr.traffic) {
    t.src = r.i32();
    t.dst = r.i32();
    t.type = r.u16();
    t.frames = r.u64();
    t.bytes = r.u64();
  }
  ParticleBatch batch = read_particle_payload(r);
  r.require(batch.with_forces, "step-result batch must carry forces");
  sr.parts = std::move(batch.parts);
  r.done();
  return sr;
}

namespace {

void put_string(Writer& w, const std::string& s) {
  w.u32(static_cast<std::uint32_t>(s.size()));
  for (const char c : s) w.u8(static_cast<std::uint8_t>(c));
}

std::string read_string(Reader& r, const char* what) {
  const std::size_t len = r.array_count(r.u32(), 1, what);
  std::string s(len, '\0');
  for (char& c : s) c = static_cast<char>(r.u8());
  return s;
}

void put_i64(Writer& w, std::int64_t v) { w.u64(static_cast<std::uint64_t>(v)); }
std::int64_t read_i64(Reader& r) { return static_cast<std::int64_t>(r.u64()); }

// Minimum wire footprint of one span: name length prefix + the fixed fields.
constexpr std::size_t kSpanMinBytes = 4 + 8 + 8 + 4 + 4 + 8 + 8 + 8;

void put_metrics(Writer& w, const metrics::Snapshot& m) {
  w.u32(static_cast<std::uint32_t>(m.counters.size()));
  for (const auto& [name, v] : m.counters) {
    put_string(w, name);
    w.f64(v);
  }
  w.u32(static_cast<std::uint32_t>(m.gauges.size()));
  for (const auto& [name, v] : m.gauges) {
    put_string(w, name);
    w.f64(v);
  }
  w.u32(static_cast<std::uint32_t>(m.histograms.size()));
  for (const auto& [name, h] : m.histograms) {
    BNS_CHECK(h.counts.size() == h.bounds.size() + 1);
    put_string(w, name);
    w.u32(static_cast<std::uint32_t>(h.bounds.size()));
    w.f64_span(h.bounds);
    w.u64_span(h.counts);
    w.u64(h.count);
    w.f64(h.sum);
  }
}

metrics::Snapshot read_metrics(Reader& r) {
  metrics::Snapshot m;
  const std::size_t ncounters =
      r.array_count(r.u32(), 4 + 8, "metric counter count exceeds payload");
  for (std::size_t i = 0; i < ncounters; ++i) {
    std::string name = read_string(r, "metric name exceeds payload");
    m.counters[std::move(name)] = r.f64();
  }
  const std::size_t ngauges =
      r.array_count(r.u32(), 4 + 8, "metric gauge count exceeds payload");
  for (std::size_t i = 0; i < ngauges; ++i) {
    std::string name = read_string(r, "metric name exceeds payload");
    m.gauges[std::move(name)] = r.f64();
  }
  const std::size_t nhists =
      r.array_count(r.u32(), 4 + 4 + 8 + 8 + 8, "metric histogram count exceeds payload");
  for (std::size_t i = 0; i < nhists; ++i) {
    std::string name = read_string(r, "metric name exceeds payload");
    metrics::HistogramData h;
    const std::size_t nbounds =
        r.array_count(r.u32(), 8 + 8, "histogram bound count exceeds payload");
    h.bounds.resize(nbounds);
    r.f64_span(h.bounds);
    h.counts.resize(nbounds + 1);
    r.u64_span(h.counts);
    h.count = r.u64();
    h.sum = r.f64();
    m.histograms.emplace(std::move(name), std::move(h));
  }
  return m;
}

}  // namespace

std::vector<std::uint8_t> encode_trace(const TraceFrame& tf) {
  Writer w(FrameType::kTrace);
  w.i32(tf.src);
  w.i32(tf.step);
  put_i64(w, tf.recv_ns);
  put_i64(w, tf.send_ns);
  w.u32(static_cast<std::uint32_t>(tf.spans.size()));
  for (const trace::Span& s : tf.spans) {
    put_string(w, s.name);
    put_i64(w, s.begin_ns);
    put_i64(w, s.end_ns);
    w.i32(s.rank);
    w.i32(s.lane);
    put_i64(w, s.step);
    put_i64(w, s.peer);
    put_i64(w, s.bytes);
  }
  put_metrics(w, tf.metrics);
  return w.finish();
}

TraceFrame decode_trace(std::span<const std::uint8_t> frame) {
  Reader r = open_frame(frame, FrameType::kTrace);
  TraceFrame tf;
  tf.src = r.i32();
  tf.step = r.i32();
  tf.recv_ns = read_i64(r);
  tf.send_ns = read_i64(r);
  const std::size_t nspans =
      r.array_count(r.u32(), kSpanMinBytes, "span count exceeds payload");
  tf.spans.resize(nspans);
  for (trace::Span& s : tf.spans) {
    s.name = read_string(r, "span name exceeds payload");
    s.begin_ns = read_i64(r);
    s.end_ns = read_i64(r);
    s.rank = r.i32();
    s.lane = r.i32();
    s.step = read_i64(r);
    s.peer = read_i64(r);
    s.bytes = read_i64(r);
    r.require(s.end_ns >= s.begin_ns, "span ends before it begins");
  }
  tf.metrics = read_metrics(r);
  r.done();
  return tf;
}

std::vector<std::uint8_t> encode_shutdown() { return Writer(FrameType::kShutdown).finish(); }

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kSuspended: return "suspended";
    case JobState::kCompleted: return "completed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kFailed: return "failed";
    case JobState::kRejected: return "rejected";
  }
  return "unknown";
}

namespace {

JobState read_job_state(Reader& r) {
  const std::uint8_t state = r.u8();
  r.require(state <= static_cast<std::uint8_t>(JobState::kRejected),
            "unknown job state");
  return static_cast<JobState>(state);
}

}  // namespace

std::vector<std::uint8_t> encode_job_submit(const JobSpec& spec) {
  Writer w(FrameType::kJobSubmit);
  put_string(w, spec.name);
  w.u64(spec.n);
  w.u64(spec.seed);
  w.i32(spec.steps);
  w.i32(spec.ranks);
  w.i32(spec.priority);
  w.f64(spec.theta);
  w.f64(spec.eps);
  w.f64(spec.dt);
  w.u8(static_cast<std::uint8_t>(spec.kernel));
  put_particle_payload(w, -1, spec.parts, /*with_forces=*/false);
  return w.finish();
}

JobSpec decode_job_submit(std::span<const std::uint8_t> frame) {
  Reader r = open_frame(frame, FrameType::kJobSubmit);
  JobSpec spec;
  spec.name = read_string(r, "job name exceeds payload");
  spec.n = r.u64();
  spec.seed = r.u64();
  spec.steps = r.i32();
  spec.ranks = r.i32();
  spec.priority = r.i32();
  spec.theta = r.f64();
  spec.eps = r.f64();
  spec.dt = r.f64();
  const std::uint8_t kernel = r.u8();
  r.require(kernel <= static_cast<std::uint8_t>(KernelBackend::kSimdFloat),
            "job kernel backend out of range");
  spec.kernel = static_cast<KernelBackend>(kernel);
  ParticleBatch batch = read_particle_payload(r);
  r.require(!batch.with_forces, "job initial condition must travel force-free");
  spec.parts = std::move(batch.parts);
  r.done();
  r.require(spec.steps >= 0, "job step count negative");
  r.require(spec.ranks >= 0 && spec.ranks <= 255, "job rank request out of range");
  return spec;
}

std::vector<std::uint8_t> encode_job_status(const JobStatusMsg& status) {
  Writer w(FrameType::kJobStatus);
  w.i32(status.job_id);
  w.u8(static_cast<std::uint8_t>(status.state));
  w.u8(status.wait ? 1 : 0);
  w.i32(status.steps_done);
  w.i32(status.steps_total);
  w.i32(status.ranks);
  w.i32(status.priority);
  w.u64(status.n);
  put_string(w, status.reason);
  return w.finish();
}

JobStatusMsg decode_job_status(std::span<const std::uint8_t> frame) {
  Reader r = open_frame(frame, FrameType::kJobStatus);
  JobStatusMsg status;
  status.job_id = r.i32();
  status.state = read_job_state(r);
  const std::uint8_t wait = r.u8();
  r.require(wait <= 1, "unknown job status flags");
  status.wait = wait != 0;
  status.steps_done = r.i32();
  status.steps_total = r.i32();
  status.ranks = r.i32();
  status.priority = r.i32();
  status.n = r.u64();
  status.reason = read_string(r, "job status reason exceeds payload");
  r.done();
  return status;
}

std::vector<std::uint8_t> encode_job_result(const JobResultMsg& result) {
  Writer w(FrameType::kJobResult);
  w.i32(result.job_id);
  w.u8(static_cast<std::uint8_t>(result.state));
  w.i32(result.steps_done);
  w.f64(result.kinetic);
  w.f64(result.potential);
  put_string(w, result.reason);
  put_particle_payload(w, -1, result.parts, /*with_forces=*/true);
  return w.finish();
}

JobResultMsg decode_job_result(std::span<const std::uint8_t> frame) {
  Reader r = open_frame(frame, FrameType::kJobResult);
  JobResultMsg result;
  result.job_id = r.i32();
  result.state = read_job_state(r);
  result.steps_done = r.i32();
  result.kinetic = r.f64();
  result.potential = r.f64();
  result.reason = read_string(r, "job result reason exceeds payload");
  ParticleBatch batch = read_particle_payload(r);
  r.require(batch.with_forces, "job result batch must carry forces");
  result.parts = std::move(batch.parts);
  r.done();
  return result;
}

std::vector<std::uint8_t> encode_job_cancel(std::int32_t job_id) {
  Writer w(FrameType::kJobCancel);
  w.i32(job_id);
  return w.finish();
}

std::int32_t decode_job_cancel(std::span<const std::uint8_t> frame) {
  Reader r = open_frame(frame, FrameType::kJobCancel);
  const std::int32_t job_id = r.i32();
  r.done();
  return job_id;
}

std::vector<std::uint8_t> encode_snapshot(const SnapshotMsg& snap) {
  Writer w(FrameType::kSnapshot);
  w.i32(snap.job_id);
  w.i32(snap.next_step);
  w.u32(static_cast<std::uint32_t>(snap.sets.size()));
  for (std::size_t r = 0; r < snap.sets.size(); ++r)
    put_particle_payload(w, static_cast<int>(r), snap.sets[r], /*with_forces=*/true);
  return w.finish();
}

SnapshotMsg decode_snapshot(std::span<const std::uint8_t> frame) {
  Reader r = open_frame(frame, FrameType::kSnapshot);
  SnapshotMsg snap;
  snap.job_id = r.i32();
  snap.next_step = r.i32();
  // Minimum per-set footprint: the particle payload prologue (src + flags +
  // count) of an empty set.
  const std::size_t nsets =
      r.array_count(r.u32(), 4 + 1 + 8, "snapshot set count exceeds payload");
  r.require(nsets <= 255, "snapshot rank count out of range");
  snap.sets.reserve(nsets);
  for (std::size_t i = 0; i < nsets; ++i) {
    ParticleBatch batch = read_particle_payload(r);
    r.require(batch.with_forces, "snapshot sets must carry forces");
    snap.sets.push_back(std::move(batch.parts));
  }
  r.done();
  return snap;
}

std::vector<std::uint8_t> encode_metrics_query() {
  return Writer(FrameType::kMetricsQuery).finish();
}

std::vector<std::uint8_t> encode_metrics_report(const metrics::Snapshot& snapshot) {
  Writer w(FrameType::kMetricsReport);
  put_metrics(w, snapshot);
  return w.finish();
}

metrics::Snapshot decode_metrics_report(std::span<const std::uint8_t> frame) {
  Reader r = open_frame(frame, FrameType::kMetricsReport);
  metrics::Snapshot m = read_metrics(r);
  r.done();
  return m;
}

}  // namespace bonsai::domain::wire
