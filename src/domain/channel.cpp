#include "domain/channel.hpp"

#include <algorithm>

#include "domain/transport.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace bonsai::domain {

LetExchange::LetExchange(Transport& transport, const std::vector<std::uint8_t>& active,
                         LetChannelState* state)
    : transport_(transport), state_(state) {
  const std::size_t nranks = active.size();
  BNS_CHECK(state == nullptr ||
               state->nranks == static_cast<int>(nranks));
  const auto num_active = static_cast<std::size_t>(
      std::count_if(active.begin(), active.end(), [](std::uint8_t a) { return a != 0; }));
  remaining_.reserve(nranks);
  for (std::size_t r = 0; r < nranks; ++r)
    remaining_.push_back(active[r] && num_active > 0 ? num_active - 1 : 0);
  encode_.resize(nranks);
  decode_.resize(nranks);
  delta_.resize(nranks);
}

std::size_t LetExchange::remaining(int dst) const {
  return remaining_[static_cast<std::size_t>(dst)];
}

std::size_t LetExchange::post(int src, int dst, const LetTree& let, double export_seconds) {
  BNS_CHECK(src != dst);
  trace::ScopedSpan span("wire.encode.let", src, src);
  span.set_peer(dst);
  WallTimer timer;
  std::vector<std::uint8_t> frame;
  if (state_ != nullptr && state_->enabled) {
    wire::LetEncodeResult res = wire::encode_let_cached(
        {src, let, export_seconds, /*wire_bytes=*/0}, state_->send_entry(src, dst),
        state_->churn_ratio, &state_->scratch[static_cast<std::size_t>(src)]);
    frame = std::move(res.frame);
    wire::LetDeltaStats& ds = delta_[static_cast<std::size_t>(src)];
    if (res.is_delta) {
      ds.delta_frames += 1;
      ds.bytes_saved += res.full_bytes - frame.size();
    } else {
      ds.full_frames += 1;
    }
  } else if (state_ != nullptr) {
    frame = wire::encode_let_scratch({src, let, export_seconds, /*wire_bytes=*/0},
                                     state_->scratch[static_cast<std::size_t>(src)]);
  } else {
    frame = wire::encode_let({src, let, export_seconds, /*wire_bytes=*/0});
  }
  const std::size_t bytes = frame.size();
  span.set_bytes(static_cast<std::int64_t>(bytes));
  wire::WireStats& ws = encode_[static_cast<std::size_t>(src)];
  ws.frames += 1;
  ws.bytes += bytes;
  ws.encode_seconds += timer.elapsed();
  transport_.post(src, dst, std::move(frame));
  return bytes;
}

std::optional<wire::LetMessage> LetExchange::recv(int dst) {
  std::size_t& remaining = remaining_[static_cast<std::size_t>(dst)];
  if (remaining == 0) return std::nullopt;
  std::optional<std::vector<std::uint8_t>> frame;
  {
    trace::ScopedSpan wait("let.recv.wait", dst, dst);
    frame = transport_.recv(dst);
  }
  BNS_CHECK(frame.has_value(), "LET endpoint closed before all expected arrivals");
  trace::ScopedSpan span("wire.decode.let", dst, dst);
  span.set_bytes(static_cast<std::int64_t>(frame->size()));
  WallTimer timer;
  wire::LetMessage msg;
  if (state_ != nullptr && state_->enabled) {
    const int src = wire::peek_let_src(*frame);
    BNS_CHECK(src >= 0 && src < num_ranks() && src != dst,
                     "LET frame from an invalid source rank");
    wire::LetCacheEntry& entry = state_->recv_entry(dst, src);
    const bool had_cache = entry.version != 0;
    const bool is_delta = wire::frame_type(*frame) == wire::FrameType::kLetDelta;
    msg = wire::decode_let_cached(*frame, entry);
    wire::LetDeltaStats& ds = delta_[static_cast<std::size_t>(dst)];
    if (is_delta)
      ds.cache_hits += 1;
    else if (had_cache)
      ds.invalidations += 1;
  } else {
    msg = wire::decode_let(*frame);
  }
  span.set_peer(msg.src);
  decode_[static_cast<std::size_t>(dst)].decode_seconds += timer.elapsed();
  --remaining;
  return msg;
}

void LetExchange::close(int dst) { transport_.close(dst); }

const wire::WireStats& LetExchange::encode_stats(int r) const {
  return encode_[static_cast<std::size_t>(r)];
}

const wire::WireStats& LetExchange::decode_stats(int r) const {
  return decode_[static_cast<std::size_t>(r)];
}

const wire::LetDeltaStats& LetExchange::delta_stats(int r) const {
  return delta_[static_cast<std::size_t>(r)];
}

MigrationExchange::MigrationExchange(Transport& transport, int nranks)
    : transport_(transport) {
  BNS_CHECK(nranks >= 1);
  remaining_.assign(static_cast<std::size_t>(nranks),
                    static_cast<std::size_t>(nranks - 1));
  encode_.resize(static_cast<std::size_t>(nranks));
  decode_.resize(static_cast<std::size_t>(nranks));
}

std::size_t MigrationExchange::remaining(int dst) const {
  return remaining_[static_cast<std::size_t>(dst)];
}

std::size_t MigrationExchange::post(int src, int dst, const ParticleSet& parts, int step) {
  BNS_CHECK(src != dst);
  trace::ScopedSpan span("wire.encode.migration", src, src, step);
  span.set_peer(dst);
  WallTimer timer;
  std::vector<std::uint8_t> frame = wire::encode_migration(src, step, parts);
  const std::size_t bytes = frame.size();
  span.set_bytes(static_cast<std::int64_t>(bytes));
  wire::WireStats& ws = encode_[static_cast<std::size_t>(src)];
  ws.frames += 1;
  ws.bytes += bytes;
  ws.encode_seconds += timer.elapsed();
  transport_.post(src, dst, std::move(frame));
  return bytes;
}

std::optional<wire::MigrationMsg> MigrationExchange::recv(int dst, int step) {
  std::size_t& remaining = remaining_[static_cast<std::size_t>(dst)];
  if (remaining == 0) return std::nullopt;
  std::optional<std::vector<std::uint8_t>> frame;
  {
    trace::ScopedSpan wait("migration.recv.wait", dst, dst, step);
    frame = transport_.recv(dst);
  }
  BNS_CHECK(frame.has_value(),
                   "migration endpoint closed before all expected batches");
  trace::ScopedSpan span("wire.decode.migration", dst, dst, step);
  span.set_bytes(static_cast<std::int64_t>(frame->size()));
  WallTimer timer;
  wire::MigrationMsg msg = wire::decode_migration(*frame);
  span.set_peer(msg.src);
  decode_[static_cast<std::size_t>(dst)].decode_seconds += timer.elapsed();
  BNS_CHECK(msg.step == step, "migration batch from a different step");
  --remaining;
  return msg;
}

const wire::WireStats& MigrationExchange::encode_stats(int r) const {
  return encode_[static_cast<std::size_t>(r)];
}

const wire::WireStats& MigrationExchange::decode_stats(int r) const {
  return decode_[static_cast<std::size_t>(r)];
}

}  // namespace bonsai::domain
