#include "domain/channel.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace bonsai::domain {

LetExchange::LetExchange(const std::vector<std::uint8_t>& active) {
  const std::size_t nranks = active.size();
  const auto num_active = static_cast<std::size_t>(
      std::count_if(active.begin(), active.end(), [](std::uint8_t a) { return a != 0; }));
  mailboxes_.reserve(nranks);
  remaining_.reserve(nranks);
  for (std::size_t r = 0; r < nranks; ++r) {
    mailboxes_.push_back(std::make_unique<Channel<LetMessage>>());
    remaining_.push_back(active[r] && num_active > 0 ? num_active - 1 : 0);
  }
}

std::size_t LetExchange::remaining(int dst) const {
  return remaining_[static_cast<std::size_t>(dst)];
}

void LetExchange::post(int src, int dst, LetTree let, double export_seconds) {
  BONSAI_CHECK(src != dst);
  mailboxes_[static_cast<std::size_t>(dst)]->send({src, std::move(let), export_seconds});
}

void LetExchange::close(int dst) {
  mailboxes_[static_cast<std::size_t>(dst)]->close();
}

std::optional<LetMessage> LetExchange::recv(int dst) {
  std::size_t& remaining = remaining_[static_cast<std::size_t>(dst)];
  if (remaining == 0) return std::nullopt;
  std::optional<LetMessage> msg = mailboxes_[static_cast<std::size_t>(dst)]->recv();
  BONSAI_CHECK_MSG(msg.has_value(), "LET mailbox closed before all expected arrivals");
  --remaining;
  return msg;
}

}  // namespace bonsai::domain
