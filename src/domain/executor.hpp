// Per-rank executor: one persistent driver thread per rank ("lane"), the
// in-process analogue of one MPI process' host thread. Each lane runs its
// rank's whole step pipeline — sort → build → LET export → local gravity →
// per-arrival remote gravity — so ranks proceed independently and only meet
// at the step boundary, where the Simulation collects the lanes' completion
// futures. Lanes are single-thread ThreadPools: the heavy stage work still
// runs on each rank's own Device pool, the lane thread just drives it (and
// blocks in the LET mailbox while other ranks compute).
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <vector>

#include "device/thread_pool.hpp"

namespace bonsai::domain {

class Executor {
 public:
  explicit Executor(std::size_t num_lanes);

  std::size_t num_lanes() const { return lanes_.size(); }

  // Enqueue a job on one lane; jobs on the same lane run in submission order.
  // The future becomes ready when the job returns.
  std::future<void> run(std::size_t lane, std::function<void()> job);

 private:
  std::vector<std::unique_ptr<ThreadPool>> lanes_;
};

}  // namespace bonsai::domain
