#include "domain/metrics.hpp"

#include <cmath>
#include <ostream>
#include <stdexcept>

namespace bonsai::metrics {

void merge(Snapshot& into, const Snapshot& from) {
  for (const auto& [name, v] : from.counters) into.counters[name] += v;
  for (const auto& [name, v] : from.gauges) into.gauges[name] = v;
  for (const auto& [name, h] : from.histograms) {
    auto it = into.histograms.find(name);
    if (it == into.histograms.end()) {
      into.histograms.emplace(name, h);
      continue;
    }
    HistogramData& dst = it->second;
    if (dst.bounds != h.bounds)
      throw std::runtime_error("metrics: histogram bounds mismatch for " +
                               name);
    for (std::size_t i = 0; i < dst.counts.size(); ++i)
      dst.counts[i] += h.counts[i];
    dst.count += h.count;
    dst.sum += h.sum;
  }
}

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

template <typename Map, typename WriteValue>
void write_map(std::ostream& os, const Map& map, WriteValue write_value) {
  os << '{';
  bool first = true;
  for (const auto& [name, v] : map) {
    if (!first) os << ',';
    first = false;
    write_escaped(os, name);
    os << ':';
    write_value(v);
  }
  os << '}';
}

}  // namespace

void to_json(std::ostream& os, const Snapshot& snapshot) {
  auto number = [&os](double v) {
    if (std::isfinite(v)) os << v; else os << "null";
  };
  os << "{\"counters\":";
  write_map(os, snapshot.counters, number);
  os << ",\"gauges\":";
  write_map(os, snapshot.gauges, number);
  os << ",\"histograms\":";
  write_map(os, snapshot.histograms, [&](const HistogramData& h) {
    os << "{\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i) os << ',';
      number(h.bounds[i]);
    }
    os << "],\"counts\":[";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i) os << ',';
      os << h.counts[i];
    }
    os << "],\"count\":" << h.count << ",\"sum\":";
    number(h.sum);
    os << '}';
  });
  os << '}';
}

std::vector<double> pow2_bounds(int lo_exp, int hi_exp) {
  std::vector<double> bounds;
  for (int e = lo_exp; e <= hi_exp; ++e)
    bounds.push_back(std::ldexp(1.0, e));
  return bounds;
}

void Registry::add_counter(const std::string& name, double delta) {
  std::lock_guard lock(mutex_);
  data_.counters[name] += delta;
}

void Registry::set_gauge(const std::string& name, double value) {
  std::lock_guard lock(mutex_);
  data_.gauges[name] = value;
}

void Registry::observe(const std::string& name,
                       const std::vector<double>& bounds, double value) {
  std::lock_guard lock(mutex_);
  auto it = data_.histograms.find(name);
  if (it == data_.histograms.end()) {
    HistogramData h;
    h.bounds = bounds;
    h.counts.assign(bounds.size() + 1, 0);
    it = data_.histograms.emplace(name, std::move(h)).first;
  }
  HistogramData& h = it->second;
  std::size_t b = 0;
  while (b < h.bounds.size() && value > h.bounds[b]) ++b;
  ++h.counts[b];
  ++h.count;
  h.sum += value;
}

Snapshot Registry::snapshot() const {
  std::lock_guard lock(mutex_);
  return data_;
}

Snapshot Registry::take() {
  std::lock_guard lock(mutex_);
  Snapshot out = std::move(data_);
  data_ = Snapshot{};
  return out;
}

void Registry::clear() {
  std::lock_guard lock(mutex_);
  data_ = Snapshot{};
}

}  // namespace bonsai::metrics
