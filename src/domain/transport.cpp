#include "domain/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "util/check.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace bonsai::domain {

namespace {

// Routing header preceding every frame on a socket: src, dst, frame length.
constexpr std::size_t kRouteBytes = 16;

// Upper bound on a single routed frame; larger lengths are treated as stream
// corruption (a 63-bit length from garbage bytes must not drive a resize).
constexpr std::uint64_t kMaxFrameBytes = std::uint64_t{1} << 31;

void put_le32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void put_le64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t get_le32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

// What ended a blocking read: a clean stream end (the peer shut down in an
// orderly way, exactly at a message boundary for the caller that reads
// headers), a mid-read truncation, or a socket error. Callers turn these
// into distinct messages — "peer N closed connection" is a teardown, an
// errno string is a fault — instead of one lumped "connection lost".
enum class ReadStatus { kOk, kClosedClean, kClosedMidRead, kError };

ReadStatus read_exact(int fd, std::uint8_t* buf, std::size_t n, int* err) {
  const std::size_t want = n;
  while (n > 0) {
    const ssize_t got = ::recv(fd, buf, n, 0);
    if (got == 0) return n == want ? ReadStatus::kClosedClean : ReadStatus::kClosedMidRead;
    if (got < 0) {
      if (errno == EINTR) continue;
      if (err) *err = errno;
      return ReadStatus::kError;
    }
    buf += got;
    n -= static_cast<std::size_t>(got);
  }
  return ReadStatus::kOk;
}

// Legacy shape for the handshake paths that only need pass/fail.
bool read_exact(int fd, std::uint8_t* buf, std::size_t n) {
  return read_exact(fd, buf, n, nullptr) == ReadStatus::kOk;
}

void write_exact(int fd, const std::uint8_t* buf, std::size_t n) {
  while (n > 0) {
    const ssize_t put = ::send(fd, buf, n, MSG_NOSIGNAL);
    if (put <= 0) {
      if (put < 0 && errno == EINTR) continue;
      if (put < 0 && errno == EPIPE)
        throw std::runtime_error("peer closed connection");
      throw std::runtime_error(put < 0 ? std::strerror(errno) : "send returned 0");
    }
    buf += put;
    n -= static_cast<std::size_t>(put);
  }
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void set_recv_timeout(int fd, int seconds) {
  timeval tv{seconds, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

sockaddr_in loopback_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error("SocketTransport: bad address: " + host);
  return addr;
}

// Bind + listen a CLOEXEC TCP socket on 127.0.0.1:`port` (0: ephemeral);
// returns the fd and writes the bound port back.
int bind_listener(std::uint16_t& port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw std::runtime_error("SocketTransport: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr("127.0.0.1", port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw std::runtime_error("SocketTransport: bind to port " + std::to_string(port) +
                             " failed");
  }
  if (::listen(fd, backlog) != 0) {
    ::close(fd);
    throw std::runtime_error("SocketTransport: listen failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port = ntohs(addr.sin_port);
  return fd;
}

// Dial 127.0.0.1-style `host`:`port`, retrying for `attempts` * 100 ms so a
// peer that is a moment away from listening is reached, not declared dead.
int dial(const std::string& host, std::uint16_t port, int attempts) {
  const sockaddr_in addr = loopback_addr(host, port);
  int fd = -1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throw std::runtime_error("SocketTransport: socket() failed");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0)
      return fd;
    ::close(fd);
    fd = -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return -1;
}

// Read one routed frame (header + payload) synchronously, for the handshake
// paths that run before a reader thread exists. Throws `what` on any
// failure, including an SO_RCVTIMEO expiry.
std::vector<std::uint8_t> read_frame_sync(int fd, const char* what) {
  std::uint8_t route[kRouteBytes];
  if (!read_exact(fd, route, kRouteBytes))
    throw std::runtime_error(std::string("SocketTransport: ") + what);
  const std::uint64_t flen = get_le64(route + 8);
  if (flen > kMaxFrameBytes)
    throw std::runtime_error(std::string("SocketTransport: oversized frame while ") + what);
  std::vector<std::uint8_t> frame(static_cast<std::size_t>(flen));
  if (!read_exact(fd, frame.data(), frame.size()))
    throw std::runtime_error(std::string("SocketTransport: ") + what);
  return frame;
}

// Frame type at header bytes [6, 8) for accounting; 0 for raw payloads.
std::uint16_t peek_type(std::span<const std::uint8_t> frame) {
  return frame.size() >= wire::kHeaderBytes
             ? static_cast<std::uint16_t>(frame[6] | (std::uint16_t{frame[7]} << 8))
             : 0;
}

}  // namespace

// --- InProcTransport ---------------------------------------------------------

InProcTransport::InProcTransport(int nranks) {
  BNS_CHECK(nranks >= 1);
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r)
    mailboxes_.push_back(std::make_unique<Channel<std::vector<std::uint8_t>>>());
}

void InProcTransport::post(int src, int dst, std::vector<std::uint8_t> frame) {
  (void)src;
  BNS_CHECK(dst >= 0 && dst < num_ranks());
  mailboxes_[static_cast<std::size_t>(dst)]->send(std::move(frame));
}

std::optional<std::vector<std::uint8_t>> InProcTransport::recv(int dst) {
  BNS_CHECK(dst >= 0 && dst < num_ranks());
  return mailboxes_[static_cast<std::size_t>(dst)]->recv();
}

void InProcTransport::close(int dst) {
  BNS_CHECK(dst >= 0 && dst < num_ranks());
  mailboxes_[static_cast<std::size_t>(dst)]->close();
}

// --- TrafficRecordingTransport ----------------------------------------------

void TrafficRecordingTransport::post(int src, int dst, std::vector<std::uint8_t> frame) {
  // Locally produced frames always carry a full header, but stay defensive
  // for raw test payloads.
  trace::ScopedSpan span("transport.post", src, src);
  span.set_peer(dst);
  span.set_bytes(static_cast<std::int64_t>(frame.size()));
  record(src, dst, peek_type(frame), frame.size());
  inner_.post(src, dst, std::move(frame));
}

void TrafficRecordingTransport::record(int src, int dst, std::uint16_t type,
                                       std::uint64_t bytes) {
  std::lock_guard lock(mutex_);
  auto& cell = cells_[{src, dst, type}];
  cell.first += 1;
  cell.second += bytes;
}

std::vector<wire::PeerTraffic> TrafficRecordingTransport::take() {
  std::lock_guard lock(mutex_);
  std::vector<wire::PeerTraffic> out;
  out.reserve(cells_.size());
  for (const auto& [key, cell] : cells_)
    out.push_back({std::get<0>(key), std::get<1>(key), std::get<2>(key), cell.first,
                   cell.second});
  cells_.clear();
  return out;  // map iteration order == (src, dst, type) order
}

// --- SocketTransport ---------------------------------------------------------

struct SocketTransport::Peer {
  int fd = -1;
  int rank = kCoordinatorRank;    // remote endpoint on the other end of fd
  std::uint16_t listen_port = 0;  // coordinator: the worker's announced mesh port
  std::atomic<bool> dead{false};
  std::string error;  // first failure on this link; guarded by state_mutex_
  std::mutex write_mutex;
  std::thread reader;
};

std::string SocketTransport::peer_name(int rank) const {
  if (rank == kCoordinatorRank) return "coordinator";
  return (coordinator_ ? "worker " : "peer rank ") + std::to_string(rank);
}

SocketTransport::Peer& SocketTransport::add_peer(int fd, int rank) {
  auto peer = std::make_unique<Peer>();
  peer->fd = fd;
  peer->rank = rank;
  peers_.push_back(std::move(peer));
  return *peers_.back();
}

std::unique_ptr<SocketTransport> SocketTransport::listen(std::uint16_t port, int nworkers,
                                                         SocketTopology topology) {
  BNS_CHECK(nworkers >= 1);
  auto t = std::unique_ptr<SocketTransport>(new SocketTransport());
  t->coordinator_ = true;
  t->topology_ = topology;
  t->nworkers_ = nworkers;

  // CLOEXEC: spawned worker processes must not inherit the listening socket
  // (an orphaned worker would otherwise hold the port after the coordinator
  // dies).
  t->port_ = port;
  t->listen_fd_ = bind_listener(t->port_, nworkers);
  t->peers_.resize(static_cast<std::size_t>(nworkers));
  return t;
}

void SocketTransport::accept_workers(int timeout_ms,
                                     const std::function<bool()>& keep_waiting) {
  BNS_CHECK(coordinator_);
  WallTimer deadline;
  for (int i = 0; i < nworkers_; ++i) {
    // Poll in short slices so a deadline or a died-before-connecting worker
    // aborts the wait instead of hanging in accept() forever.
    for (;;) {
      if (timeout_ms > 0 && deadline.elapsed() * 1e3 > timeout_ms)
        throw std::runtime_error("SocketTransport: timed out waiting for workers (" +
                                 std::to_string(i) + "/" + std::to_string(nworkers_) +
                                 " connected)");
      if (keep_waiting && !keep_waiting())
        throw std::runtime_error("SocketTransport: a worker exited before connecting");
      pollfd pfd{listen_fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, 200);
      if (ready < 0 && errno != EINTR)
        throw std::runtime_error("SocketTransport: poll on listen socket failed");
      if (ready > 0) break;
    }
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) throw std::runtime_error("SocketTransport: accept failed");
    set_nodelay(fd);

    // The first routed frame on every worker connection is its Hello; a
    // connected-but-silent peer trips the receive timeout instead of
    // blocking the handshake forever.
    set_recv_timeout(fd, 30);
    const wire::Hello hello = wire::decode_hello(read_frame_sync(fd, "worker hello failed"));
    set_recv_timeout(fd, 0);  // back to blocking reads for the reader thread
    if (hello.rank < 0 || hello.rank >= nworkers_)
      throw std::runtime_error("SocketTransport: hello announced rank " +
                               std::to_string(hello.rank) + " outside [0, " +
                               std::to_string(nworkers_) + ")");
    if (topology_ == SocketTopology::kMesh && hello.listen_port == 0)
      throw std::runtime_error("SocketTransport: worker " + std::to_string(hello.rank) +
                               " announced no mesh listen port (star worker in a mesh "
                               "cluster?)");
    auto& slot = peers_[static_cast<std::size_t>(hello.rank)];
    if (slot) throw std::runtime_error("SocketTransport: duplicate worker rank " +
                                       std::to_string(hello.rank));
    slot = std::make_unique<Peer>();
    slot->fd = fd;
    slot->rank = hello.rank;
    slot->listen_port = hello.listen_port;
  }

  if (topology_ == SocketTopology::kMesh) {
    // Rendezvous complete: hand every worker the dialable directory before
    // any other frame (the cluster driver sends Config next).
    std::vector<wire::PeerEndpoint> dir(static_cast<std::size_t>(nworkers_));
    for (int r = 0; r < nworkers_; ++r)
      dir[static_cast<std::size_t>(r)] = {"127.0.0.1",
                                          peers_[static_cast<std::size_t>(r)]->listen_port};
    const std::vector<std::uint8_t> frame = wire::encode_peer_directory(dir);
    for (int r = 0; r < nworkers_; ++r)
      write_routed(*peers_[static_cast<std::size_t>(r)], kCoordinatorRank, r, frame);
  }
  for (auto& peer : peers_) start_reader(*peer);
}

std::unique_ptr<SocketTransport> SocketTransport::connect(const std::string& host,
                                                          std::uint16_t port, int rank) {
  BNS_CHECK(rank >= 0);
  auto t = std::unique_ptr<SocketTransport>(new SocketTransport());
  t->coordinator_ = false;
  t->topology_ = SocketTopology::kStar;
  t->local_rank_ = rank;
  t->port_ = port;

  // Brief retry window so externally-launched workers may start a moment
  // before the coordinator is listening.
  const int fd = dial(host, port, /*attempts=*/50);
  if (fd < 0)
    throw std::runtime_error("SocketTransport: cannot reach coordinator at " + host + ":" +
                             std::to_string(port));
  set_nodelay(fd);
  Peer& coord = t->add_peer(fd, kCoordinatorRank);
  t->write_routed(coord, rank, kCoordinatorRank, wire::encode_hello(rank));
  t->start_reader(coord);
  return t;
}

std::unique_ptr<SocketTransport> SocketTransport::connect_mesh(const std::string& host,
                                                               std::uint16_t port, int rank,
                                                               std::uint16_t listen_port) {
  BNS_CHECK(rank >= 0);
  auto t = std::unique_ptr<SocketTransport>(new SocketTransport());
  t->coordinator_ = false;
  t->topology_ = SocketTopology::kMesh;
  t->local_rank_ = rank;
  t->port_ = port;

  // Bind the own listener *before* announcing it: once the coordinator's
  // directory is out, any peer may dial at any moment.
  t->mesh_port_ = listen_port;
  t->listen_fd_ = bind_listener(t->mesh_port_, /*backlog=*/255);

  const int fd = dial(host, port, /*attempts=*/50);
  if (fd < 0)
    throw std::runtime_error("SocketTransport: cannot reach coordinator at " + host + ":" +
                             std::to_string(port));
  set_nodelay(fd);
  Peer& coord = t->add_peer(fd, kCoordinatorRank);
  t->write_routed(coord, rank, kCoordinatorRank, wire::encode_hello(rank, t->mesh_port_));

  // The directory is the first frame back on this link; read it here,
  // synchronously, before the reader thread takes the stream over. The
  // coordinator only sends it once *all* workers said hello, so the wait
  // covers the slowest externally-launched sibling, not just this link.
  set_recv_timeout(fd, 120);
  t->directory_ =
      wire::decode_peer_directory(read_frame_sync(fd, "coordinator sent no peer directory"));
  set_recv_timeout(fd, 0);
  t->nworkers_ = static_cast<int>(t->directory_.size());
  if (rank >= t->nworkers_)
    throw std::runtime_error("SocketTransport: rank " + std::to_string(rank) +
                             " outside the " + std::to_string(t->nworkers_) +
                             "-entry peer directory");
  t->mesh_link_.assign(static_cast<std::size_t>(t->nworkers_), nullptr);
  t->start_reader(coord);
  return t;
}

void SocketTransport::mesh_with_peers(int timeout_ms) {
  BNS_CHECK(!coordinator_ && topology_ == SocketTopology::kMesh,
                   "mesh_with_peers on a non-mesh endpoint");
  BNS_CHECK(!meshed_, "mesh already established");

  // Dial every higher-ranked peer; its listener was bound before its Hello,
  // so the connection lands in the backlog even if the peer is still busy.
  const std::size_t first_link = peers_.size();
  for (int r = local_rank_ + 1; r < nworkers_; ++r) {
    const wire::PeerEndpoint& ep = directory_[static_cast<std::size_t>(r)];
    const int fd = dial(ep.host, ep.port, /*attempts=*/10);
    if (fd < 0)
      throw std::runtime_error("SocketTransport: cannot reach mesh " + peer_name(r) +
                               " at " + ep.host + ":" + std::to_string(ep.port));
    set_nodelay(fd);
    Peer& peer = add_peer(fd, r);
    write_routed(peer, local_rank_, r, wire::encode_peer_hello(local_rank_));
    mesh_link_[static_cast<std::size_t>(r)] = &peer;
  }

  // Accept one connection from every lower-ranked peer, identified by its
  // PeerHello. A peer that never dials must produce a timed, named failure.
  WallTimer deadline;
  for (int accepted = 0; accepted < local_rank_;) {
    for (;;) {
      if (timeout_ms > 0 && deadline.elapsed() * 1e3 > timeout_ms) {
        std::string missing;
        for (int r = 0; r < local_rank_; ++r)
          if (!mesh_link_[static_cast<std::size_t>(r)])
            missing += (missing.empty() ? "" : ", ") + std::to_string(r);
        throw std::runtime_error("SocketTransport: rank " + std::to_string(local_rank_) +
                                 " timed out waiting for mesh connection(s) from rank(s) " +
                                 missing);
      }
      pollfd pfd{listen_fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, 200);
      if (ready < 0 && errno != EINTR)
        throw std::runtime_error("SocketTransport: poll on mesh listener failed");
      if (ready > 0) break;
    }
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) throw std::runtime_error("SocketTransport: mesh accept failed");
    set_nodelay(fd);
    set_recv_timeout(fd, 30);
    int rank = -1;
    try {
      rank = wire::decode_peer_hello(read_frame_sync(fd, "mesh peer hello failed"));
    } catch (...) {
      ::close(fd);
      throw;
    }
    set_recv_timeout(fd, 0);
    if (rank < 0 || rank >= local_rank_ ||
        mesh_link_[static_cast<std::size_t>(rank)] != nullptr) {
      ::close(fd);
      throw std::runtime_error("SocketTransport: unexpected or duplicate mesh hello from "
                               "rank " + std::to_string(rank));
    }
    mesh_link_[static_cast<std::size_t>(rank)] = &add_peer(fd, rank);
    ++accepted;
  }

  // All pair links up: no further mesh connections are expected, so release
  // the listener and let the reader threads take the streams over.
  ::close(listen_fd_);
  listen_fd_ = -1;
  for (std::size_t i = first_link; i < peers_.size(); ++i) start_reader(*peers_[i]);
  meshed_ = true;
}

SocketTransport::~SocketTransport() {
  for (auto& peer : peers_) {
    if (peer && peer->fd >= 0) ::shutdown(peer->fd, SHUT_RDWR);
  }
  for (auto& peer : peers_) {
    if (peer && peer->reader.joinable()) peer->reader.join();
    if (peer && peer->fd >= 0) ::close(peer->fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void SocketTransport::fail_peer(Peer& peer, const std::string& reason) {
  {
    std::lock_guard lock(state_mutex_);
    if (peer.error.empty()) peer.error = reason;
  }
  peer.dead.store(true, std::memory_order_release);
  // Wake the peer's reader (and any blocked writer); the fd itself stays
  // open until the destructor so the reader never races an fd reuse.
  ::shutdown(peer.fd, SHUT_RDWR);
}

std::string SocketTransport::peer_error(const Peer& peer) const {
  std::lock_guard lock(state_mutex_);
  return peer.error;
}

void SocketTransport::close_local(const std::string& reason) {
  {
    std::lock_guard lock(state_mutex_);
    if (close_reason_.empty()) close_reason_ = reason;
  }
  inbox_.close();
}

std::string SocketTransport::close_reason() const {
  std::lock_guard lock(state_mutex_);
  return close_reason_;
}

void SocketTransport::record_routed(int src, int dst, std::uint16_t type,
                                    std::uint64_t bytes) {
  std::lock_guard lock(state_mutex_);
  auto& cell = routed_[{src, dst, type}];
  cell.first += 1;
  cell.second += bytes;
}

std::vector<wire::PeerTraffic> SocketTransport::take_routed() {
  std::lock_guard lock(state_mutex_);
  std::vector<wire::PeerTraffic> out;
  out.reserve(routed_.size());
  for (const auto& [key, cell] : routed_)
    out.push_back({std::get<0>(key), std::get<1>(key), std::get<2>(key), cell.first,
                   cell.second});
  routed_.clear();
  return out;
}

void SocketTransport::write_routed(Peer& peer, int src, int dst,
                                   std::span<const std::uint8_t> frame) {
  std::uint8_t route[kRouteBytes];
  put_le32(route, static_cast<std::uint32_t>(src));
  put_le32(route + 4, static_cast<std::uint32_t>(dst));
  put_le64(route + 8, frame.size());
  std::lock_guard lock(peer.write_mutex);
  if (peer.dead.load(std::memory_order_acquire))
    throw std::runtime_error("SocketTransport: " + peer_name(peer.rank) + " is down (" +
                             peer_error(peer) + ")");
  try {
    write_exact(peer.fd, route, kRouteBytes);
    write_exact(peer.fd, frame.data(), frame.size());
  } catch (const std::exception& e) {
    // Part of the routing header or payload may already be on the wire; the
    // stream can never carry another frame. Poison the peer so every later
    // post fails fast by name instead of feeding the receiver garbage.
    const std::string reason =
        "connection to " + peer_name(peer.rank) + " lost on write: " + e.what();
    fail_peer(peer, reason);
    throw std::runtime_error("SocketTransport: " + reason);
  }
}

void SocketTransport::start_reader(Peer& peer) {
  peer.reader = std::thread([this, &peer] {
    std::string reason;
    try {
      for (;;) {
        std::uint8_t route[kRouteBytes];
        int err = 0;
        ReadStatus st = read_exact(peer.fd, route, kRouteBytes, &err);
        if (st != ReadStatus::kOk) {
          reason = st == ReadStatus::kClosedClean
                       ? peer_name(peer.rank) + " closed connection"
                       : st == ReadStatus::kClosedMidRead
                             ? peer_name(peer.rank) + " closed connection mid-frame"
                             : "read from " + peer_name(peer.rank) +
                                   " failed: " + std::strerror(err);
          break;
        }
        const int src = static_cast<std::int32_t>(get_le32(route));
        const int dst = static_cast<std::int32_t>(get_le32(route + 4));
        const std::uint64_t flen = get_le64(route + 8);
        if (flen > kMaxFrameBytes) {
          reason = "oversized frame from " + peer_name(peer.rank) +
                   " (stream corruption)";
          break;
        }
        std::vector<std::uint8_t> frame(static_cast<std::size_t>(flen));
        st = read_exact(peer.fd, frame.data(), frame.size(), &err);
        if (st != ReadStatus::kOk) {
          reason = st == ReadStatus::kError
                       ? "read from " + peer_name(peer.rank) +
                             " failed: " + std::strerror(err)
                       : peer_name(peer.rank) + " closed connection mid-frame";
          break;
        }

        const int local = coordinator_ ? kCoordinatorRank : local_rank_;
        if (dst == local) {
          inbox_.send(std::move(frame));
        } else if (coordinator_ && dst >= 0 && dst < nworkers_ &&
                   peers_[static_cast<std::size_t>(dst)]) {
          record_routed(src, dst, peek_type(frame), frame.size());
          try {
            write_routed(*peers_[static_cast<std::size_t>(dst)], src, dst, frame);
          } catch (const std::exception&) {
            // The failure belongs to the *destination* link: write_routed
            // poisoned it, and its own reader (woken by the shutdown) closes
            // the coordinator mailbox. This source link is healthy — keep
            // serving it (coordinator-addressed frames, and the best-effort
            // Shutdown at teardown) instead of misattributing the error.
          }
        } else {
          reason = "misrouted frame from " + peer_name(peer.rank) + " for dst " +
                   std::to_string(dst) + " (stream corruption)";
          break;
        }
      }
    } catch (const std::exception& e) {
      reason = e.what();
    } catch (...) {
      reason = "unknown reader failure on " + peer_name(peer.rank);
    }
    fail_peer(peer, reason);
    // Losing the star link is fatal to the endpoint: close the mailbox so
    // blocked receivers fail fast. A worker's *mesh* link dying only poisons
    // that pair — the next post to it throws by name, and a mid-step loss
    // still unblinds everyone through the coordinator's cascade (the dead
    // peer's star link drops, the coordinator fails, and its teardown closes
    // every worker's star link). Keeping the mailbox open here avoids the
    // shutdown race where a peer that finished first would otherwise yank a
    // still-running worker's control stream.
    if (coordinator_ || peer.rank == kCoordinatorRank) close_local(reason);
  });
}

void SocketTransport::post(int src, int dst, std::vector<std::uint8_t> frame) {
  const int local = coordinator_ ? kCoordinatorRank : local_rank_;
  if (dst == local) {
    inbox_.send(std::move(frame));
    return;
  }
  Peer* peer = nullptr;
  if (coordinator_) {
    BNS_CHECK(dst >= 0 && dst < nworkers_);
    peer = peers_[static_cast<std::size_t>(dst)].get();
    BNS_CHECK(peer != nullptr, "post to a worker that never connected");
  } else if (topology_ == SocketTopology::kMesh && dst != kCoordinatorRank) {
    // Worker↔worker frames ride the pair's own socket; only coordinator-
    // addressed frames keep the star link.
    BNS_CHECK(dst >= 0 && dst < nworkers_, "post to an unknown rank");
    peer = mesh_link_[static_cast<std::size_t>(dst)];
    if (peer == nullptr)
      throw std::runtime_error("SocketTransport: no mesh link to " + peer_name(dst) +
                               " (mesh_with_peers not completed?)");
  } else {
    // Star worker: everything leaves through the coordinator, which routes.
    peer = peers_[0].get();
  }
  write_routed(*peer, src, dst, frame);
}

bool SocketTransport::post_best_effort(int src, int dst,
                                       std::vector<std::uint8_t> frame) noexcept {
  try {
    post(src, dst, std::move(frame));
    return true;
  } catch (...) {
    return false;
  }
}

std::optional<std::vector<std::uint8_t>> SocketTransport::recv(int dst) {
  const int local = coordinator_ ? kCoordinatorRank : local_rank_;
  BNS_CHECK(dst == local, "recv on a non-local endpoint");
  return inbox_.recv();
}

void SocketTransport::close(int dst) {
  const int local = coordinator_ ? kCoordinatorRank : local_rank_;
  BNS_CHECK(dst == local, "close on a non-local endpoint");
  close_local("closed locally");
}

}  // namespace bonsai::domain
