#include "domain/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "domain/wire.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace bonsai::domain {

namespace {

// Routing header preceding every frame on a socket: src, dst, frame length.
constexpr std::size_t kRouteBytes = 16;

// Upper bound on a single routed frame; larger lengths are treated as stream
// corruption (a 63-bit length from garbage bytes must not drive a resize).
constexpr std::uint64_t kMaxFrameBytes = std::uint64_t{1} << 31;

void put_le32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void put_le64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t get_le32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

bool read_exact(int fd, std::uint8_t* buf, std::size_t n) {
  while (n > 0) {
    const ssize_t got = ::recv(fd, buf, n, 0);
    if (got <= 0) {
      if (got < 0 && errno == EINTR) continue;
      return false;  // peer closed or hard error: treated as end of stream
    }
    buf += got;
    n -= static_cast<std::size_t>(got);
  }
  return true;
}

void write_exact(int fd, const std::uint8_t* buf, std::size_t n) {
  while (n > 0) {
    const ssize_t put = ::send(fd, buf, n, MSG_NOSIGNAL);
    if (put <= 0) {
      if (put < 0 && errno == EINTR) continue;
      throw std::runtime_error("SocketTransport: peer connection lost on write");
    }
    buf += put;
    n -= static_cast<std::size_t>(put);
  }
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in loopback_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error("SocketTransport: bad coordinator address: " + host);
  return addr;
}

}  // namespace

// --- InProcTransport ---------------------------------------------------------

InProcTransport::InProcTransport(int nranks) {
  BONSAI_CHECK(nranks >= 1);
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r)
    mailboxes_.push_back(std::make_unique<Channel<std::vector<std::uint8_t>>>());
}

void InProcTransport::post(int src, int dst, std::vector<std::uint8_t> frame) {
  (void)src;
  BONSAI_CHECK(dst >= 0 && dst < num_ranks());
  mailboxes_[static_cast<std::size_t>(dst)]->send(std::move(frame));
}

std::optional<std::vector<std::uint8_t>> InProcTransport::recv(int dst) {
  BONSAI_CHECK(dst >= 0 && dst < num_ranks());
  return mailboxes_[static_cast<std::size_t>(dst)]->recv();
}

void InProcTransport::close(int dst) {
  BONSAI_CHECK(dst >= 0 && dst < num_ranks());
  mailboxes_[static_cast<std::size_t>(dst)]->close();
}

// --- TrafficRecordingTransport ----------------------------------------------

void TrafficRecordingTransport::post(int src, int dst, std::vector<std::uint8_t> frame) {
  // The frame type lives at header bytes [6, 8); locally produced frames
  // always carry a full header, but stay defensive for raw test payloads.
  const std::uint16_t type =
      frame.size() >= wire::kHeaderBytes
          ? static_cast<std::uint16_t>(frame[6] | (std::uint16_t{frame[7]} << 8))
          : 0;
  record(src, dst, type, frame.size());
  inner_.post(src, dst, std::move(frame));
}

void TrafficRecordingTransport::record(int src, int dst, std::uint16_t type,
                                       std::uint64_t bytes) {
  std::lock_guard lock(mutex_);
  auto& cell = cells_[{src, dst, type}];
  cell.first += 1;
  cell.second += bytes;
}

std::vector<wire::PeerTraffic> TrafficRecordingTransport::take() {
  std::lock_guard lock(mutex_);
  std::vector<wire::PeerTraffic> out;
  out.reserve(cells_.size());
  for (const auto& [key, cell] : cells_)
    out.push_back({std::get<0>(key), std::get<1>(key), std::get<2>(key), cell.first,
                   cell.second});
  cells_.clear();
  return out;  // map iteration order == (src, dst, type) order
}

// --- SocketTransport ---------------------------------------------------------

struct SocketTransport::Peer {
  int fd = -1;
  int rank = kCoordinatorRank;  // remote endpoint on the other end of fd
  std::mutex write_mutex;
  std::thread reader;
};

std::unique_ptr<SocketTransport> SocketTransport::listen(std::uint16_t port, int nworkers) {
  BONSAI_CHECK(nworkers >= 1);
  auto t = std::unique_ptr<SocketTransport>(new SocketTransport());
  t->coordinator_ = true;
  t->nworkers_ = nworkers;

  // CLOEXEC: spawned worker processes must not inherit the listening socket
  // (an orphaned worker would otherwise hold the port after the coordinator
  // dies).
  t->listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (t->listen_fd_ < 0) throw std::runtime_error("SocketTransport: socket() failed");
  const int one = 1;
  ::setsockopt(t->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr("127.0.0.1", port);
  if (::bind(t->listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    throw std::runtime_error("SocketTransport: bind to port " + std::to_string(port) +
                             " failed");
  if (::listen(t->listen_fd_, nworkers) != 0)
    throw std::runtime_error("SocketTransport: listen failed");

  socklen_t len = sizeof(addr);
  ::getsockname(t->listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  t->port_ = ntohs(addr.sin_port);
  t->peers_.resize(static_cast<std::size_t>(nworkers));
  return t;
}

void SocketTransport::accept_workers(int timeout_ms,
                                     const std::function<bool()>& keep_waiting) {
  BONSAI_CHECK(coordinator_);
  WallTimer deadline;
  for (int i = 0; i < nworkers_; ++i) {
    // Poll in short slices so a deadline or a died-before-connecting worker
    // aborts the wait instead of hanging in accept() forever.
    for (;;) {
      if (timeout_ms > 0 && deadline.elapsed() * 1e3 > timeout_ms)
        throw std::runtime_error("SocketTransport: timed out waiting for workers (" +
                                 std::to_string(i) + "/" + std::to_string(nworkers_) +
                                 " connected)");
      if (keep_waiting && !keep_waiting())
        throw std::runtime_error("SocketTransport: a worker exited before connecting");
      pollfd pfd{listen_fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, 200);
      if (ready < 0 && errno != EINTR)
        throw std::runtime_error("SocketTransport: poll on listen socket failed");
      if (ready > 0) break;
    }
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) throw std::runtime_error("SocketTransport: accept failed");
    set_nodelay(fd);

    // The first routed frame on every worker connection is its Hello; a
    // connected-but-silent peer trips the receive timeout instead of
    // blocking the handshake forever.
    timeval hello_timeout{30, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &hello_timeout, sizeof(hello_timeout));
    std::uint8_t route[kRouteBytes];
    if (!read_exact(fd, route, kRouteBytes))
      throw std::runtime_error("SocketTransport: worker hung up before hello");
    const std::uint64_t flen = get_le64(route + 8);
    if (flen > kMaxFrameBytes)
      throw std::runtime_error("SocketTransport: oversized hello frame");
    std::vector<std::uint8_t> frame(static_cast<std::size_t>(flen));
    if (!read_exact(fd, frame.data(), frame.size()))
      throw std::runtime_error("SocketTransport: truncated hello frame");
    hello_timeout = {0, 0};  // back to blocking reads for the reader thread
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &hello_timeout, sizeof(hello_timeout));
    const int rank = wire::decode_hello(frame);
    if (rank < 0 || rank >= nworkers_)
      throw std::runtime_error("SocketTransport: hello announced rank " +
                               std::to_string(rank) + " outside [0, " +
                               std::to_string(nworkers_) + ")");
    auto& slot = peers_[static_cast<std::size_t>(rank)];
    if (slot) throw std::runtime_error("SocketTransport: duplicate worker rank " +
                                       std::to_string(rank));
    slot = std::make_unique<Peer>();
    slot->fd = fd;
    slot->rank = rank;
  }
  for (std::size_t i = 0; i < peers_.size(); ++i) start_reader(i);
}

std::unique_ptr<SocketTransport> SocketTransport::connect(const std::string& host,
                                                          std::uint16_t port, int rank) {
  BONSAI_CHECK(rank >= 0);
  auto t = std::unique_ptr<SocketTransport>(new SocketTransport());
  t->coordinator_ = false;
  t->local_rank_ = rank;
  t->port_ = port;

  const sockaddr_in addr = loopback_addr(host, port);
  int fd = -1;
  // Brief retry window so externally-launched workers may start a moment
  // before the coordinator is listening.
  for (int attempt = 0; attempt < 50; ++attempt) {
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throw std::runtime_error("SocketTransport: socket() failed");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) break;
    ::close(fd);
    fd = -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (fd < 0)
    throw std::runtime_error("SocketTransport: cannot reach coordinator at " + host + ":" +
                             std::to_string(port));
  set_nodelay(fd);

  auto peer = std::make_unique<Peer>();
  peer->fd = fd;
  peer->rank = kCoordinatorRank;
  t->peers_.push_back(std::move(peer));
  t->write_routed(*t->peers_[0], rank, kCoordinatorRank, wire::encode_hello(rank));
  t->start_reader(0);
  return t;
}

SocketTransport::~SocketTransport() {
  for (auto& peer : peers_) {
    if (peer && peer->fd >= 0) ::shutdown(peer->fd, SHUT_RDWR);
  }
  for (auto& peer : peers_) {
    if (peer && peer->reader.joinable()) peer->reader.join();
    if (peer && peer->fd >= 0) ::close(peer->fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void SocketTransport::write_routed(Peer& peer, int src, int dst,
                                   std::span<const std::uint8_t> frame) {
  std::uint8_t route[kRouteBytes];
  put_le32(route, static_cast<std::uint32_t>(src));
  put_le32(route + 4, static_cast<std::uint32_t>(dst));
  put_le64(route + 8, frame.size());
  std::lock_guard lock(peer.write_mutex);
  write_exact(peer.fd, route, kRouteBytes);
  write_exact(peer.fd, frame.data(), frame.size());
}

void SocketTransport::start_reader(std::size_t peer_index) {
  Peer& peer = *peers_[peer_index];
  peer.reader = std::thread([this, &peer] {
    try {
      for (;;) {
        std::uint8_t route[kRouteBytes];
        if (!read_exact(peer.fd, route, kRouteBytes)) break;
        const int src = static_cast<std::int32_t>(get_le32(route));
        const int dst = static_cast<std::int32_t>(get_le32(route + 4));
        const std::uint64_t flen = get_le64(route + 8);
        if (flen > kMaxFrameBytes) break;  // stream corruption
        std::vector<std::uint8_t> frame(static_cast<std::size_t>(flen));
        if (!read_exact(peer.fd, frame.data(), frame.size())) break;

        const int local = coordinator_ ? kCoordinatorRank : local_rank_;
        if (dst == local) {
          inbox_.send(std::move(frame));
        } else if (coordinator_ && dst >= 0 && dst < nworkers_ &&
                   peers_[static_cast<std::size_t>(dst)]) {
          write_routed(*peers_[static_cast<std::size_t>(dst)], src, dst, frame);
        } else {
          break;  // misrouted frame: treat as fatal stream corruption
        }
      }
    } catch (...) {
      // Fall through to closing the inbox: blocked receivers fail fast.
    }
    close_all_local();
  });
}

void SocketTransport::close_all_local() { inbox_.close(); }

void SocketTransport::post(int src, int dst, std::vector<std::uint8_t> frame) {
  const int local = coordinator_ ? kCoordinatorRank : local_rank_;
  if (dst == local) {
    inbox_.send(std::move(frame));
    return;
  }
  if (coordinator_) {
    BONSAI_CHECK(dst >= 0 && dst < nworkers_);
    auto& peer = peers_[static_cast<std::size_t>(dst)];
    BONSAI_CHECK_MSG(peer != nullptr, "post to a worker that never connected");
    write_routed(*peer, src, dst, frame);
  } else {
    // Worker: everything leaves through the coordinator, which routes it.
    write_routed(*peers_[0], src, dst, frame);
  }
}

std::optional<std::vector<std::uint8_t>> SocketTransport::recv(int dst) {
  const int local = coordinator_ ? kCoordinatorRank : local_rank_;
  BONSAI_CHECK_MSG(dst == local, "recv on a non-local endpoint");
  return inbox_.recv();
}

void SocketTransport::close(int dst) {
  const int local = coordinator_ ? kCoordinatorRank : local_rank_;
  BONSAI_CHECK_MSG(dst == local, "close on a non-local endpoint");
  inbox_.close();
}

}  // namespace bonsai::domain
