#include "domain/rank.hpp"

#include "util/trace.hpp"

namespace bonsai::domain {

void Rank::build(const sfc::KeySpace& space, const SimConfig& cfg, TimeBreakdown& times) {
  {
    trace::ScopedSpan span("rank.sort", id_, id_);
    ScopedTimer t(times, "Sorting SFC");
    device_.sort_particles(parts_, space);
  }
  {
    trace::ScopedSpan span("rank.build", id_, id_);
    ScopedTimer t(times, "Tree-construction");
    device_.build_tree(parts_, tree_, cfg.nleaf);
  }
  {
    trace::ScopedSpan span("rank.properties", id_, id_);
    ScopedTimer t(times, "Tree-properties");
    device_.compute_properties(parts_, tree_, cfg.theta);
    groups_ = make_groups(parts_, cfg.ncrit);
  }
  box_ = parts_.empty() ? AABB{} : tree_.root().box;
}

InteractionStats Rank::gravity_local(const SimConfig& cfg, TimeBreakdown& times) {
  trace::ScopedSpan span("gravity.local", id_, id_);
  ScopedTimer t(times, "Gravity local");
  if (parts_.empty()) return {};
  return device_.compute_forces(tree_.view(parts_), parts_, groups_, cfg.traversal(),
                                /*self=*/true);
}

InteractionStats Rank::gravity_remote(const TreeView& forest, const SimConfig& cfg,
                                      TimeBreakdown& times) {
  ScopedTimer t(times, "Gravity remote");
  if (parts_.empty() || forest.empty()) return {};
  return device_.compute_forces(forest, parts_, groups_, cfg.traversal(),
                                /*self=*/false);
}

void Rank::integrate(double dt, TimeBreakdown& times) {
  trace::ScopedSpan span("rank.integrate", id_, id_);
  ScopedTimer t(times, "Integration");
  ParticleSet& p = parts_;
  device_.parallel_for(p.size(), [&](std::size_t i) {
    p.vx[i] += p.ax[i] * dt;
    p.vy[i] += p.ay[i] * dt;
    p.vz[i] += p.az[i] * dt;
    p.x[i] += p.vx[i] * dt;
    p.y[i] += p.vy[i] * dt;
    p.z[i] += p.vz[i] * dt;
  });
}

}  // namespace bonsai::domain
