#include "domain/schedule.hpp"

#include <algorithm>

namespace bonsai::domain {

namespace {

struct Arrival {
  double time;
  double remote_seconds;  // the receiver-side walk cost of this LET
};

// Completion time of the dependency graph. `include_build` prepends each
// lane's sort/build/props chain (the gravity-only model instead assumes a
// common start, matching the lockstep gravity baseline it is compared with).
double dag_finish(std::span<const LaneTimeline> lanes, bool include_build,
                  bool include_integrate) {
  const std::size_t n = lanes.size();
  std::vector<double> build_done(n, 0.0);
  for (std::size_t r = 0; r < n; ++r)
    if (include_build)
      build_done[r] = lanes[r].sort + lanes[r].build + lanes[r].props;

  // Sender side: LET (s -> d) is on the wire once s has finished the exports
  // preceding it in send order. The receiver-side walk cost for that LET is
  // looked up in d's remotes record.
  std::vector<std::vector<Arrival>> arrivals(n);
  for (std::size_t s = 0; s < n; ++s) {
    double t = build_done[s];
    for (const auto& [dst, secs] : lanes[s].exports) {
      t += secs;
      double walk = 0.0;
      for (const auto& [src, rsecs] : lanes[static_cast<std::size_t>(dst)].remotes)
        if (src == static_cast<int>(s)) walk = rsecs;
      arrivals[static_cast<std::size_t>(dst)].push_back({t, walk});
    }
  }

  double finish = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    double t = build_done[r];
    for (const auto& [dst, secs] : lanes[r].exports) t += secs;
    t += lanes[r].local;
    std::sort(arrivals[r].begin(), arrivals[r].end(),
              [](const Arrival& a, const Arrival& b) { return a.time < b.time; });
    for (const Arrival& a : arrivals[r]) t = std::max(t, a.time) + a.remote_seconds;
    if (include_integrate) t += lanes[r].integrate;
    finish = std::max(finish, t);
  }
  return finish;
}

}  // namespace

ScheduleModel model_schedule(std::span<const LaneTimeline> lanes) {
  ScheduleModel model;
  if (lanes.empty()) return model;

  double mx_sort = 0, mx_build = 0, mx_props = 0, mx_export = 0, mx_local = 0,
         mx_remote = 0, mx_integrate = 0;
  for (const LaneTimeline& lane : lanes) {
    double exp_total = 0, rem_total = 0;
    for (const auto& [dst, secs] : lane.exports) exp_total += secs;
    for (const auto& [src, secs] : lane.remotes) rem_total += secs;
    mx_sort = std::max(mx_sort, lane.sort);
    mx_build = std::max(mx_build, lane.build);
    mx_props = std::max(mx_props, lane.props);
    mx_export = std::max(mx_export, exp_total);
    mx_local = std::max(mx_local, lane.local);
    mx_remote = std::max(mx_remote, rem_total);
    mx_integrate = std::max(mx_integrate, lane.integrate);
  }
  model.sequential = mx_sort + mx_build + mx_props + mx_export + mx_local + mx_remote +
                     mx_integrate;
  model.gravity_sequential = mx_export + mx_local + mx_remote;
  model.critical_path = dag_finish(lanes, /*include_build=*/true,
                                   /*include_integrate=*/true);
  model.gravity_critical = dag_finish(lanes, /*include_build=*/false,
                                      /*include_integrate=*/false);
  return model;
}

}  // namespace bonsai::domain
