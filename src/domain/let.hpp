// Local Essential Trees (§III-B2 of the paper).
//
// Before the force pass, every rank sends each remote rank the *essential*
// part of its local octree: walking the local tree against the remote
// domain's bounding box with the MAC, branches the remote rank is guaranteed
// to accept are pruned to bare multipoles (kMultipoleLeaf), and leaves that
// may be opened ship their particles. The receiver grafts all imported LETs
// under one synthetic root and runs the *same* group tree-walk used for the
// local tree — remote forces need no special-case traversal code.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tree/octree.hpp"
#include "util/aabb.hpp"

namespace bonsai::domain {

// A self-contained, traversable slice of a remote tree: nodes reference the
// particle arrays held alongside them, so a LET is also the unit that would
// be serialized onto the wire in a distributed build.
struct LetTree {
  std::vector<TreeNode> nodes;
  std::vector<double> x, y, z, m;  // particles of opened (exported) leaves

  std::size_t num_cells() const { return nodes.size(); }
  std::size_t num_particles() const { return x.size(); }

  // A LET with a single empty particle leaf (from an empty sender) exerts no
  // force; a single multipole leaf does.
  bool empty() const {
    return nodes.empty() ||
           (nodes.size() == 1 && nodes[0].kind == NodeKind::kParticleLeaf &&
            nodes[0].count() == 0);
  }

  TreeView view() const { return {nodes, x, y, z, m}; }
};

// Extract the LET of a local tree for a remote domain. `local` must have
// properties computed (boxes, multipoles, rcrit); `remote_box` is the tight
// AABB of the remote rank's particles. Pruning uses the sender-side MAC
// against the whole remote box, which is conservative for every target group
// inside it — the receiver's group MAC can only re-accept, never wrongly
// open, a pruned branch.
LetTree build_let(const TreeView& local, const AABB& remote_box);

// Graft imported LETs into one traversable forest: a synthetic internal root
// whose children are the LET roots (empty LETs are dropped). `theta` sets the
// grafted root's MAC radius. Returns an empty LetTree when nothing survives.
LetTree graft_lets(std::span<const LetTree> lets, double theta);

}  // namespace bonsai::domain
