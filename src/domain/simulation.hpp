// Multi-rank driver: the in-process analogue of the paper's full per-step
// pipeline (§III-B, Table II):
//
//   domain update (sampled boundary keys)  ->  particle exchange
//   -> per-rank sort / tree build / properties
//   -> LET exchange (sender-side extraction, receiver-side graft)
//   -> gravity: local tree walk + grafted-LET walk
//   -> integration
//
// Ranks are driven sequentially here (each with its own Device thread pool);
// per-stage timings are recorded per rank so the report can show both the
// parallel-model wall-clock (max over ranks) and total device-seconds (sum),
// the way Table II reports per-process times.
#pragma once

#include <iosfwd>
#include <memory>
#include <vector>

#include "domain/decomposition.hpp"
#include "domain/rank.hpp"
#include "util/flops.hpp"
#include "util/timer.hpp"

namespace bonsai::domain {

// Everything one step produces, for printing and for tests.
struct StepReport {
  int step = 0;
  std::size_t num_particles = 0;
  std::uint64_t migrated = 0;       // particles that changed rank this step
  std::uint64_t let_cells = 0;      // total exported LET nodes
  std::uint64_t let_particles = 0;  // total exported leaf particles
  InteractionStats local_stats, remote_stats;
  TimeBreakdown max_times;  // per-stage max over ranks (parallel wall-clock)
  TimeBreakdown sum_times;  // per-stage sum over ranks (device-seconds)
  double elapsed = 0.0;     // actual wall-clock of the whole step

  InteractionStats stats() const { return local_stats + remote_stats; }
};

class Simulation {
 public:
  explicit Simulation(const SimConfig& cfg);

  // Scatter an initial particle set across the ranks (samples an initial
  // decomposition and runs one exchange).
  void init(ParticleSet global);

  // One full pipeline step; forces are valid for every particle afterwards.
  StepReport step();

  // All particles of all ranks, sorted by id, with forces preserved.
  ParticleSet gather() const;

  std::size_t num_particles() const;
  const SimConfig& config() const { return cfg_; }
  const Decomposition& decomposition() const { return decomp_; }
  const sfc::KeySpace& key_space() const { return space_; }
  Rank& rank(int r) { return *ranks_[static_cast<std::size_t>(r)]; }
  const Rank& rank(int r) const { return *ranks_[static_cast<std::size_t>(r)]; }

  // Diagnostics over the current population (KE from velocities, PE from the
  // per-particle potentials of the last force pass).
  double kinetic_energy() const;
  double potential_energy() const;

 private:
  // Domain update + particle exchange; records driver-level timings/counts.
  void redistribute(StepReport& report, TimeBreakdown& driver_times);

  SimConfig cfg_;
  std::vector<std::unique_ptr<Rank>> ranks_;
  Decomposition decomp_;
  sfc::KeySpace space_;
  int next_step_ = 0;
};

// Render a StepReport as the per-stage timing table (Table II layout).
void print_step_report(const StepReport& report, std::ostream& os);

}  // namespace bonsai::domain
