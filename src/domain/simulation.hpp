// Multi-rank driver: the in-process analogue of the paper's full per-step
// pipeline (§III-B, Table II):
//
//   domain update (sampled boundary keys)  ->  particle exchange
//   -> per-rank sort / tree build / properties
//   -> LET exchange (sender-side extraction, receiver-side walk)
//   -> gravity: local tree walk + imported-LET walks
//   -> integration
//
// Two schedules drive the ranks (SimConfig::async):
//
// * async (default, §III-B3): one Executor lane per rank runs the whole
//   pipeline independently; LETs travel as serialized wire frames through
//   the byte Transport, and a rank starts remote gravity on each imported
//   LET as soon
//   as it arrives — local gravity is not a barrier, and there is no global
//   graft step. The step report carries the modeled critical path vs the
//   lockstep stage-sum (overlap efficiency).
// * lockstep (--no-async): every stage completes on all ranks before the
//   next begins, with imported LETs grafted into one forest — the PR-1
//   schedule, kept for differential testing.
//
// Per-stage timings are recorded per rank either way, so the report can show
// the parallel-model wall-clock (max over ranks) and total device-seconds
// (sum), the way Table II reports per-process times.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "domain/channel.hpp"
#include "domain/decomposition.hpp"
#include "domain/executor.hpp"
#include "domain/metrics.hpp"
#include "domain/rank.hpp"
#include "domain/schedule.hpp"
#include "domain/transport.hpp"
#include "domain/wire.hpp"
#include "util/flops.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace bonsai::domain {

// Everything one step produces, for printing and for tests.
struct StepReport {
  int step = 0;
  bool async = false;  // which schedule produced this report
  KernelBackend kernel = KernelBackend::kSimd;  // force backend of this step
  std::size_t num_particles = 0;
  std::uint64_t migrated = 0;       // particles that changed rank this step
  std::uint64_t let_cells = 0;      // total exported LET nodes
  std::uint64_t let_particles = 0;  // total exported leaf particles
  InteractionStats local_stats, remote_stats;
  TimeBreakdown max_times;  // per-stage max over ranks (parallel wall-clock)
  TimeBreakdown sum_times;  // per-stage sum over ranks (device-seconds)
  double elapsed = 0.0;     // actual wall-clock of the whole step

  // Serialization accounting: LET frames (summed over ranks), particle
  // batches (migration cells plus the cluster StepBegin/StepResult frames
  // that historically carried them), and the SPMD domain-control frames
  // (Boundaries/KeySamples allgathers), plus the per-imported-LET size
  // samples behind the step report's histogram.
  wire::WireStats let_wire, part_wire, dom_wire;
  std::vector<wire::LetSizeSample> let_sizes;

  // Incremental LET exchange (--let-cache): full/delta frame counts, bytes a
  // delta saved over the full frame it replaced, importer cache hits and
  // resets, summed over ranks. All zero when the cache is off.
  wire::LetDeltaStats let_delta;

  // Per-(src, dst, frame type) send-side traffic matrix for the step, sorted
  // by that key (kCoordinatorRank appears as -1). The measurable basis of
  // hub-vs-SPMD traffic comparisons in CI.
  std::vector<wire::PeerTraffic> traffic;

  // Cluster runs only: the worker↔worker frames the *coordinator forwarded*
  // this step, same shape as `traffic`. The star topology routes every peer
  // frame here; a steady-state mesh step must leave it empty — the
  // measurable basis of the star-vs-mesh comparison in CI.
  std::vector<wire::PeerTraffic> routed;

  // Schedule model (async steps only; see schedule.hpp): the pipelined
  // critical path vs the lockstep stage-sum over the rank-concurrent stages,
  // and the same pair restricted to Exchange LET + Gravity local + remote.
  double critical_path = 0.0;
  double sequential_model = 0.0;
  double gravity_critical = 0.0;
  double gravity_sequential = 0.0;

  // The step's metrics-registry view of the aggregates above, built by
  // build_step_metrics() once the report is final — identical numbers to the
  // legacy wire/traffic/routed/let_sizes fields by construction.
  metrics::Snapshot metrics;

  // Tracing runs only: every span recorded this step, already merged across
  // ranks (and, in cluster runs, clock-shifted onto the coordinator's clock).
  std::vector<trace::Span> spans;

  InteractionStats stats() const { return local_stats + remote_stats; }

  // How much faster the pipelined schedule completes than the lockstep one
  // (>= 1; ratio of modeled times).
  double overlap_efficiency() const {
    return critical_path > 0.0 ? sequential_model / critical_path : 1.0;
  }
};

// Thread-budget policy for per-rank device pools: R rank pipelines partition
// the host's `hardware_threads`, each receiving floor(hw/R) workers (minimum
// 1 — hosts with fewer cores than ranks run oversubscribed but correct; a
// 1-core host gives every rank exactly one worker). The default is the same
// share in *both* schedules, even though lockstep ranks compute one at a
// time: equal device sizes keep recorded device-seconds comparable between
// the schedules (the differential-testing point of --no-async), and avoid
// spawning R*hw mostly-idle workers at high rank counts. An explicit
// cfg.threads_per_rank is clamped to the per-rank share in async mode
// (concurrent pipelines must not oversubscribe each other) but only to hw in
// lockstep mode, where widening a rank's pool to the whole host is safe.
std::size_t threads_for(const SimConfig& cfg, std::size_t hardware_threads);

class Simulation {
 public:
  explicit Simulation(const SimConfig& cfg);

  // Scatter an initial particle set across the ranks (samples an initial
  // decomposition and runs one exchange).
  void init(ParticleSet global);

  // One full pipeline step; forces are valid for every particle afterwards.
  StepReport step();

  // All particles of all ranks, sorted by id, with forces preserved.
  ParticleSet gather() const;

  std::size_t num_particles() const;
  const SimConfig& config() const { return cfg_; }
  const Decomposition& decomposition() const { return decomp_; }
  const sfc::KeySpace& key_space() const { return space_; }
  Rank& rank(int r) { return *ranks_[static_cast<std::size_t>(r)]; }
  const Rank& rank(int r) const { return *ranks_[static_cast<std::size_t>(r)]; }

  // Diagnostics over the current population (KE from velocities, PE from the
  // per-particle potentials of the last force pass).
  double kinetic_energy() const;
  double potential_energy() const;

  // Checkpoint/restore seam (the job server's preemption primitive): the
  // per-rank populations in array order plus the step counter are, under
  // count balancing, the complete input of the next step — step() resamples
  // the decomposition and key space from the sets before anything else.
  // Restoring a checkpoint into a fresh Simulation with the same config
  // therefore continues bit-for-bit where the checkpointed run left off
  // (cost balancing resumes too, but falls back to the equal-count cut on
  // its first step: measured gravity seconds are not replayable).
  std::vector<ParticleSet> checkpoint_sets() const;
  void restore(std::vector<ParticleSet> sets, int next_step);
  int next_step() const { return next_step_; }

 private:
  // Domain update + particle exchange; records driver-level timings/counts.
  void redistribute(StepReport& report, TimeBreakdown& driver_times);

  // The two step schedules; both leave valid forces on every rank and fill
  // per-rank stage times. The async schedule also fills `lanes` for the
  // pipeline model.
  void step_async(StepReport& report, std::vector<TimeBreakdown>& rank_times,
                  std::vector<LaneTimeline>& lanes);
  void step_lockstep(StepReport& report, std::vector<TimeBreakdown>& rank_times);

  SimConfig cfg_;
  std::vector<std::unique_ptr<Rank>> ranks_;
  std::unique_ptr<Executor> executor_;  // created on the first async step
  // All inter-rank traffic (LET frames, particle batches) flows through the
  // recorder wrapped around this byte transport; swapping the backend for a
  // socket/MPI one changes no pipeline code (the out-of-process driver in
  // domain/cluster.hpp does exactly that). The recorder feeds the step
  // report's per-peer traffic matrix.
  std::unique_ptr<InProcTransport> inproc_;
  std::unique_ptr<TrafficRecordingTransport> transport_;
  Decomposition decomp_;
  sfc::KeySpace space_;
  int next_step_ = 0;

  // Incremental LET exchange: per-pair caches and encode scratch, persisting
  // across the per-step LetExchange instances (--let-cache).
  LetChannelState let_state_;

  // Feedback for BalanceMode::kCost: last step's per-rank gravity seconds
  // and populations (empty before the first step).
  std::vector<double> prev_gravity_seconds_;
  std::vector<std::size_t> prev_rank_size_;
};

// The shared "Domain update" + "Exchange particles" driver stages (used by
// the in-process Simulation and the cluster coordinator so their reports
// cannot drift apart): sample a new decomposition from the per-rank sets —
// cost-weighted by the previous step's gravity seconds per particle when
// BalanceMode::kCost and a step has been timed — then migrate particles
// through `transport`, recording counts, stage timings (serialization cost
// broken out into the wire rows) and wire stats. Returns the domain update
// so callers keep the bounds/space/partition.
DomainUpdate redistribute_sets(std::vector<ParticleSet>& sets, const SimConfig& cfg,
                               std::span<const double> prev_gravity_seconds,
                               std::span<const std::size_t> prev_rank_size,
                               Transport& transport, StepReport& report,
                               TimeBreakdown& driver_times);

// Everything one rank's LET/gravity phase produces.
struct RankStepStats {
  std::uint64_t let_cells = 0, let_particles = 0;
  InteractionStats local_stats, remote_stats;
  std::vector<wire::LetSizeSample> let_sizes;
};

// One rank's step body after tree build — the phase the in-process async
// lanes and the socket workers must run identically for out-of-process runs
// to reproduce in-process forces: round-robin LET exports starting at
// self+1, local gravity, remote gravity per arrived LET, integration, and
// the wire-stage accounting. `next_peer` advances past each successfully
// posted peer so a caller's failure path knows which posts are still owed.
// `lane`, when given, records the timeline for the schedule model.
RankStepStats run_rank_step(Rank& rank, const SimConfig& cfg, LetExchange& net,
                            std::span<const std::uint8_t> active,
                            std::span<const AABB> boxes, TimeBreakdown& times,
                            LaneTimeline* lane, std::size_t& next_peer);

// Concatenate per-rank populations into one set sorted by particle id,
// forces/potentials/keys preserved — the gather() both drivers expose — and
// the energy diagnostics over the same populations (KE from velocities, PE
// from the per-particle potentials of the last force pass).
ParticleSet gather_sorted(std::span<const ParticleSet* const> sets);
double total_kinetic_energy(std::span<const ParticleSet* const> sets);
double total_potential_energy(std::span<const ParticleSet* const> sets);

// Fold driver-level and per-rank stage times into the report's max/sum
// aggregate views, in canonical Table II stage order.
void fold_stage_times(StepReport& report, const TimeBreakdown& driver_times,
                      std::span<const TimeBreakdown> rank_times);

// Render a StepReport as the per-stage timing table (Table II layout), plus
// the pipeline/overlap lines for async steps.
void print_step_report(const StepReport& report, std::ostream& os);

// Rebuild a report's aggregates as a metrics Snapshot (stable dotted names,
// per-peer traffic as labeled counters, LET sizes as a pow-2 histogram). A
// pure function of the final report, so the registry view can never drift
// from the legacy fields. Every driver assigns the result to report.metrics.
metrics::Snapshot build_step_metrics(const StepReport& report);

// Run-level metadata for the --bench JSON header, so trajectory tooling can
// tell configurations apart without parsing command lines.
struct RunInfo {
  int ranks = 0;
  std::size_t num_particles = 0;
  double theta = 0.0;
  std::string transport = "inproc";  // "inproc" | "socket"
  std::string topology = "none";     // "none" | "star" | "mesh"
  std::string cluster = "none";      // "none" | "hub" | "spmd"
  std::string balance = "count";     // "count" | "cost"
  std::string kernel = "simd";       // "scalar" | "simd" | "simd-float"
  bool async = true;
  bool let_cache = false;            // incremental LET exchange on?
  int wire_version = wire::kVersion;
};

// Emit reports as a JSON object {"schema": 1, "config": {...run metadata...},
// "steps": [...]} (the --bench trajectory format): per-stage max/sum seconds,
// interaction counts, Gflop/s, the schedule model, and the metrics registry
// block next to the legacy wire/traffic fields it subsumes.
void write_step_report_json(const RunInfo& info, std::span<const StepReport> reports,
                            std::ostream& os);

}  // namespace bonsai::domain
