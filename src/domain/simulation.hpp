// Multi-rank driver: the in-process analogue of the paper's full per-step
// pipeline (§III-B, Table II):
//
//   domain update (sampled boundary keys)  ->  particle exchange
//   -> per-rank sort / tree build / properties
//   -> LET exchange (sender-side extraction, receiver-side walk)
//   -> gravity: local tree walk + imported-LET walks
//   -> integration
//
// Two schedules drive the ranks (SimConfig::async):
//
// * async (default, §III-B3): one Executor lane per rank runs the whole
//   pipeline independently; LETs travel through nonblocking Channel
//   mailboxes, and a rank starts remote gravity on each imported LET as soon
//   as it arrives — local gravity is not a barrier, and there is no global
//   graft step. The step report carries the modeled critical path vs the
//   lockstep stage-sum (overlap efficiency).
// * lockstep (--no-async): every stage completes on all ranks before the
//   next begins, with imported LETs grafted into one forest — the PR-1
//   schedule, kept for differential testing.
//
// Per-stage timings are recorded per rank either way, so the report can show
// the parallel-model wall-clock (max over ranks) and total device-seconds
// (sum), the way Table II reports per-process times.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "domain/decomposition.hpp"
#include "domain/executor.hpp"
#include "domain/rank.hpp"
#include "domain/schedule.hpp"
#include "util/flops.hpp"
#include "util/timer.hpp"

namespace bonsai::domain {

// Everything one step produces, for printing and for tests.
struct StepReport {
  int step = 0;
  bool async = false;  // which schedule produced this report
  std::size_t num_particles = 0;
  std::uint64_t migrated = 0;       // particles that changed rank this step
  std::uint64_t let_cells = 0;      // total exported LET nodes
  std::uint64_t let_particles = 0;  // total exported leaf particles
  InteractionStats local_stats, remote_stats;
  TimeBreakdown max_times;  // per-stage max over ranks (parallel wall-clock)
  TimeBreakdown sum_times;  // per-stage sum over ranks (device-seconds)
  double elapsed = 0.0;     // actual wall-clock of the whole step

  // Schedule model (async steps only; see schedule.hpp): the pipelined
  // critical path vs the lockstep stage-sum over the rank-concurrent stages,
  // and the same pair restricted to Exchange LET + Gravity local + remote.
  double critical_path = 0.0;
  double sequential_model = 0.0;
  double gravity_critical = 0.0;
  double gravity_sequential = 0.0;

  InteractionStats stats() const { return local_stats + remote_stats; }

  // How much faster the pipelined schedule completes than the lockstep one
  // (>= 1; ratio of modeled times).
  double overlap_efficiency() const {
    return critical_path > 0.0 ? sequential_model / critical_path : 1.0;
  }
};

// Thread-budget policy for per-rank device pools: R rank pipelines partition
// the host's `hardware_threads`, each receiving floor(hw/R) workers (minimum
// 1 — hosts with fewer cores than ranks run oversubscribed but correct; a
// 1-core host gives every rank exactly one worker). The default is the same
// share in *both* schedules, even though lockstep ranks compute one at a
// time: equal device sizes keep recorded device-seconds comparable between
// the schedules (the differential-testing point of --no-async), and avoid
// spawning R*hw mostly-idle workers at high rank counts. An explicit
// cfg.threads_per_rank is clamped to the per-rank share in async mode
// (concurrent pipelines must not oversubscribe each other) but only to hw in
// lockstep mode, where widening a rank's pool to the whole host is safe.
std::size_t threads_for(const SimConfig& cfg, std::size_t hardware_threads);

class Simulation {
 public:
  explicit Simulation(const SimConfig& cfg);

  // Scatter an initial particle set across the ranks (samples an initial
  // decomposition and runs one exchange).
  void init(ParticleSet global);

  // One full pipeline step; forces are valid for every particle afterwards.
  StepReport step();

  // All particles of all ranks, sorted by id, with forces preserved.
  ParticleSet gather() const;

  std::size_t num_particles() const;
  const SimConfig& config() const { return cfg_; }
  const Decomposition& decomposition() const { return decomp_; }
  const sfc::KeySpace& key_space() const { return space_; }
  Rank& rank(int r) { return *ranks_[static_cast<std::size_t>(r)]; }
  const Rank& rank(int r) const { return *ranks_[static_cast<std::size_t>(r)]; }

  // Diagnostics over the current population (KE from velocities, PE from the
  // per-particle potentials of the last force pass).
  double kinetic_energy() const;
  double potential_energy() const;

 private:
  // Domain update + particle exchange; records driver-level timings/counts.
  void redistribute(StepReport& report, TimeBreakdown& driver_times);

  // The two step schedules; both leave valid forces on every rank and fill
  // per-rank stage times. The async schedule also fills `lanes` for the
  // pipeline model.
  void step_async(StepReport& report, std::vector<TimeBreakdown>& rank_times,
                  std::vector<LaneTimeline>& lanes);
  void step_lockstep(StepReport& report, std::vector<TimeBreakdown>& rank_times);

  SimConfig cfg_;
  std::vector<std::unique_ptr<Rank>> ranks_;
  std::unique_ptr<Executor> executor_;  // created on the first async step
  Decomposition decomp_;
  sfc::KeySpace space_;
  int next_step_ = 0;

  // Feedback for BalanceMode::kCost: last step's per-rank gravity seconds
  // and populations (empty before the first step).
  std::vector<double> prev_gravity_seconds_;
  std::vector<std::size_t> prev_rank_size_;
};

// Render a StepReport as the per-stage timing table (Table II layout), plus
// the pipeline/overlap lines for async steps.
void print_step_report(const StepReport& report, std::ostream& os);

// Emit reports as a JSON array (the --bench trajectory format): per-stage
// max/sum seconds, interaction counts, Gflop/s, and the schedule model.
void write_step_report_json(std::span<const StepReport> reports, std::ostream& os);

}  // namespace bonsai::domain
