// Versioned wire format for inter-rank messages (the serialization layer the
// ROADMAP names as the blocker for real transports, §III-B of the paper).
//
// Every message is a self-describing *frame*: a fixed 16-byte header
// (magic, version, frame type, payload length) followed by a flat
// little-endian payload. Frames are what a Transport moves between ranks —
// live C++ objects never cross the rank boundary, so an MPI or socket
// backend carries exactly the same bytes as the in-process loopback.
//
// Decoding validates hard: magic/version/type/length are checked before any
// payload read, every payload read is bounds-checked against the buffer, and
// structural invariants of decoded trees (node kinds, child ranges pointing
// strictly forward, particle ranges inside the payload arrays) are enforced.
// A malformed frame throws WireError; it never reads out of bounds and never
// produces a tree the traversal could walk off of.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "domain/let.hpp"
#include "domain/metrics.hpp"
#include "domain/rank.hpp"
#include "tree/particle.hpp"
#include "util/flops.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace bonsai::domain::wire {

// Frame header constants. The magic bytes spell "BNSW" on the wire.
// Version 3 extends Hello with the worker's mesh listen port and adds the
// PeerDirectory / PeerHello handshake frames of the mesh topology. Version 4
// adds the Trace frame (span traces + metric deltas shipped alongside
// StepResult) and the trace flag in Config. Version 5 adds the kernel-backend
// selector to Config and the batched-engine counters (padded interactions,
// batch counts, batch-size histogram) to the StepResult interaction stats.
// Version 6 adds the job-server client protocol (JobSubmit / JobStatus /
// JobResult / JobCancel / Snapshot) and the live metrics scrape
// (MetricsQuery / MetricsReport). Version 7 adds the incremental LET
// exchange: the LetDelta frame (a versioned per-pair patch against the LET
// the peer already holds), the let-cache/churn knobs in Config, and the
// delta accounting counters in StepResult.
inline constexpr std::uint32_t kMagic = 0x57534E42u;
inline constexpr std::uint16_t kVersion = 7;
inline constexpr std::size_t kHeaderBytes = 16;

enum class FrameType : std::uint16_t {
  kLet = 1,        // one rank's LET for one remote rank
  kParticles = 2,  // particle batch (hub migration cell, gather reply)
  kHello = 3,      // worker -> coordinator: rank id + mesh listen port
  kConfig = 4,     // coordinator -> worker: simulation parameters
  kStepBegin = 5,  // coordinator -> worker: step inputs (+ batch in hub mode)
  kStepResult = 6, // worker -> coordinator: timings, stats (+ batch in hub mode)
  kShutdown = 7,   // coordinator -> worker: exit cleanly; client -> job server:
                   // stop serving
  kBoundaries = 8, // SPMD allgather: one rank's local bounds/population/weight
  kKeySamples = 9, // SPMD allgather: one rank's sampled SFC keys
  kMigration = 10, // SPMD peer-to-peer: owner-changing particles (alltoallv cell)
  kPeerDirectory = 11,  // coordinator -> worker: every worker's mesh endpoint
  kPeerHello = 12,      // worker -> worker: dialing rank's id on a fresh mesh link
  kTrace = 13,          // worker -> coordinator: step spans + metric deltas
  kJobSubmit = 14,      // client -> job server: job spec (+ optional explicit IC)
  kJobStatus = 15,      // client <-> job server: status request / description
  kJobResult = 16,      // job server -> client: terminal state + final particles
  kJobCancel = 17,      // client -> job server: cancel a queued or running job
  kSnapshot = 18,       // checkpoint/snapshot: per-rank populations + step
  kMetricsQuery = 19,   // client -> job server: scrape the metrics registry
  kMetricsReport = 20,  // job server -> client: the registry snapshot
  kLetDelta = 21,       // incremental LET: patch against the peer's cached LET
};

// Human-readable frame type name for reports ("Let", "Migration", ...).
const char* frame_type_name(FrameType type);

// Malformed/truncated/mismatched frame. Decoders throw this (and only this)
// for any byte-level problem.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

// Validate the header of `frame` (magic, version, payload length against the
// buffer size) and return its type. Throws WireError on any mismatch.
FrameType frame_type(std::span<const std::uint8_t> frame);

// Serialization accounting: frames/bytes moved plus the seconds spent
// encoding and decoding them, reported per step next to the compute stages.
struct WireStats {
  std::uint64_t frames = 0;
  std::uint64_t bytes = 0;
  double encode_seconds = 0.0;
  double decode_seconds = 0.0;

  WireStats& operator+=(const WireStats& o) {
    frames += o.frames;
    bytes += o.bytes;
    encode_seconds += o.encode_seconds;
    decode_seconds += o.decode_seconds;
    return *this;
  }
};

// Size record of one imported LET, feeding the step report's histogram.
struct LetSizeSample {
  std::uint64_t cells = 0;
  std::uint64_t particles = 0;
  std::uint64_t bytes = 0;
};

// One cell of the per-peer traffic matrix: frames/bytes posted from `src` to
// `dst` of one frame type. Sent-side accounting only, so summing cells never
// double-counts a frame; the step report and --bench JSON carry the matrix
// to make hub-vs-SPMD traffic directly comparable.
struct PeerTraffic {
  int src = 0;
  int dst = 0;
  std::uint16_t type = 0;  // FrameType as its wire value
  std::uint64_t frames = 0;
  std::uint64_t bytes = 0;
};

// Merge `add` into `into`, summing cells with equal (src, dst, type) and
// keeping the result sorted by that key.
void merge_traffic(std::vector<PeerTraffic>& into, std::span<const PeerTraffic> add);

// One LET in flight from rank `src`, carrying the sender-side extraction cost
// so the schedule model can reconstruct when the message could have arrived,
// and (after decode) the encoded frame size for the LET size histogram.
struct LetMessage {
  int src = -1;
  LetTree let;
  double export_seconds = 0.0;
  std::uint64_t wire_bytes = 0;
};

// --- LET frames --------------------------------------------------------------
std::vector<std::uint8_t> encode_let(const LetMessage& msg);
LetMessage decode_let(std::span<const std::uint8_t> frame);

// --- Incremental LET frames (wire v7) ----------------------------------------
// One (src, dst) pair's incremental-exchange state: the LET the peer
// currently holds plus up to two older generations of its values, aligned
// with `tree` — 17 doubles per node (box, mass, com, quad, rcrit) and 4 per
// particle (x, y, z, m). The exporter and the importer evolve a mirrored
// copy of this entry from the same shipped match indices, so predictions
// are computed from bit-identical inputs on both sides. `*_age[i]` counts
// the generations valid for element i (1 = only `tree`, 3 = all).
struct LetCacheEntry {
  std::uint64_t version = 0;  // 0: nothing synced (first contact or reset)
  LetTree tree;
  std::vector<double> node_hist1, node_hist2;  // [num_cells * 17]
  std::vector<double> part_hist1, part_hist2;  // [num_particles * 4]
  std::vector<std::uint8_t> node_age, part_age;

  void reset() { *this = LetCacheEntry{}; }

  // Mirror consistency: history/age arrays sized to the cached tree, ages in
  // [1, 3], and an unsynced entry (version 0) fully empty. Exporter and
  // importer run the same check after every commit (Debug/sanitizer builds),
  // so a divergence is caught at the seam instead of as silent drift in a
  // later delta. Throws CheckError on violation.
  void check_consistency() const;
};

// Per-rank accounting of the incremental exchange, carried through
// StepResult and the step report. Exporter side: frames by kind and the
// bytes a delta saved over the full encoding it replaced. Importer side:
// deltas applied (cache_hits) and full frames that overwrote a valid cache
// entry (invalidations — fallbacks after first contact).
struct LetDeltaStats {
  std::uint64_t full_frames = 0;
  std::uint64_t delta_frames = 0;
  std::uint64_t bytes_saved = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t invalidations = 0;

  LetDeltaStats& operator+=(const LetDeltaStats& o) {
    full_frames += o.full_frames;
    delta_frames += o.delta_frames;
    bytes_saved += o.bytes_saved;
    cache_hits += o.cache_hits;
    invalidations += o.invalidations;
    return *this;
  }
};

struct LetEncodeResult {
  std::vector<std::uint8_t> frame;
  bool is_delta = false;
  std::uint64_t full_bytes = 0;  // what a full Let frame would have cost
};

// Exporter side of the incremental exchange: encode `msg.let` for a peer
// whose mirrored state is `cache`. Ships a kLetDelta patch when it comes
// out smaller than `churn_ratio` times the full encoding (topology churn
// and migration churn inflate the patch past that bound, which is the
// fallback trigger); ships a full kLet frame otherwise, and always on
// first contact or for an empty tree. Updates `cache` to what the peer
// will hold after decoding. `scratch` (optional) is an encode buffer
// whose capacity is reused across calls.
LetEncodeResult encode_let_cached(const LetMessage& msg, LetCacheEntry& cache,
                                  double churn_ratio,
                                  std::vector<std::uint8_t>* scratch = nullptr);

// Importer side: decode a kLet or kLetDelta frame against `cache`. A full
// frame unconditionally resets the pair's state (version restarts at 1); a
// delta requires its base version to equal `cache.version` exactly and is
// patched and re-validated against the full traversal-safety invariants
// before the tree is returned. On any WireError the cache is left exactly
// as it was (patches commit only after validation).
LetMessage decode_let_cached(std::span<const std::uint8_t> frame, LetCacheEntry& cache);

// Like encode_let, but builds the frame in `scratch` (capacity retained
// across calls) and returns an exact-size copy for posting.
std::vector<std::uint8_t> encode_let_scratch(const LetMessage& msg,
                                             std::vector<std::uint8_t>& scratch);

// The source rank of a kLet/kLetDelta frame without decoding it (both
// layouts lead with the source id) — the importer routes the frame to the
// right per-pair cache before the full decode.
int peek_let_src(std::span<const std::uint8_t> frame);

// --- Particle-migration batches ----------------------------------------------
// A batch owns full particle state; forces/potential ride along only when
// `with_forces` (the worker -> coordinator result direction). Migration
// batches travel force-free — forces are recomputed every step.
struct ParticleBatch {
  int src = -1;
  bool with_forces = false;
  ParticleSet parts;
};

std::vector<std::uint8_t> encode_particles(int src, const ParticleSet& parts,
                                           bool with_forces);
ParticleBatch decode_particles(std::span<const std::uint8_t> frame);

// --- Cluster control frames (coordinator <-> out-of-process workers) ---------
// The first frame on every worker -> coordinator connection. `listen_port`
// is the port the worker's own mesh listener is bound to (0: star topology,
// the worker accepts no peer connections).
struct Hello {
  int rank = -1;
  std::uint16_t listen_port = 0;
};

std::vector<std::uint8_t> encode_hello(int rank, std::uint16_t listen_port = 0);
Hello decode_hello(std::span<const std::uint8_t> frame);

// --- Mesh-topology handshake frames ------------------------------------------
// One worker's dialable endpoint, as the coordinator's rendezvous learned it
// from the Hello handshake.
struct PeerEndpoint {
  std::string host;
  std::uint16_t port = 0;
};

// The rendezvous directory the coordinator broadcasts before Config in mesh
// topology: entry r is rank r's listen endpoint. Workers dial every
// higher-ranked entry; lower ranks accept, so each pair meets exactly once.
std::vector<std::uint8_t> encode_peer_directory(std::span<const PeerEndpoint> peers);
std::vector<PeerEndpoint> decode_peer_directory(std::span<const std::uint8_t> frame);

// The dialing worker's rank announcement, first frame on a fresh mesh link.
std::vector<std::uint8_t> encode_peer_hello(int rank);
int decode_peer_hello(std::span<const std::uint8_t> frame);

std::vector<std::uint8_t> encode_config(const SimConfig& cfg);
SimConfig decode_config(std::span<const std::uint8_t> frame);

// What a StepBegin asks the worker to do (the hub/SPMD protocol selector).
enum class StepMode : std::uint8_t {
  kHub = 0,            // batch replaces worker state; bounds/active/boxes given
  kSpmdBootstrap = 1,  // batch seeds the resident state, then run SPMD phases
  kSpmdStep = 2,       // empty batch: step the resident state via SPMD phases
  kCollect = 3,        // no step: reply with the resident particles (+forces)
};

// Everything a worker needs to run one step. In hub mode the coordinator
// fills everything: the global key-space bounds (raw, pre-inflation, so
// KeySpace reconstructs bit-identically), the active set, every rank's
// domain box, and the worker's particle batch. In SPMD modes the frame is a
// bare step trigger (plus the bootstrap batch on the first step): workers
// compute bounds/active/boxes themselves from Boundaries/KeySamples
// allgathers.
struct StepBegin {
  int step = 0;
  StepMode mode = StepMode::kHub;
  AABB bounds;
  std::vector<std::uint8_t> active;
  std::vector<AABB> boxes;
  ParticleSet parts;
};

std::vector<std::uint8_t> encode_step_begin(const StepBegin& sb);
StepBegin decode_step_begin(std::span<const std::uint8_t> frame);

// --- SPMD domain frames ------------------------------------------------------
// One rank's contribution to the distributed domain update, posted to every
// peer. Pre-migration (phase 1) it carries the local particle bounds, the
// population and the rank's cost weight (measured gravity seconds per
// particle last step; 0 outside cost balancing) — enough for every rank to
// build the identical global KeySpace, sample stride and weight vector.
// Post-migration (phase 4) the same frame re-announces the rank's new
// population and tight box, which is what peers build LETs against.
struct Boundaries {
  int src = -1;
  int step = 0;
  bool post_migration = false;
  std::uint64_t count = 0;  // local population (0: box is default/invalid)
  AABB box;
  double weight = 0.0;
};

std::vector<std::uint8_t> encode_boundaries(const Boundaries& b);
Boundaries decode_boundaries(std::span<const std::uint8_t> frame);

// One rank's sampled SFC keys (phase 2): pooled in rank order by every
// receiver, so all ranks cut the identical Decomposition.
struct KeySamples {
  int src = -1;
  int step = 0;
  std::vector<sfc::Key> keys;
};

std::vector<std::uint8_t> encode_key_samples(const KeySamples& ks);
KeySamples decode_key_samples(std::span<const std::uint8_t> frame);

// One (src, dst) cell of the SPMD particle alltoallv (phase 3): the
// particles of `src` whose new owner is the destination rank. Always
// force-free — forces are recomputed every step.
struct MigrationMsg {
  int src = -1;
  int step = 0;
  ParticleSet parts;
};

std::vector<std::uint8_t> encode_migration(int src, int step, const ParticleSet& parts);
MigrationMsg decode_migration(std::span<const std::uint8_t> frame);

// A worker's step output: per-stage timings, interaction/LET statistics,
// serialization accounting, the local population/energy summary, and — in
// hub mode only — the particle state with forces (SPMD workers keep their
// particles resident and ship an empty batch). `boundaries` carries the
// Decomposition an SPMD worker computed so the coordinator can cross-check
// that all workers derived the identical partition.
struct StepResult {
  int rank = -1;
  std::uint64_t let_cells = 0;
  std::uint64_t let_particles = 0;
  InteractionStats local_stats, remote_stats;
  std::uint64_t migrated = 0;     // emigrants this rank posted (SPMD)
  std::uint64_t local_count = 0;  // resident population after the step
  double kinetic = 0.0;           // local kinetic-energy partial sum
  double potential = 0.0;         // local potential-energy partial sum
  TimeBreakdown times;
  std::vector<LetSizeSample> let_sizes;
  WireStats let_wire, part_wire, dom_wire;
  LetDeltaStats let_delta;  // incremental-exchange counters (zero when off)
  std::vector<sfc::Key> boundaries;  // SPMD: computed decomposition bounds
  std::vector<PeerTraffic> traffic;  // frames this worker posted, per peer/type
  ParticleSet parts;
};

std::vector<std::uint8_t> encode_step_result(const StepResult& sr);
StepResult decode_step_result(std::span<const std::uint8_t> frame);

// A worker's observability sidecar for one step, posted just before the
// StepResult when tracing is on: the spans its driver thread recorded, its
// metric deltas, and the two worker-local clock samples the coordinator needs
// for the NTP-style offset estimate (recv_ns: StepBegin decoded, send_ns:
// Trace frame encoded — both on the worker's steady clock).
struct TraceFrame {
  int src = -1;
  int step = 0;
  std::int64_t recv_ns = 0;
  std::int64_t send_ns = 0;
  std::vector<trace::Span> spans;
  metrics::Snapshot metrics;
};

std::vector<std::uint8_t> encode_trace(const TraceFrame& tf);
TraceFrame decode_trace(std::span<const std::uint8_t> frame);

std::vector<std::uint8_t> encode_shutdown();

// --- Job-server client protocol (wire v6; see src/serve/) --------------------
// Lifecycle of a job on the server. Rejected/Failed/Cancelled/Completed are
// terminal; Suspended jobs hold a disk checkpoint and resume when slots free.
enum class JobState : std::uint8_t {
  kQueued = 0,     // admitted, waiting for rank slots
  kRunning = 1,    // stepping on its slice of the rank pool
  kSuspended = 2,  // preempted: checkpointed to disk, slots released
  kCompleted = 3,  // all steps done, result available
  kCancelled = 4,  // cancelled by a client before completion
  kFailed = 5,     // runner threw; reason carries the message
  kRejected = 6,   // admission control refused it; reason names the limit
};

// Human-readable state name ("queued", "running", ...).
const char* job_state_name(JobState state);

// What a client asks the server to run. When `parts` is empty the server
// generates a Plummer sphere from (n, seed); otherwise `parts` is the
// explicit force-free initial condition (e.g. a --snapshot-in file) and `n`
// is ignored. `ranks` = 0 lets the scheduler size the job's slice of the
// rank pool; `priority` orders the queue, and a higher-priority job may
// preempt a running lower-priority one.
struct JobSpec {
  std::string name;
  std::uint64_t n = 0;
  std::uint64_t seed = 42;
  std::int32_t steps = 1;
  std::int32_t ranks = 0;
  std::int32_t priority = 0;
  double theta = 0.4;
  double eps = 1e-2;
  double dt = 1e-3;
  KernelBackend kernel = KernelBackend::kSimd;
  ParticleSet parts;
};

std::vector<std::uint8_t> encode_job_submit(const JobSpec& spec);
JobSpec decode_job_submit(std::span<const std::uint8_t> frame);

// One job's description. Client -> server it is a request (only job_id —
// and `wait`, which asks the server to block until the job is terminal and
// answer with a JobResult frame instead); server -> client it is the reply
// to a submit, status or cancel, fully filled. `reason` carries the
// admission-rejection or failure detail.
struct JobStatusMsg {
  std::int32_t job_id = -1;
  JobState state = JobState::kQueued;
  bool wait = false;
  std::int32_t steps_done = 0;
  std::int32_t steps_total = 0;
  std::int32_t ranks = 0;
  std::int32_t priority = 0;
  std::uint64_t n = 0;
  std::string reason;
};

std::vector<std::uint8_t> encode_job_status(const JobStatusMsg& status);
JobStatusMsg decode_job_status(std::span<const std::uint8_t> frame);

// Terminal answer to a `wait` request: the final state, energies, and — for
// completed jobs — the particle population with forces, sorted by id.
struct JobResultMsg {
  std::int32_t job_id = -1;
  JobState state = JobState::kCompleted;
  std::int32_t steps_done = 0;
  double kinetic = 0.0;
  double potential = 0.0;
  std::string reason;
  ParticleSet parts;
};

std::vector<std::uint8_t> encode_job_result(const JobResultMsg& result);
JobResultMsg decode_job_result(std::span<const std::uint8_t> frame);

std::vector<std::uint8_t> encode_job_cancel(std::int32_t job_id);
std::int32_t decode_job_cancel(std::span<const std::uint8_t> frame);

// A checkpoint/snapshot: the per-rank populations in array order (forces
// included) plus the step counter. Under count balancing these are the
// complete input of the next step, so restoring them into a fresh Simulation
// with the same config resumes bit-for-bit — this frame is the job server's
// preemption checkpoint, the --snapshot-out/--snapshot-in file format, and
// the reply to a client's snapshot request (an empty-`sets` Snapshot frame
// carrying the job id).
struct SnapshotMsg {
  std::int32_t job_id = -1;  // -1: standalone file outside the server
  std::int32_t next_step = 0;
  std::vector<ParticleSet> sets;
};

std::vector<std::uint8_t> encode_snapshot(const SnapshotMsg& snap);
SnapshotMsg decode_snapshot(std::span<const std::uint8_t> frame);

// Live scrape of a running server's metrics registry (job-labeled step
// aggregates plus the server's own counters/gauges).
std::vector<std::uint8_t> encode_metrics_query();
std::vector<std::uint8_t> encode_metrics_report(const metrics::Snapshot& snapshot);
metrics::Snapshot decode_metrics_report(std::span<const std::uint8_t> frame);

}  // namespace bonsai::domain::wire
