// Versioned wire format for inter-rank messages (the serialization layer the
// ROADMAP names as the blocker for real transports, §III-B of the paper).
//
// Every message is a self-describing *frame*: a fixed 16-byte header
// (magic, version, frame type, payload length) followed by a flat
// little-endian payload. Frames are what a Transport moves between ranks —
// live C++ objects never cross the rank boundary, so an MPI or socket
// backend carries exactly the same bytes as the in-process loopback.
//
// Decoding validates hard: magic/version/type/length are checked before any
// payload read, every payload read is bounds-checked against the buffer, and
// structural invariants of decoded trees (node kinds, child ranges pointing
// strictly forward, particle ranges inside the payload arrays) are enforced.
// A malformed frame throws WireError; it never reads out of bounds and never
// produces a tree the traversal could walk off of.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "domain/let.hpp"
#include "domain/rank.hpp"
#include "tree/particle.hpp"
#include "util/flops.hpp"
#include "util/timer.hpp"

namespace bonsai::domain::wire {

// Frame header constants. The magic bytes spell "BNSW" on the wire.
inline constexpr std::uint32_t kMagic = 0x57534E42u;
inline constexpr std::uint16_t kVersion = 1;
inline constexpr std::size_t kHeaderBytes = 16;

enum class FrameType : std::uint16_t {
  kLet = 1,        // one rank's LET for one remote rank
  kParticles = 2,  // particle-migration batch (alltoallv cell)
  kHello = 3,      // worker -> coordinator: rank id announcement
  kConfig = 4,     // coordinator -> worker: simulation parameters
  kStepBegin = 5,  // coordinator -> worker: step inputs + particle batch
  kStepResult = 6, // worker -> coordinator: forces, timings, stats
  kShutdown = 7,   // coordinator -> worker: exit cleanly
};

// Malformed/truncated/mismatched frame. Decoders throw this (and only this)
// for any byte-level problem.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

// Validate the header of `frame` (magic, version, payload length against the
// buffer size) and return its type. Throws WireError on any mismatch.
FrameType frame_type(std::span<const std::uint8_t> frame);

// Serialization accounting: frames/bytes moved plus the seconds spent
// encoding and decoding them, reported per step next to the compute stages.
struct WireStats {
  std::uint64_t frames = 0;
  std::uint64_t bytes = 0;
  double encode_seconds = 0.0;
  double decode_seconds = 0.0;

  WireStats& operator+=(const WireStats& o) {
    frames += o.frames;
    bytes += o.bytes;
    encode_seconds += o.encode_seconds;
    decode_seconds += o.decode_seconds;
    return *this;
  }
};

// Size record of one imported LET, feeding the step report's histogram.
struct LetSizeSample {
  std::uint64_t cells = 0;
  std::uint64_t particles = 0;
  std::uint64_t bytes = 0;
};

// One LET in flight from rank `src`, carrying the sender-side extraction cost
// so the schedule model can reconstruct when the message could have arrived,
// and (after decode) the encoded frame size for the LET size histogram.
struct LetMessage {
  int src = -1;
  LetTree let;
  double export_seconds = 0.0;
  std::uint64_t wire_bytes = 0;
};

// --- LET frames --------------------------------------------------------------
std::vector<std::uint8_t> encode_let(const LetMessage& msg);
LetMessage decode_let(std::span<const std::uint8_t> frame);

// --- Particle-migration batches ----------------------------------------------
// A batch owns full particle state; forces/potential ride along only when
// `with_forces` (the worker -> coordinator result direction). Migration
// batches travel force-free — forces are recomputed every step.
struct ParticleBatch {
  int src = -1;
  bool with_forces = false;
  ParticleSet parts;
};

std::vector<std::uint8_t> encode_particles(int src, const ParticleSet& parts,
                                           bool with_forces);
ParticleBatch decode_particles(std::span<const std::uint8_t> frame);

// --- Cluster control frames (coordinator <-> out-of-process workers) ---------
std::vector<std::uint8_t> encode_hello(int rank);
int decode_hello(std::span<const std::uint8_t> frame);

std::vector<std::uint8_t> encode_config(const SimConfig& cfg);
SimConfig decode_config(std::span<const std::uint8_t> frame);

// Everything a worker needs to run one step: the global key-space bounds
// (raw, pre-inflation, so KeySpace reconstructs bit-identically), the active
// set, every rank's domain box, and the worker's particle batch.
struct StepBegin {
  int step = 0;
  AABB bounds;
  std::vector<std::uint8_t> active;
  std::vector<AABB> boxes;
  ParticleSet parts;
};

std::vector<std::uint8_t> encode_step_begin(const StepBegin& sb);
StepBegin decode_step_begin(std::span<const std::uint8_t> frame);

// A worker's step output: particle state with forces, per-stage timings,
// interaction/LET statistics, and its serialization accounting.
struct StepResult {
  int rank = -1;
  std::uint64_t let_cells = 0;
  std::uint64_t let_particles = 0;
  InteractionStats local_stats, remote_stats;
  TimeBreakdown times;
  std::vector<LetSizeSample> let_sizes;
  WireStats let_wire;
  ParticleSet parts;
};

std::vector<std::uint8_t> encode_step_result(const StepResult& sr);
StepResult decode_step_result(std::span<const std::uint8_t> frame);

std::vector<std::uint8_t> encode_shutdown();

}  // namespace bonsai::domain::wire
