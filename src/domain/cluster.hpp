// Out-of-process ranks: the coordinator/worker drivers of --transport socket.
//
// The paper's ranks are separate MPI processes; this module reproduces that
// process boundary over the SocketTransport in two state models (--cluster):
//
// * hub (PR 3, kept for differential testing): the coordinator owns the
//   global particle state, the decomposition and the step loop, and ships
//   each rank's batch out and back every step —
//
//     coordinator -> worker   Config, then per step: StepBegin (key-space
//                             bounds, active set, domain boxes, batch)
//     worker <-> worker       LET frames, routed through the coordinator
//     worker -> coordinator   StepResult (particles + forces, timings, stats)
//
//   Per-step wire volume is O(N) no matter how few particles change owner.
//
// * spmd (the paper's actual structure, §III-B1): workers keep their
//   particle slice *resident across steps* and run the domain update among
//   themselves — per step, after a bare StepBegin trigger:
//
//     phase 1  Boundaries allgather: local bounds, population, cost weight
//              -> every worker derives the identical global KeySpace/stride
//     phase 2  KeySamples allgather -> identical Decomposition on all ranks
//     phase 3  Migration alltoallv: only owner-changing particles travel,
//              peer-to-peer through the router (the migration barrier: a
//              worker proceeds only after all n-1 inbound batches arrived)
//     phase 4  Boundaries allgather (post-migration active set + boxes)
//     then     LET exchange + gravity + integration, exactly as in-process
//     finally  StepResult: timings/stats/energies only — no particles
//
//   Steady-state traffic is O(samples + boundary crossers + LETs); the
//   coordinator is demoted to rendezvous, frame routing and aggregated step
//   reports. The coordinator cross-checks the Decomposition every worker
//   reports and fails fast on divergence, and any worker death closes the
//   star's sockets so every blocked recv() unblinds instead of hanging.
//
// Orthogonally, --topology picks the socket fabric (see transport.hpp):
// star routes every worker↔worker frame through the coordinator; mesh gives
// each worker pair its own TCP connection (rendezvous via the coordinator's
// PeerDirectory) so LET/Boundaries/KeySamples/Migration frames never touch
// the coordinator — its per-step routed-traffic matrix, folded into
// StepReport::routed, must stay empty in a steady-state mesh run.
//
// Both modes compute the same physics as the in-process Simulation: the same
// decomposition arithmetic (shared via domain/decomposition.hpp helpers),
// the same Rank code, the same run_rank_step body, the same LET protocol —
// only where the state lives and which frames carry it differ.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "domain/simulation.hpp"
#include "domain/transport.hpp"

namespace bonsai::domain {

// Where the particle state lives between steps.
enum class ClusterMode {
  kHub,   // coordinator-owned state, O(N) per-step wire volume
  kSpmd,  // worker-resident state, distributed sampling, peer migration
};

struct ClusterConfig {
  SimConfig sim;
  ClusterMode mode = ClusterMode::kHub;
  // Where worker↔worker frames travel: through the coordinator (star) or on
  // direct pair sockets (mesh, the paper's point-to-point structure). The
  // coordinator link always carries the control frames either way.
  SocketTopology topology = SocketTopology::kStar;
  std::uint16_t port = 0;     // 0: pick an ephemeral port
  bool spawn_workers = true;  // fork/exec `program` once per rank; false:
                              // wait for externally launched workers
  std::string program;        // bonsai_sim binary path (argv[0]) for spawning
  std::size_t worker_threads = 0;  // device threads per worker (0: hw/nranks)
  // Test seam: invoked with the bound port after listen() and before the
  // accept wait, so in-process run_worker() threads can be pointed at an
  // ephemeral port without fixed-port flakiness.
  std::function<void(std::uint16_t)> on_listen;
};

// Coordinator-side driver with the same step interface as Simulation, so the
// CLI and the validation path are generic over where the ranks live.
class ClusterSimulation {
 public:
  explicit ClusterSimulation(const ClusterConfig& cfg);
  ~ClusterSimulation();

  void init(ParticleSet global);
  StepReport step();
  // Hub: concatenates the coordinator-resident sets. SPMD: a collect
  // round-trip pulls every worker's resident particles (with forces).
  ParticleSet gather() const;

  std::size_t num_particles() const;
  const SimConfig& config() const { return cfg_.sim; }
  ClusterMode mode() const { return cfg_.mode; }
  // Hub: the coordinator-computed partition. SPMD: the partition every
  // worker reported (and the coordinator verified identical) last step.
  const Decomposition& decomposition() const { return decomp_; }
  std::uint16_t port() const { return net_->port(); }

  // Hub: computed over the coordinator-resident sets. SPMD: the per-worker
  // partial sums aggregated from the last step's results.
  double kinetic_energy() const;
  double potential_energy() const;

 private:
  void redistribute(StepReport& report, TimeBreakdown& driver_times);
  void spawn_workers();
  void broadcast_shutdown() noexcept;
  StepReport step_hub();
  StepReport step_spmd();
  // Shared receive half of both step drivers: the next worker's decoded,
  // deduplicated StepResult, with the mode-independent aggregates (wire
  // volumes, LET statistics, traffic) already folded into `report`. Trace
  // frames interleaved with the results are absorbed on the way: their spans
  // are clock-shifted onto the coordinator's clock (post_ns holds the
  // per-rank StepBegin post times of this step) and appended to `spans`.
  wire::StepResult recv_step_result(TrafficRecordingTransport& rec, StepReport& report,
                                    std::vector<std::uint8_t>& seen,
                                    std::span<const std::int64_t> post_ns,
                                    std::vector<trace::Span>& spans);

  ClusterConfig cfg_;
  std::unique_ptr<SocketTransport> net_;
  // The coordinator-local alltoallv between its per-rank sets (hub mode and
  // the SPMD bootstrap split); migration frames here never need the sockets
  // because the coordinator owns all sets at that point. The recorder feeds
  // the hub report's traffic matrix.
  std::unique_ptr<InProcTransport> migrate_net_;
  std::unique_ptr<TrafficRecordingTransport> migrate_rec_;
  std::vector<ParticleSet> sets_;
  Decomposition decomp_;
  sfc::KeySpace space_;
  AABB bounds_;
  int next_step_ = 0;
  std::vector<double> prev_gravity_seconds_;
  std::vector<std::size_t> prev_rank_size_;
  std::vector<long> children_;  // pids of spawned worker processes
  // SPMD bookkeeping: the bootstrap batches are shipped with the first
  // StepBegin; afterwards the coordinator holds no particles and serves
  // population/energy queries from the aggregated step results.
  bool bootstrap_pending_ = false;
  bool spmd_stepped_ = false;
  std::size_t spmd_particles_ = 0;
  double spmd_kinetic_ = 0.0;
  double spmd_potential_ = 0.0;
};

// Worker-process entry (bonsai_sim --transport socket --rank-id K
// --coordinator HOST:PORT [--topology mesh --listen-port P]): connect — in
// mesh topology also stand up the worker's own listener and the pair links —
// receive the config, serve StepBegin frames — hub, SPMD or collect, as each
// frame's mode requests — until Shutdown. Returns the process exit code.
int run_worker(const std::string& host, std::uint16_t port, int rank_id,
               std::size_t threads, SocketTopology topology = SocketTopology::kStar,
               std::uint16_t listen_port = 0);

}  // namespace bonsai::domain
