// Out-of-process ranks: the coordinator/worker drivers of --transport socket.
//
// The paper's ranks are separate MPI processes; this module reproduces that
// process boundary over the SocketTransport. A coordinator process owns the
// global particle state, the domain decomposition and the step loop; each
// rank's pipeline (sort, tree build, LET export, gravity, integration) runs
// in its own worker *process*, connected by one TCP stream. Everything that
// crosses the boundary is a versioned wire frame (domain/wire.hpp):
//
//   coordinator -> worker   Config, then per step: StepBegin (key-space
//                           bounds, active set, domain boxes, the worker's
//                           particle batch)
//   worker <-> worker       LET frames, routed through the coordinator
//   worker -> coordinator   StepResult (particles + forces, stage timings,
//                           interaction/wire statistics)
//
// The per-step dataflow and the resulting forces match the in-process
// Simulation: the same update_domain/exchange code computes the partition,
// the same Rank code computes the physics, and the same LetExchange protocol
// moves LETs — only the Transport underneath differs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "domain/simulation.hpp"
#include "domain/transport.hpp"

namespace bonsai::domain {

struct ClusterConfig {
  SimConfig sim;
  std::uint16_t port = 0;     // 0: pick an ephemeral port
  bool spawn_workers = true;  // fork/exec `program` once per rank; false:
                              // wait for externally launched workers
  std::string program;        // bonsai_sim binary path (argv[0]) for spawning
  std::size_t worker_threads = 0;  // device threads per worker (0: hw/nranks)
};

// Coordinator-side driver with the same step interface as Simulation, so the
// CLI and the validation path are generic over where the ranks live.
class ClusterSimulation {
 public:
  explicit ClusterSimulation(const ClusterConfig& cfg);
  ~ClusterSimulation();

  void init(ParticleSet global);
  StepReport step();
  ParticleSet gather() const;

  std::size_t num_particles() const;
  const SimConfig& config() const { return cfg_.sim; }
  const Decomposition& decomposition() const { return decomp_; }
  std::uint16_t port() const { return net_->port(); }

  double kinetic_energy() const;
  double potential_energy() const;

 private:
  void redistribute(StepReport& report, TimeBreakdown& driver_times);
  void spawn_workers();

  ClusterConfig cfg_;
  std::unique_ptr<SocketTransport> net_;
  // The coordinator-local alltoallv between its per-rank sets; migration
  // frames never need the sockets because the coordinator owns all sets
  // between steps.
  std::unique_ptr<InProcTransport> migrate_net_;
  std::vector<ParticleSet> sets_;
  Decomposition decomp_;
  sfc::KeySpace space_;
  AABB bounds_;
  int next_step_ = 0;
  std::vector<double> prev_gravity_seconds_;
  std::vector<std::size_t> prev_rank_size_;
  std::vector<long> children_;  // pids of spawned worker processes
};

// Worker-process entry (bonsai_sim --transport socket --rank-id K
// --coordinator HOST:PORT): connect, receive the config, serve StepBegin
// frames until Shutdown. Returns the process exit code.
int run_worker(const std::string& host, std::uint16_t port, int rank_id,
               std::size_t threads);

}  // namespace bonsai::domain
