// 3-D Peano-Hilbert space-filling-curve keys (21 levels, 63-bit keys).
//
// The domain decomposition of the paper (§III-B1, Fig. 2) orders particles
// along a Peano-Hilbert curve and cuts the curve into per-process pieces; the
// curve's locality keeps each piece geometrically compact and guarantees that
// sub-domain boundaries are branches of a hypothetical global octree.
//
// Implementation: Skilling's transpose algorithm ("Programming the Hilbert
// curve", AIP Conf. Proc. 707, 2004), specialised for n = 3 dimensions.
#pragma once

#include <cstdint>

#include "sfc/morton.hpp"

namespace bonsai::sfc {

// Encode integer coordinates (each < 2^21) into a 63-bit Hilbert key.
// The top 3L bits of the key identify the level-L cell of the octree in
// curve order; keys of a cell's interior form one contiguous range.
std::uint64_t hilbert_encode(std::uint32_t x, std::uint32_t y, std::uint32_t z);

// Inverse of hilbert_encode.
Coords hilbert_decode(std::uint64_t key);

}  // namespace bonsai::sfc
