// 3-D Morton (Z-order) keys: 21 bits per dimension packed into a 63-bit key.
// Provided both as a baseline for the Peano-Hilbert curve used in production
// (the paper's decomposition, §III-B1) and for tests/benchmarks.
#pragma once

#include <cstdint>

namespace bonsai::sfc {

// Number of octree levels representable in a 64-bit key (3 bits per level).
inline constexpr int kMaxLevel = 21;
inline constexpr std::uint32_t kCoordRange = 1u << kMaxLevel;  // coords in [0, 2^21)

namespace detail {

// Spread the low 21 bits of v so that bit i moves to bit 3*i.
constexpr std::uint64_t spread3(std::uint64_t v) {
  v &= 0x1fffffULL;
  v = (v | (v << 32)) & 0x1f00000000ffffULL;
  v = (v | (v << 16)) & 0x1f0000ff0000ffULL;
  v = (v | (v << 8)) & 0x100f00f00f00f00fULL;
  v = (v | (v << 4)) & 0x10c30c30c30c30c3ULL;
  v = (v | (v << 2)) & 0x1249249249249249ULL;
  return v;
}

// Inverse of spread3: collect every third bit back into the low 21 bits.
constexpr std::uint64_t compact3(std::uint64_t v) {
  v &= 0x1249249249249249ULL;
  v = (v ^ (v >> 2)) & 0x10c30c30c30c30c3ULL;
  v = (v ^ (v >> 4)) & 0x100f00f00f00f00fULL;
  v = (v ^ (v >> 8)) & 0x1f0000ff0000ffULL;
  v = (v ^ (v >> 16)) & 0x1f00000000ffffULL;
  v = (v ^ (v >> 32)) & 0x1fffffULL;
  return v;
}

}  // namespace detail

// Interleave (x, y, z) into a Morton key. x occupies the most significant bit
// of each 3-bit group so the top 3L bits identify the level-L octree cell.
constexpr std::uint64_t morton_encode(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
  return (detail::spread3(x) << 2) | (detail::spread3(y) << 1) | detail::spread3(z);
}

struct Coords {
  std::uint32_t x, y, z;
  friend constexpr bool operator==(const Coords&, const Coords&) = default;
};

constexpr Coords morton_decode(std::uint64_t key) {
  return {static_cast<std::uint32_t>(detail::compact3(key >> 2)),
          static_cast<std::uint32_t>(detail::compact3(key >> 1)),
          static_cast<std::uint32_t>(detail::compact3(key))};
}

}  // namespace bonsai::sfc
