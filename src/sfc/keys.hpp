// Key-space utilities shared by the tree builder and the domain decomposition.
//
// A KeySpace maps physical positions inside a global bounding cube onto
// 63-bit SFC keys (Peano-Hilbert in production, Morton as a baseline).
// Because keys are assigned hierarchically, the top 3L bits of a key identify
// the level-L cell of a *global* octree; domain boundaries expressed as key
// ranges are therefore unions of octree branches (§III-B1 of the paper).
#pragma once

#include <cstdint>

#include "sfc/hilbert.hpp"
#include "sfc/morton.hpp"
#include "util/aabb.hpp"
#include "util/check.hpp"
#include "util/vec3.hpp"

namespace bonsai::sfc {

using Key = std::uint64_t;

// Largest valid key + 1: keys occupy 63 bits.
inline constexpr Key kKeyEnd = Key{1} << (3 * kMaxLevel);

enum class CurveType { kHilbert, kMorton };

// Number of grid cells along one axis at octree level L.
constexpr std::uint32_t cells_per_side(int level) { return 1u << level; }

// Width in key units of one level-L cell (the size of its key range).
constexpr Key cell_key_span(int level) { return Key{1} << (3 * (kMaxLevel - level)); }

// Zero out the sub-cell bits of `key`, producing the first key of the level-L
// cell that contains it.
constexpr Key cell_first_key(Key key, int level) {
  return key & ~(cell_key_span(level) - 1);
}

// One-past-the-last key of the level-L cell containing `key`.
constexpr Key cell_last_key(Key key, int level) {
  return cell_first_key(key, level) + cell_key_span(level);
}

// True if the level-L cells of a and b coincide.
constexpr bool same_cell(Key a, Key b, int level) {
  return cell_first_key(a, level) == cell_first_key(b, level);
}

// Octant digit (0..7) selected by `key` at `level` (level 1 = coarsest split).
constexpr unsigned octant_at_level(Key key, int level) {
  return static_cast<unsigned>((key >> (3 * (kMaxLevel - level))) & 7u);
}

// Maps positions within a fixed global cube to SFC keys and back.
class KeySpace {
 public:
  KeySpace() = default;

  // `bounds` must be (or will be inflated to) a cube; a small pad keeps
  // boundary particles strictly inside the key grid.
  explicit KeySpace(const AABB& bounds, CurveType curve = CurveType::kHilbert)
      : cube_(bounds.bounding_cube(1e-10 + 1e-6 * bounds.max_side())), curve_(curve) {
    BNS_CHECK(cube_.valid());
    inv_cell_ = static_cast<double>(kCoordRange) / cube_.max_side();
  }

  const AABB& cube() const { return cube_; }
  CurveType curve() const { return curve_; }

  Coords to_coords(const Vec3d& p) const {
    auto clamp21 = [](double v) {
      if (v < 0.0) v = 0.0;
      const double top = static_cast<double>(kCoordRange) - 1.0;
      if (v > top) v = top;
      return static_cast<std::uint32_t>(v);
    };
    return {clamp21((p.x - cube_.lo.x) * inv_cell_), clamp21((p.y - cube_.lo.y) * inv_cell_),
            clamp21((p.z - cube_.lo.z) * inv_cell_)};
  }

  Key key(const Vec3d& p) const {
    const Coords c = to_coords(p);
    return curve_ == CurveType::kHilbert ? hilbert_encode(c.x, c.y, c.z)
                                         : morton_encode(c.x, c.y, c.z);
  }

  Coords decode(Key k) const {
    return curve_ == CurveType::kHilbert ? hilbert_decode(k) : morton_decode(k);
  }

  // Physical axis-aligned box of the level-L cell containing `key`.
  AABB cell_box(Key key, int level) const {
    BNS_CHECK(level >= 0 && level <= kMaxLevel);
    const Coords c = decode(cell_first_key(key, level));
    const std::uint32_t grid = kCoordRange >> level;  // cell size in grid units
    const std::uint32_t cx = (c.x / grid) * grid;
    const std::uint32_t cy = (c.y / grid) * grid;
    const std::uint32_t cz = (c.z / grid) * grid;
    const double h = cube_.max_side() / static_cast<double>(cells_per_side(level));
    const Vec3d lo{cube_.lo.x + cx / inv_cell_, cube_.lo.y + cy / inv_cell_,
                   cube_.lo.z + cz / inv_cell_};
    return {lo, {lo.x + h, lo.y + h, lo.z + h}};
  }

 private:
  AABB cube_{};
  CurveType curve_ = CurveType::kHilbert;
  double inv_cell_ = 0.0;
};

}  // namespace bonsai::sfc
