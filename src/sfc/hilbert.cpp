#include "sfc/hilbert.hpp"

namespace bonsai::sfc {
namespace {

constexpr int kBits = kMaxLevel;  // bits per dimension
constexpr int kDims = 3;

// Skilling: map axes values into the "transpose" Hilbert representation,
// in place. X[i] holds every kDims-th bit of the Hilbert index.
void axes_to_transpose(std::uint32_t X[kDims]) {
  std::uint32_t P, Q, t;
  // Inverse undo of the excess work.
  for (Q = 1u << (kBits - 1); Q > 1; Q >>= 1) {
    P = Q - 1;
    for (int i = 0; i < kDims; ++i) {
      if (X[i] & Q) {
        X[0] ^= P;  // invert low bits of X[0]
      } else {
        t = (X[0] ^ X[i]) & P;
        X[0] ^= t;
        X[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (int i = 1; i < kDims; ++i) X[i] ^= X[i - 1];
  t = 0;
  for (Q = 1u << (kBits - 1); Q > 1; Q >>= 1)
    if (X[kDims - 1] & Q) t ^= Q - 1;
  for (int i = 0; i < kDims; ++i) X[i] ^= t;
}

// Inverse of axes_to_transpose.
void transpose_to_axes(std::uint32_t X[kDims]) {
  std::uint32_t P, Q, t;
  // Gray decode by H ^ (H/2).
  t = X[kDims - 1] >> 1;
  for (int i = kDims - 1; i > 0; --i) X[i] ^= X[i - 1];
  X[0] ^= t;
  // Undo excess work.
  for (Q = 2; Q != (1u << kBits); Q <<= 1) {
    P = Q - 1;
    for (int i = kDims - 1; i >= 0; --i) {
      if (X[i] & Q) {
        X[0] ^= P;
      } else {
        t = (X[0] ^ X[i]) & P;
        X[0] ^= t;
        X[i] ^= t;
      }
    }
  }
}

// Pack the transpose representation into a single key: key bit
// (3*b + 2 - i) <- bit b of X[i], i.e. each 3-bit group of the key holds one
// refinement level, most significant level first.
std::uint64_t transpose_to_key(const std::uint32_t X[kDims]) {
  std::uint64_t key = 0;
  for (int b = kBits - 1; b >= 0; --b)
    for (int i = 0; i < kDims; ++i)
      key = (key << 1) | ((X[i] >> b) & 1u);
  return key;
}

void key_to_transpose(std::uint64_t key, std::uint32_t X[kDims]) {
  for (int i = 0; i < kDims; ++i) X[i] = 0;
  for (int b = kBits - 1; b >= 0; --b)
    for (int i = 0; i < kDims; ++i) {
      X[i] = (X[i] << 1) | static_cast<std::uint32_t>((key >> (3 * b + 2 - i)) & 1u);
    }
}

}  // namespace

std::uint64_t hilbert_encode(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
  std::uint32_t X[kDims] = {x & (kCoordRange - 1), y & (kCoordRange - 1),
                            z & (kCoordRange - 1)};
  axes_to_transpose(X);
  return transpose_to_key(X);
}

Coords hilbert_decode(std::uint64_t key) {
  std::uint32_t X[kDims];
  key_to_transpose(key, X);
  transpose_to_axes(X);
  return {X[0], X[1], X[2]};
}

}  // namespace bonsai::sfc
