// Fixed-size worker thread pool.
//
// The pool is the execution substrate for the Device abstraction (see
// device.hpp). It intentionally supports exactly the two patterns the tree
// pipeline needs: fire-and-wait task batches and counter-based parallel_for.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace bonsai {

class ThreadPool {
 public:
  // `num_threads == 0` selects std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  // Enqueue one task. Tasks must not throw (they run on worker threads); the
  // pool terminates on escaped exceptions by design.
  void submit(std::function<void()> task);

  // Enqueue one task and obtain a completion future — the completion signal
  // the async rank executor builds on. The future becomes ready when the
  // task returns; like submit(), the task must not throw.
  std::future<void> submit_task(std::function<void()> task);

  // Block until every submitted task has finished.
  void wait_idle();

  // Run fn(i) for i in [0, n), dynamically chunked over the workers, and
  // block until complete. fn must be safe to invoke concurrently.
  //
  // Deadlock safety: when called from one of this pool's own worker threads
  // (a nested parallel_for would block in wait_idle while occupying a thread
  // the queue needs — guaranteed fatal on a one-worker pool, i.e. any 1-core
  // host), or when the pool has no workers, the loop runs inline on the
  // caller instead.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t chunk = 0);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace bonsai
