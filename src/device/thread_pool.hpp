// Fixed-size worker thread pool.
//
// The pool is the execution substrate for the Device abstraction (see
// device.hpp). It intentionally supports exactly the two patterns the tree
// pipeline needs: fire-and-wait task batches and counter-based parallel_for.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace bonsai {

class ThreadPool {
 public:
  // `num_threads == 0` selects std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  // Enqueue one task. Tasks must not throw (they run on worker threads); the
  // pool terminates on escaped exceptions by design.
  void submit(std::function<void()> task);

  // Block until every submitted task has finished.
  void wait_idle();

  // Run fn(i) for i in [0, n), dynamically chunked over the workers, and
  // block until complete. fn must be safe to invoke concurrently.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t chunk = 0);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace bonsai
