#include "device/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

namespace bonsai {

namespace {

// Set for the duration of worker_loop so parallel_for can detect that it is
// being re-entered from inside its own pool.
thread_local const ThreadPool* tls_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

std::future<void> ThreadPool::submit_task(std::function<void()> task) {
  auto packaged = std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> done = packaged->get_future();
  submit([packaged] { (*packaged)(); });
  return done;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                              std::size_t chunk) {
  if (n == 0) return;
  if (workers_.empty() || tls_worker_pool == this) {
    // Inline fallback (see header): nested invocation or worker-less pool.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  if (chunk == 0) {
    // ~4 chunks per worker balances load without excessive queue churn.
    chunk = std::max<std::size_t>(1, n / (4 * num_threads() + 1));
  }
  // Shared cursor: each worker grabs the next chunk until exhausted.
  auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t num_tasks = std::min(num_threads(), (n + chunk - 1) / chunk);
  for (std::size_t t = 0; t < num_tasks; ++t) {
    submit([cursor, n, chunk, &fn] {
      for (;;) {
        const std::size_t begin = cursor->fetch_add(chunk);
        if (begin >= n) return;
        const std::size_t end = std::min(n, begin + chunk);
        for (std::size_t i = begin; i < end; ++i) fn(i);
      }
    });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  tls_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace bonsai
