// The "GPU" of this reproduction.
//
// Bonsai's defining design decision (§III-A) is that *every* stage of the
// tree algorithm — key sort, tree construction, multipole computation and the
// tree walk — executes on the device, leaving the CPU only communication and
// orchestration. Device reproduces that architecture on host threads: it owns
// a worker pool (the "SMs"), dispatches target groups the way Bonsai
// dispatches warps, and is the only component allowed to touch particle data
// during a step. The interaction counts it records feed the flops accounting
// in util/flops.hpp, the same force-only convention the paper's performance
// numbers use (§VI-A).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "device/thread_pool.hpp"
#include "sfc/keys.hpp"
#include "tree/octree.hpp"
#include "tree/particle.hpp"
#include "tree/traverse.hpp"
#include "util/flops.hpp"

namespace bonsai {

// Threads per warp on the hardware the paper targets (footnote 4).
inline constexpr int kWarpSize = 32;

class Device {
 public:
  // `num_threads == 0` uses all hardware threads.
  explicit Device(std::size_t num_threads = 0)
      : pool_(std::make_unique<ThreadPool>(num_threads)) {}

  std::size_t num_threads() const { return pool_->num_threads(); }
  ThreadPool& pool() { return *pool_; }

  // Rank id stamped onto this device's trace spans (-1 = untagged).
  void set_trace_rank(int rank) { trace_rank_ = rank; }

  // --- Pipeline stages (Table II rows) -----------------------------------

  // "Sorting SFC": compute keys in parallel and sort the particle arrays.
  void sort_particles(ParticleSet& parts, const sfc::KeySpace& space);

  // "Tree-construction": build the octree over the sorted particles.
  void build_tree(const ParticleSet& parts, Octree& tree,
                  int nleaf = Octree::kDefaultNLeaf);

  // "Tree-properties": boxes, multipoles and MAC radii.
  void compute_properties(const ParticleSet& parts, Octree& tree, double theta);

  // "Compute gravity": walk `src` for all groups in parallel, accumulating
  // accelerations into `targets`. Groups are dispatched across workers the
  // way warps are scheduled onto SMs. Each worker walks its group into a
  // thread-local InteractionQueue and `config.backend` drains the staged
  // batches (tree/kernel_backend.hpp); emits a `gravity.eval` trace span on
  // the calling thread.
  InteractionStats compute_forces(const TreeView& src, ParticleSet& targets,
                                  std::span<const TargetGroup> groups,
                                  const TraversalConfig& config, bool self);

  // Generic data-parallel loop (integration, diagnostics, key generation).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
    pool_->parallel_for(n, fn);
  }

 private:
  std::unique_ptr<ThreadPool> pool_;
  int trace_rank_ = -1;
};

}  // namespace bonsai
