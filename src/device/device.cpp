#include "device/device.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>

#include "util/trace.hpp"

namespace bonsai {

void Device::sort_particles(ParticleSet& parts, const sfc::KeySpace& space) {
  const std::size_t n = parts.size();
  if (n == 0) return;

  // Key generation is embarrassingly parallel.
  pool_->parallel_for(n, [&](std::size_t i) { parts.key[i] = space.key(parts.pos(i)); });

  // Parallel chunk sort + serial multiway merge of the permutation.
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  auto cmp = [&](std::uint32_t a, std::uint32_t b) {
    return parts.key[a] < parts.key[b] ||
           (parts.key[a] == parts.key[b] && parts.id[a] < parts.id[b]);
  };

  const std::size_t chunks = std::max<std::size_t>(1, pool_->num_threads());
  const std::size_t chunk_len = (n + chunks - 1) / chunks;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  for (std::size_t b = 0; b < n; b += chunk_len)
    ranges.emplace_back(b, std::min(n, b + chunk_len));

  pool_->parallel_for(ranges.size(), [&](std::size_t r) {
    std::sort(perm.begin() + static_cast<std::ptrdiff_t>(ranges[r].first),
              perm.begin() + static_cast<std::ptrdiff_t>(ranges[r].second), cmp);
  });

  // Iterative pairwise in-place merges (log2(chunks) passes).
  for (std::size_t step = 1; step < ranges.size(); step *= 2) {
    for (std::size_t r = 0; r + step < ranges.size(); r += 2 * step) {
      const auto begin = perm.begin() + static_cast<std::ptrdiff_t>(ranges[r].first);
      const auto mid = perm.begin() + static_cast<std::ptrdiff_t>(ranges[r + step].first);
      const auto end =
          perm.begin() +
          static_cast<std::ptrdiff_t>(ranges[std::min(r + 2 * step, ranges.size()) - 1].second);
      std::inplace_merge(begin, mid, end, cmp);
    }
  }

  parts.apply_permutation(perm);
}

void Device::build_tree(const ParticleSet& parts, Octree& tree, int nleaf) {
  tree.build(parts, nleaf);
}

void Device::compute_properties(const ParticleSet& parts, Octree& tree, double theta) {
  tree.compute_properties(parts, theta);
}

InteractionStats Device::compute_forces(const TreeView& src, ParticleSet& targets,
                                        std::span<const TargetGroup> groups,
                                        const TraversalConfig& config, bool self) {
  // Span on the calling (lane/driver) thread: cluster workers only drain the
  // driver thread's ring, so pool-thread spans would be invisible there.
  trace::ScopedSpan span("gravity.eval", trace_rank_);

  // Each group writes a disjoint particle range, so workers need no locking
  // on the outputs; stats merge under a mutex at the end of each chunk. Each
  // pool thread keeps one staging queue alive across groups (and calls) so
  // the SoA buffers are allocated once per thread, not once per group.
  std::mutex stats_mutex;
  InteractionStats total;
  pool_->parallel_for(groups.size(), [&](std::size_t g) {
    thread_local InteractionQueue queue;
    const InteractionStats s =
        traverse_one_group_batched(src, targets, groups[g], config, self, queue);
    std::lock_guard lock(stats_mutex);
    total += s;
  });
  span.set_bytes(static_cast<std::uint64_t>(total.p2p + total.p2c));
  return total;
}

}  // namespace bonsai
