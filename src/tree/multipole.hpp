// Multipole moments of tree cells: monopole (mass + centre of mass) and the
// raw second-moment quadrupole tensor Q = sum_j m_j r_j r_j^T about the cell
// COM, which is exactly the Q appearing in Eq. (1)-(2) of the paper.
#pragma once

#include <array>

#include "util/vec3.hpp"

namespace bonsai {

// Symmetric 3x3 quadrupole tensor stored as 6 unique entries.
struct Quadrupole {
  // Order: xx, xy, xz, yy, yz, zz.
  std::array<double, 6> q{};

  double xx() const { return q[0]; }
  double xy() const { return q[1]; }
  double xz() const { return q[2]; }
  double yy() const { return q[3]; }
  double yz() const { return q[4]; }
  double zz() const { return q[5]; }

  double trace() const { return q[0] + q[3] + q[5]; }

  // Matrix-vector product Q * v.
  Vec3d mul(const Vec3d& v) const {
    return {q[0] * v.x + q[1] * v.y + q[2] * v.z,
            q[1] * v.x + q[3] * v.y + q[4] * v.z,
            q[2] * v.x + q[4] * v.y + q[5] * v.z};
  }

  // Accumulate m * d d^T.
  void add_outer(const Vec3d& d, double m) {
    q[0] += m * d.x * d.x;
    q[1] += m * d.x * d.y;
    q[2] += m * d.x * d.z;
    q[3] += m * d.y * d.y;
    q[4] += m * d.y * d.z;
    q[5] += m * d.z * d.z;
  }

  Quadrupole& operator+=(const Quadrupole& o) {
    for (int i = 0; i < 6; ++i) q[i] += o.q[i];
    return *this;
  }
};

// Monopole + quadrupole of one cell.
struct Multipole {
  double mass = 0.0;
  Vec3d com{};        // centre of mass
  Quadrupole quad{};  // second moment about com

  // Merge a child multipole whose moments are taken about child.com.
  // Requires `com` and `mass` of *this* to be final before shifting, so the
  // combine runs in two passes (accumulate mass/com, then shift quadrupoles);
  // see combine() below.
  void add_shifted(const Multipole& child) {
    const Vec3d d = child.com - com;
    quad += child.quad;
    quad.add_outer(d, child.mass);
  }
};

}  // namespace bonsai
