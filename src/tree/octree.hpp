// Compact sparse octree built over SFC-sorted particles.
//
// Because particle keys are hierarchical SFC keys, the children of a cell are
// eight contiguous key sub-ranges; construction is therefore a sequence of
// binary searches over the sorted key array — the same data-parallel
// formulation Bonsai uses on the GPU. Cells are split until they hold at most
// `nleaf` particles (the paper uses 16).
//
// The same node layout is reused for received Local Essential Trees: a LET
// contains Internal nodes, ParticleLeaf nodes (with particle payload) and
// MultipoleLeaf nodes (pruned branches that the receiving domain is
// guaranteed to accept via the MAC).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sfc/keys.hpp"
#include "tree/multipole.hpp"
#include "tree/particle.hpp"
#include "util/aabb.hpp"

namespace bonsai {

enum class NodeKind : std::uint8_t {
  kInternal,       // has children
  kParticleLeaf,   // owns a particle range
  kMultipoleLeaf,  // pruned branch: only the multipole is available
};

struct TreeNode {
  sfc::Key key_begin = 0;          // first SFC key of the cell
  sfc::Key key_end = 0;            // one past the last key of the cell
  std::uint32_t part_begin = 0;    // particle range [part_begin, part_end)
  std::uint32_t part_end = 0;
  std::int32_t first_child = -1;   // children are contiguous node indices
  std::uint8_t num_children = 0;
  std::uint8_t level = 0;          // octree depth (0 = root)
  NodeKind kind = NodeKind::kParticleLeaf;

  AABB box;        // tight bounding box of contained particles
  Multipole mp;    // monopole + quadrupole about the COM
  double rcrit = 0.0;  // MAC opening radius: l/theta + delta (squared compare)

  bool is_leaf() const { return kind != NodeKind::kInternal; }
  std::uint32_t count() const { return part_end - part_begin; }
};

// Read-only view of a tree plus its source particle arrays; the traversal
// accepts any TreeView, so local trees and received LETs share one code path.
// Note: a LET view can carry zero particles yet still exert force (pruned
// branches are pure multipoles), so emptiness is "no nodes", not "no
// particles".
struct TreeView {
  std::span<const TreeNode> nodes;
  std::span<const double> x, y, z, m;

  const TreeNode& root() const { return nodes[0]; }
  bool empty() const { return nodes.empty(); }
};

class Octree {
 public:
  // Leaf capacity used in the paper ([9], §I).
  static constexpr int kDefaultNLeaf = 16;

  // Build the topology from particles whose `key` array is computed and
  // sorted ascending (see sort_by_keys). Particles are not copied: nodes
  // store index ranges into `parts`.
  void build(const ParticleSet& parts, int nleaf = kDefaultNLeaf);

  // Compute tight boxes, multipoles and MAC radii; `theta` is the opening
  // angle. Must be called after build() and before traversal.
  void compute_properties(const ParticleSet& parts, double theta);

  std::span<const TreeNode> nodes() const { return nodes_; }
  std::vector<TreeNode>& mutable_nodes() { return nodes_; }
  const TreeNode& root() const { return nodes_.front(); }
  bool empty() const { return nodes_.empty() || nodes_.front().count() == 0; }
  std::size_t num_leaves() const { return num_leaves_; }
  int max_depth() const { return max_depth_; }

  TreeView view(const ParticleSet& parts) const {
    return {nodes_, parts.x, parts.y, parts.z, parts.mass};
  }

  // Structural invariants: child pointers forward and in range, each internal
  // node's children partition its particle range and nest inside its key
  // range, leaves childless. Throws CheckError on violation. build() runs
  // this automatically in Debug and sanitizer builds.
  void check_invariants() const;

 private:
  std::vector<TreeNode> nodes_;
  std::size_t num_leaves_ = 0;
  int max_depth_ = 0;
};

// Recompute rcrit for already-built properties under a different theta
// (cheap; used by the theta ablation).
void set_opening_angle(std::vector<TreeNode>& nodes, double theta);

}  // namespace bonsai
