#include "tree/direct.hpp"

#include "tree/kernels.hpp"

namespace bonsai {

InteractionStats direct_forces(ParticleSet& parts, double eps) {
  const std::size_t n = parts.size();
  const double eps2 = eps * eps;
  InteractionStats stats;
  for (std::size_t i = 0; i < n; ++i) {
    ForceAccum<double> f{};
    const double tx = parts.x[i], ty = parts.y[i], tz = parts.z[i];
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      pp_kernel<double>(tx, ty, tz, parts.x[j], parts.y[j], parts.z[j], parts.mass[j],
                        eps2, f);
    }
    parts.ax[i] = f.ax;
    parts.ay[i] = f.ay;
    parts.az[i] = f.az;
    parts.pot[i] = f.pot;
    stats.p2p += n - 1;
    stats.p2p_padded += n - 1;
  }
  return stats;
}

InteractionStats direct_forces_between(const ParticleSet& sources, ParticleSet& targets,
                                       double eps) {
  const double eps2 = eps * eps;
  InteractionStats stats;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    ForceAccum<double> f{};
    const double tx = targets.x[i], ty = targets.y[i], tz = targets.z[i];
    for (std::size_t j = 0; j < sources.size(); ++j) {
      pp_kernel<double>(tx, ty, tz, sources.x[j], sources.y[j], sources.z[j],
                        sources.mass[j], eps2, f);
    }
    targets.ax[i] += f.ax;
    targets.ay[i] += f.ay;
    targets.az[i] += f.az;
    targets.pot[i] += f.pot;
    stats.p2p += sources.size();
    stats.p2p_padded += sources.size();
  }
  return stats;
}

InteractionStats direct_forces_subset(ParticleSet& parts, double eps,
                                      std::span<const std::uint32_t> target_indices) {
  const std::size_t n = parts.size();
  const double eps2 = eps * eps;
  InteractionStats stats;
  for (const std::uint32_t i : target_indices) {
    ForceAccum<double> f{};
    const double tx = parts.x[i], ty = parts.y[i], tz = parts.z[i];
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      pp_kernel<double>(tx, ty, tz, parts.x[j], parts.y[j], parts.z[j], parts.mass[j],
                        eps2, f);
    }
    parts.ax[i] = f.ax;
    parts.ay[i] = f.ay;
    parts.az[i] = f.az;
    parts.pot[i] = f.pot;
    stats.p2p += n - 1;
    stats.p2p_padded += n - 1;
  }
  return stats;
}

}  // namespace bonsai
