// Force kernels, matching §VI-A of the paper.
//
// Particle-particle (p-p), Plummer-softened monopole:
//     phi_i -= m_j / sqrt(|r_ij|^2 + eps^2)
//     a_i   += m_j r_ij / (|r_ij|^2 + eps^2)^{3/2}
// counted as 23 flops (4 sub, 3 mul, 6 fma, 1 rsqrt @ 4 flops).
//
// Particle-cell (p-c) with quadrupole corrections, Eq. (1)-(2):
//     phi_i = -m/r + (1/2) tr(Q)/r^3 - (3/2) (r^T Q r)/r^5
//     a_i   =  m r/r^3 - (3/2) tr(Q) r/r^5 - 3 Q r/r^5 + (15/2)(r^T Q r) r/r^7
// with r = r_j - r_i, counted as 65 flops.
//
// Kernels are templated so the performance paths can run in float (the
// paper's single precision) and verification in double.
#pragma once

#include <cmath>

#include "tree/multipole.hpp"
#include "util/vec3.hpp"

namespace bonsai {

// Accumulator for one target particle.
template <typename T>
struct ForceAccum {
  T ax{}, ay{}, az{}, pot{};
};

// One p-p interaction: source particle (sx,sy,sz,sm) acting on target at
// (tx,ty,tz). eps2 is the squared Plummer softening length.
template <typename T>
inline void pp_kernel(T tx, T ty, T tz, T sx, T sy, T sz, T sm, T eps2,
                      ForceAccum<T>& f) {
  const T dx = sx - tx;  // r_ij = r_j - r_i
  const T dy = sy - ty;
  const T dz = sz - tz;
  const T r2 = dx * dx + dy * dy + dz * dz + eps2;
  const T rinv = T(1) / std::sqrt(r2);
  const T rinv3 = rinv * rinv * rinv;
  const T mr3 = sm * rinv3;
  f.ax += mr3 * dx;
  f.ay += mr3 * dy;
  f.az += mr3 * dz;
  f.pot -= sm * rinv;
}

// One p-c interaction with quadrupole corrections (double precision form used
// by the traversal; a float mirror exists for the device benchmark kernels).
inline void pc_kernel(const Vec3d& target, const Multipole& cell, double eps2,
                      ForceAccum<double>& f) {
  const Vec3d dr = cell.com - target;  // r = r_j - r_i
  const double r2 = norm2(dr) + eps2;
  const double rinv = 1.0 / std::sqrt(r2);
  const double rinv2 = rinv * rinv;
  const double rinv3 = rinv * rinv2;
  const double rinv5 = rinv3 * rinv2;
  const double rinv7 = rinv5 * rinv2;

  const Vec3d Qr = cell.quad.mul(dr);
  const double rQr = dot(dr, Qr);
  const double trQ = cell.quad.trace();

  f.pot += -cell.mass * rinv + 0.5 * trQ * rinv3 - 1.5 * rQr * rinv5;

  const double scalar =
      cell.mass * rinv3 - 1.5 * trQ * rinv5 + 7.5 * rQr * rinv7;
  f.ax += scalar * dr.x - 3.0 * rinv5 * Qr.x;
  f.ay += scalar * dr.y - 3.0 * rinv5 * Qr.y;
  f.az += scalar * dr.z - 3.0 * rinv5 * Qr.z;
}

// Monopole-only p-c form (used to demonstrate the accuracy gain of the
// quadrupole term in tests and the theta ablation).
inline void pc_kernel_monopole(const Vec3d& target, const Multipole& cell, double eps2,
                               ForceAccum<double>& f) {
  pp_kernel<double>(target.x, target.y, target.z, cell.com.x, cell.com.y, cell.com.z,
                    cell.mass, eps2, f);
}

}  // namespace bonsai
