#include "tree/kernel_backend.hpp"

#include <cmath>

#include "tree/kernels.hpp"
#include "util/check.hpp"

namespace bonsai {

namespace {

// Inert padding lane: zero mass at a far-away position, so padded lanes
// contribute exactly zero without dividing by zero (finite in float too).
constexpr double kPadPos = 1e15;

// Source index that never equals a target index: non-self walks and padding
// lanes use it so the self-mask compare stays uniform and never fires.
constexpr std::uint32_t kInvalidSource = 0xffffffffu;

std::size_t pad_to(std::size_t n) {
  return (n + kKernelBatchPad - 1) / kKernelBatchPad * kKernelBatchPad;
}

}  // namespace

const char* kernel_backend_name(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar: return "scalar";
    case KernelBackend::kSimd: return "simd";
    case KernelBackend::kSimdFloat: return "simd-float";
  }
  return "unknown";
}

std::optional<KernelBackend> kernel_backend_from_name(std::string_view name) {
  if (name == "scalar") return KernelBackend::kScalar;
  if (name == "simd") return KernelBackend::kSimd;
  if (name == "simd-float") return KernelBackend::kSimdFloat;
  return std::nullopt;
}

void InteractionQueue::begin_walk(const TreeView& src, ParticleSet& targets,
                                  const WalkParams& params, KernelBackend backend,
                                  std::uint32_t target_begin, std::uint32_t target_end) {
  BNS_CHECK(targets_ == nullptr, "finish_walk() must close the previous walk");
  src_ = src;
  targets_ = &targets;
  params_ = params;
  backend_ = backend;
  target_begin_ = target_begin;
  target_end_ = target_end;
  cell_run_begin_ = static_cast<std::uint32_t>(cx_.size());
  leaf_run_begin_ = static_cast<std::uint32_t>(sx_.size());
}

void InteractionQueue::push_cell(const TreeNode& node) {
  if (cx_.size() + sx_.size() >= capacity_) flush();
  const Multipole& mp = node.mp;
  cx_.push_back(mp.com.x);
  cy_.push_back(mp.com.y);
  cz_.push_back(mp.com.z);
  cm_.push_back(mp.mass);
  for (int k = 0; k < 6; ++k) cq_[k].push_back(params_.quadrupole ? mp.quad.q[k] : 0.0);
  if (backend_ == KernelBackend::kSimdFloat) {
    fcx_.push_back(static_cast<float>(mp.com.x));
    fcy_.push_back(static_cast<float>(mp.com.y));
    fcz_.push_back(static_cast<float>(mp.com.z));
    fcm_.push_back(static_cast<float>(mp.mass));
    for (int k = 0; k < 6; ++k)
      fcq_[k].push_back(params_.quadrupole ? static_cast<float>(mp.quad.q[k]) : 0.0f);
  }
}

void InteractionQueue::push_leaf(const TreeNode& leaf) {
  const std::size_t count = leaf.part_end - leaf.part_begin;
  if (count == 0) return;
  if (cx_.size() + sx_.size() + count >= capacity_ &&
      (sx_.size() > leaf_run_begin_ || cx_.size() > cell_run_begin_ ||
       !cell_batches_.empty() || !leaf_batches_.empty()))
    flush();
  for (std::uint32_t j = leaf.part_begin; j < leaf.part_end; ++j) {
    sx_.push_back(src_.x[j]);
    sy_.push_back(src_.y[j]);
    sz_.push_back(src_.z[j]);
    sm_.push_back(src_.m[j]);
    sidx_.push_back(params_.self ? j : kInvalidSource);
    if (backend_ == KernelBackend::kSimdFloat) {
      fsx_.push_back(static_cast<float>(src_.x[j]));
      fsy_.push_back(static_cast<float>(src_.y[j]));
      fsz_.push_back(static_cast<float>(src_.z[j]));
      fsm_.push_back(static_cast<float>(src_.m[j]));
    }
  }
}

void InteractionQueue::pad_cells() {
  const std::size_t padded = pad_to(cx_.size());
  while (cx_.size() < padded) {
    cx_.push_back(kPadPos);
    cy_.push_back(kPadPos);
    cz_.push_back(kPadPos);
    cm_.push_back(0.0);
    for (auto& q : cq_) q.push_back(0.0);
    if (backend_ == KernelBackend::kSimdFloat) {
      fcx_.push_back(static_cast<float>(kPadPos));
      fcy_.push_back(static_cast<float>(kPadPos));
      fcz_.push_back(static_cast<float>(kPadPos));
      fcm_.push_back(0.0f);
      for (auto& q : fcq_) q.push_back(0.0f);
    }
  }
}

void InteractionQueue::pad_leaves() {
  const std::size_t padded = pad_to(sx_.size());
  while (sx_.size() < padded) {
    sx_.push_back(kPadPos);
    sy_.push_back(kPadPos);
    sz_.push_back(kPadPos);
    sm_.push_back(0.0);
    sidx_.push_back(kInvalidSource);
    if (backend_ == KernelBackend::kSimdFloat) {
      fsx_.push_back(static_cast<float>(kPadPos));
      fsy_.push_back(static_cast<float>(kPadPos));
      fsz_.push_back(static_cast<float>(kPadPos));
      fsm_.push_back(0.0f);
    }
  }
}

void InteractionQueue::close_cell_run() {
  const std::uint32_t end = static_cast<std::uint32_t>(cx_.size());
  if (end == cell_run_begin_) return;
  Batch b;
  b.target_begin = target_begin_;
  b.target_end = target_end_;
  b.begin = cell_run_begin_;
  b.end = end;
  if (backend_ == KernelBackend::kScalar) {
    b.padded_end = end;
  } else {
    pad_cells();
    b.padded_end = static_cast<std::uint32_t>(cx_.size());
  }
  const std::uint64_t nt = b.target_end - b.target_begin;
  const std::uint64_t useful = static_cast<std::uint64_t>(b.end - b.begin) * nt;
  stats_.p2c += useful;
  stats_.p2c_padded += static_cast<std::uint64_t>(b.padded_end - b.begin) * nt;
  stats_.pc_batches += 1;
  stats_.observe_batch(useful);
  cell_batches_.push_back(b);
  cell_run_begin_ = static_cast<std::uint32_t>(cx_.size());
}

void InteractionQueue::close_leaf_run() {
  const std::uint32_t end = static_cast<std::uint32_t>(sx_.size());
  if (end == leaf_run_begin_) return;
  Batch b;
  b.target_begin = target_begin_;
  b.target_end = target_end_;
  b.begin = leaf_run_begin_;
  b.end = end;
  if (params_.self) {
    // Self-pairs in this run: staged sources whose global index falls inside
    // the target range. They are masked lanes, not useful interactions.
    for (std::uint32_t s = b.begin; s < b.end; ++s)
      if (sidx_[s] >= target_begin_ && sidx_[s] < target_end_ &&
          sidx_[s] != kInvalidSource)
        ++b.self_pairs;
  }
  if (backend_ == KernelBackend::kScalar) {
    b.padded_end = end;
  } else {
    pad_leaves();
    b.padded_end = static_cast<std::uint32_t>(sx_.size());
  }
  const std::uint64_t nt = b.target_end - b.target_begin;
  const std::uint64_t useful =
      static_cast<std::uint64_t>(b.end - b.begin) * nt - b.self_pairs;
  stats_.p2p += useful;
  // The scalar replay skips self-pairs the way the inline walk does; the SIMD
  // paths evaluate every padded lane and mask, so the pad count includes both
  // the alignment lanes and the masked self-pairs.
  stats_.p2p_padded += backend_ == KernelBackend::kScalar
                           ? useful
                           : static_cast<std::uint64_t>(b.padded_end - b.begin) * nt;
  stats_.pp_batches += 1;
  stats_.observe_batch(useful);
  leaf_batches_.push_back(b);
  leaf_run_begin_ = static_cast<std::uint32_t>(sx_.size());
}

InteractionStats InteractionQueue::finish_walk() {
  BNS_CHECK(targets_ != nullptr, "finish_walk() without begin_walk()");
  close_cell_run();
  close_leaf_run();
  flush();
  targets_ = nullptr;
  InteractionStats out = stats_;
  stats_ = InteractionStats{};
  return out;
}

void InteractionQueue::flush() {
  if (targets_ == nullptr) return;
  close_cell_run();
  close_leaf_run();
  for (const Batch& b : cell_batches_) drain_cell_batch(b);
  for (const Batch& b : leaf_batches_) drain_leaf_batch(b);
  cell_batches_.clear();
  leaf_batches_.clear();
  cx_.clear();
  cy_.clear();
  cz_.clear();
  cm_.clear();
  for (auto& q : cq_) q.clear();
  fcx_.clear();
  fcy_.clear();
  fcz_.clear();
  fcm_.clear();
  for (auto& q : fcq_) q.clear();
  sx_.clear();
  sy_.clear();
  sz_.clear();
  sm_.clear();
  sidx_.clear();
  fsx_.clear();
  fsy_.clear();
  fsz_.clear();
  fsm_.clear();
  cell_run_begin_ = 0;
  leaf_run_begin_ = 0;
}

void InteractionQueue::drain_cell_batch(const Batch& b) const {
  ParticleSet& t = *targets_;
  const double eps2 = params_.eps2;

  if (backend_ == KernelBackend::kScalar) {
    // Straight replay of the inline walk's kernels, in staged (stack) order:
    // cell-outer, target-inner, exactly like apply_cell once did.
    for (std::uint32_t j = b.begin; j < b.end; ++j) {
      Multipole mp;
      mp.mass = cm_[j];
      mp.com = {cx_[j], cy_[j], cz_[j]};
      for (int k = 0; k < 6; ++k) mp.quad.q[k] = cq_[k][j];
      for (std::uint32_t i = b.target_begin; i < b.target_end; ++i) {
        ForceAccum<double> f{};
        if (params_.quadrupole) {
          pc_kernel(t.pos(i), mp, eps2, f);
        } else {
          pc_kernel_monopole(t.pos(i), mp, eps2, f);
        }
        t.ax[i] += f.ax;
        t.ay[i] += f.ay;
        t.az[i] += f.az;
        t.pot[i] += f.pot;
      }
    }
    return;
  }

  if (backend_ == KernelBackend::kSimd) {
    const double* const cx = cx_.data();
    const double* const cy = cy_.data();
    const double* const cz = cz_.data();
    const double* const cm = cm_.data();
    const double* const q0 = cq_[0].data();
    const double* const q1 = cq_[1].data();
    const double* const q2 = cq_[2].data();
    const double* const q3 = cq_[3].data();
    const double* const q4 = cq_[4].data();
    const double* const q5 = cq_[5].data();
    for (std::uint32_t i = b.target_begin; i < b.target_end; ++i) {
      const double tx = t.x[i], ty = t.y[i], tz = t.z[i];
      double ax = 0.0, ay = 0.0, az = 0.0, pot = 0.0;
#pragma omp simd reduction(+ : ax, ay, az, pot)
      for (std::uint32_t j = b.begin; j < b.padded_end; ++j) {
        const double dx = cx[j] - tx;
        const double dy = cy[j] - ty;
        const double dz = cz[j] - tz;
        const double r2 = dx * dx + dy * dy + dz * dz + eps2;
        const double rinv = 1.0 / std::sqrt(r2);
        const double rinv2 = rinv * rinv;
        const double rinv3 = rinv * rinv2;
        const double rinv5 = rinv3 * rinv2;
        const double rinv7 = rinv5 * rinv2;
        const double qx = q0[j] * dx + q1[j] * dy + q2[j] * dz;
        const double qy = q1[j] * dx + q3[j] * dy + q4[j] * dz;
        const double qz = q2[j] * dx + q4[j] * dy + q5[j] * dz;
        const double rqr = dx * qx + dy * qy + dz * qz;
        const double trq = q0[j] + q3[j] + q5[j];
        pot += -cm[j] * rinv + 0.5 * trq * rinv3 - 1.5 * rqr * rinv5;
        const double s = cm[j] * rinv3 - 1.5 * trq * rinv5 + 7.5 * rqr * rinv7;
        ax += s * dx - 3.0 * rinv5 * qx;
        ay += s * dy - 3.0 * rinv5 * qy;
        az += s * dz - 3.0 * rinv5 * qz;
      }
      t.ax[i] += ax;
      t.ay[i] += ay;
      t.az[i] += az;
      t.pot[i] += pot;
    }
    return;
  }

  // kSimdFloat: the paper's single-precision device arithmetic, accumulated
  // into the double target arrays once per batch.
  const float feps2 = static_cast<float>(eps2);
  const float* const cx = fcx_.data();
  const float* const cy = fcy_.data();
  const float* const cz = fcz_.data();
  const float* const cm = fcm_.data();
  const float* const q0 = fcq_[0].data();
  const float* const q1 = fcq_[1].data();
  const float* const q2 = fcq_[2].data();
  const float* const q3 = fcq_[3].data();
  const float* const q4 = fcq_[4].data();
  const float* const q5 = fcq_[5].data();
  for (std::uint32_t i = b.target_begin; i < b.target_end; ++i) {
    const float tx = static_cast<float>(t.x[i]);
    const float ty = static_cast<float>(t.y[i]);
    const float tz = static_cast<float>(t.z[i]);
    float ax = 0.0f, ay = 0.0f, az = 0.0f, pot = 0.0f;
#pragma omp simd reduction(+ : ax, ay, az, pot)
    for (std::uint32_t j = b.begin; j < b.padded_end; ++j) {
      const float dx = cx[j] - tx;
      const float dy = cy[j] - ty;
      const float dz = cz[j] - tz;
      const float r2 = dx * dx + dy * dy + dz * dz + feps2;
      const float rinv = 1.0f / std::sqrt(r2);
      const float rinv2 = rinv * rinv;
      const float rinv3 = rinv * rinv2;
      const float rinv5 = rinv3 * rinv2;
      const float rinv7 = rinv5 * rinv2;
      const float qx = q0[j] * dx + q1[j] * dy + q2[j] * dz;
      const float qy = q1[j] * dx + q3[j] * dy + q4[j] * dz;
      const float qz = q2[j] * dx + q4[j] * dy + q5[j] * dz;
      const float rqr = dx * qx + dy * qy + dz * qz;
      const float trq = q0[j] + q3[j] + q5[j];
      pot += -cm[j] * rinv + 0.5f * trq * rinv3 - 1.5f * rqr * rinv5;
      const float s = cm[j] * rinv3 - 1.5f * trq * rinv5 + 7.5f * rqr * rinv7;
      ax += s * dx - 3.0f * rinv5 * qx;
      ay += s * dy - 3.0f * rinv5 * qy;
      az += s * dz - 3.0f * rinv5 * qz;
    }
    t.ax[i] += static_cast<double>(ax);
    t.ay[i] += static_cast<double>(ay);
    t.az[i] += static_cast<double>(az);
    t.pot[i] += static_cast<double>(pot);
  }
}

void InteractionQueue::drain_leaf_batch(const Batch& b) const {
  ParticleSet& t = *targets_;
  const double eps2 = params_.eps2;

  if (backend_ == KernelBackend::kScalar) {
    for (std::uint32_t i = b.target_begin; i < b.target_end; ++i) {
      const double tx = t.x[i], ty = t.y[i], tz = t.z[i];
      ForceAccum<double> f{};
      for (std::uint32_t j = b.begin; j < b.end; ++j) {
        if (sidx_[j] == i) continue;  // exact self-interaction
        pp_kernel<double>(tx, ty, tz, sx_[j], sy_[j], sz_[j], sm_[j], eps2, f);
      }
      t.ax[i] += f.ax;
      t.ay[i] += f.ay;
      t.az[i] += f.az;
      t.pot[i] += f.pot;
    }
    return;
  }

  const std::uint32_t* const sidx = sidx_.data();

  if (backend_ == KernelBackend::kSimd) {
    const double* const sx = sx_.data();
    const double* const sy = sy_.data();
    const double* const sz = sz_.data();
    const double* const sm = sm_.data();
    for (std::uint32_t i = b.target_begin; i < b.target_end; ++i) {
      const double tx = t.x[i], ty = t.y[i], tz = t.z[i];
      double ax = 0.0, ay = 0.0, az = 0.0, pot = 0.0;
#pragma omp simd reduction(+ : ax, ay, az, pot)
      for (std::uint32_t j = b.begin; j < b.padded_end; ++j) {
        // Branch-free self-mask: the self lane gets zero mass and a biased
        // r2 so the rsqrt stays finite even at eps = 0.
        const double keep = sidx[j] == i ? 0.0 : 1.0;
        const double dx = sx[j] - tx;
        const double dy = sy[j] - ty;
        const double dz = sz[j] - tz;
        const double r2 = dx * dx + dy * dy + dz * dz + eps2 + (1.0 - keep);
        const double rinv = 1.0 / std::sqrt(r2);
        const double m = sm[j] * keep;
        const double mr3 = m * rinv * rinv * rinv;
        ax += mr3 * dx;
        ay += mr3 * dy;
        az += mr3 * dz;
        pot -= m * rinv;
      }
      t.ax[i] += ax;
      t.ay[i] += ay;
      t.az[i] += az;
      t.pot[i] += pot;
    }
    return;
  }

  const float feps2 = static_cast<float>(eps2);
  const float* const sx = fsx_.data();
  const float* const sy = fsy_.data();
  const float* const sz = fsz_.data();
  const float* const sm = fsm_.data();
  for (std::uint32_t i = b.target_begin; i < b.target_end; ++i) {
    const float tx = static_cast<float>(t.x[i]);
    const float ty = static_cast<float>(t.y[i]);
    const float tz = static_cast<float>(t.z[i]);
    float ax = 0.0f, ay = 0.0f, az = 0.0f, pot = 0.0f;
#pragma omp simd reduction(+ : ax, ay, az, pot)
    for (std::uint32_t j = b.begin; j < b.padded_end; ++j) {
      const float keep = sidx[j] == i ? 0.0f : 1.0f;
      const float dx = sx[j] - tx;
      const float dy = sy[j] - ty;
      const float dz = sz[j] - tz;
      const float r2 = dx * dx + dy * dy + dz * dz + feps2 + (1.0f - keep);
      const float rinv = 1.0f / std::sqrt(r2);
      const float m = sm[j] * keep;
      const float mr3 = m * rinv * rinv * rinv;
      ax += mr3 * dx;
      ay += mr3 * dy;
      az += mr3 * dz;
      pot -= m * rinv;
    }
    t.ax[i] += static_cast<double>(ax);
    t.ay[i] += static_cast<double>(ay);
    t.az[i] += static_cast<double>(az);
    t.pot[i] += static_cast<double>(pot);
  }
}

}  // namespace bonsai
