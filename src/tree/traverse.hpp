// Group-based Barnes-Hut tree walk.
//
// Targets are processed in groups of consecutive (SFC-sorted) particles, the
// CPU analogue of Bonsai's warp-cooperative CUDA kernel: one traversal is
// shared by the whole group, with the multipole acceptance criterion (MAC)
// evaluated against the group's bounding box. Accepted cells contribute
// particle-cell interactions; opened leaves contribute particle-particle
// interactions.
//
// Two evaluation modes share the same walk logic (identical MAC decisions,
// identical useful interaction counts):
//
//   * inline (traverse_one_group / traverse_groups): forces are evaluated as
//     interactions are discovered. Kept as the pre-PR-7 correctness
//     reference.
//   * batched (traverse_one_group_batched): the walk emits interaction lists
//     into an InteractionQueue and a pluggable kernel backend
//     (tree/kernel_backend.*) drains them in SoA batches — the paper's
//     traversal/evaluation split (§III-A) that turns the walk's output into
//     wide, regular FLOPs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tree/kernel_backend.hpp"
#include "tree/octree.hpp"
#include "tree/particle.hpp"
#include "util/flops.hpp"

namespace bonsai {

struct TraversalConfig {
  double theta = 0.4;       // opening angle (paper production value, §IV)
  double eps = 0.0;         // Plummer softening length
  int ncrit = 64;           // max particles per target group
  bool quadrupole = true;   // include quadrupole corrections in p-c kernels
  KernelBackend backend = KernelBackend::kSimd;  // batched-path force backend
};

// A contiguous range of target particles walked together.
struct TargetGroup {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
  AABB box;
};

// Partition [0, parts.size()) into groups of at most `ncrit` particles and
// compute their bounding boxes. Particles should be SFC-sorted so groups are
// spatially compact. An empty set yields no groups; `ncrit <= 0` is a
// contract violation and throws std::logic_error.
std::vector<TargetGroup> make_groups(const ParticleSet& parts, int ncrit);

// Walk `src` for every group, accumulating accelerations and potentials into
// the target set. If `self` is true, `src` references the same particle
// array as `targets` and exact self-interactions (same index) are skipped.
// Returns the interaction counts for performance accounting.
InteractionStats traverse_groups(const TreeView& src, ParticleSet& targets,
                                 std::span<const TargetGroup> groups,
                                 const TraversalConfig& config, bool self);

// Single-group walk (the unit of work the device scheduler dispatches).
InteractionStats traverse_one_group(const TreeView& src, ParticleSet& targets,
                                    const TargetGroup& group,
                                    const TraversalConfig& config, bool self);

// Single-group walk that emits interaction lists into `queue` instead of
// evaluating forces inline; `config.backend` drains the staged batches.
// Makes exactly the inline walk's MAC decisions, so useful interaction
// counts match traverse_one_group interaction for interaction.
InteractionStats traverse_one_group_batched(const TreeView& src, ParticleSet& targets,
                                            const TargetGroup& group,
                                            const TraversalConfig& config, bool self,
                                            InteractionQueue& queue);

// Batched walk over every group through one queue (convenience / tests).
InteractionStats traverse_groups_batched(const TreeView& src, ParticleSet& targets,
                                         std::span<const TargetGroup> groups,
                                         const TraversalConfig& config, bool self,
                                         InteractionQueue& queue);

// Reference per-particle (non-grouped) walk; slower but with a per-particle
// MAC, used in tests to bound the additional error of the group MAC.
InteractionStats traverse_single(const TreeView& src, ParticleSet& targets,
                                 std::uint32_t target_index,
                                 const TraversalConfig& config, bool self);

}  // namespace bonsai
