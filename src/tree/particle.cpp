#include "tree/particle.hpp"

#include <algorithm>
#include <numeric>

namespace bonsai {

std::vector<std::uint32_t> sort_by_keys(ParticleSet& parts, const sfc::KeySpace& space) {
  const std::size_t n = parts.size();
  for (std::size_t i = 0; i < n; ++i) parts.key[i] = space.key(parts.pos(i));

  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  std::sort(perm.begin(), perm.end(), [&](std::uint32_t a, std::uint32_t b) {
    return parts.key[a] < parts.key[b] || (parts.key[a] == parts.key[b] && parts.id[a] < parts.id[b]);
  });
  parts.apply_permutation(perm);
  return perm;
}

}  // namespace bonsai
