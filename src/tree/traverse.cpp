#include "tree/traverse.hpp"

#include <algorithm>

#include "tree/kernels.hpp"
#include "util/check.hpp"

namespace bonsai {

std::vector<TargetGroup> make_groups(const ParticleSet& parts, int ncrit) {
  BNS_CHECK(ncrit >= 1, "target groups need a positive capacity");
  if (parts.empty()) return {};
  const auto n = static_cast<std::uint32_t>(parts.size());
  std::vector<TargetGroup> groups;
  groups.reserve((n + ncrit - 1) / ncrit);
  for (std::uint32_t b = 0; b < n; b += static_cast<std::uint32_t>(ncrit)) {
    TargetGroup g;
    g.begin = b;
    g.end = std::min(n, b + static_cast<std::uint32_t>(ncrit));
    for (std::uint32_t i = g.begin; i < g.end; ++i) g.box.expand(parts.pos(i));
    groups.push_back(g);
  }
  return groups;
}

namespace {

// MAC: the cell may be used as a multipole if the minimum distance between
// the target region and the cell COM exceeds rcrit = l/theta + delta.
inline bool mac_accept(const AABB& target_region, const TreeNode& node) {
  return target_region.min_dist2(node.mp.com) > node.rcrit * node.rcrit;
}

inline bool mac_accept(const Vec3d& target, const TreeNode& node) {
  const Vec3d d = node.mp.com - target;
  return norm2(d) > node.rcrit * node.rcrit;
}

// Apply an accepted cell to every target in [begin, end).
inline void apply_cell(const TreeNode& node, ParticleSet& targets, std::uint32_t begin,
                       std::uint32_t end, double eps2, bool quadrupole,
                       InteractionStats& stats) {
  for (std::uint32_t i = begin; i < end; ++i) {
    ForceAccum<double> f{};
    if (quadrupole) {
      pc_kernel(targets.pos(i), node.mp, eps2, f);
    } else {
      pc_kernel_monopole(targets.pos(i), node.mp, eps2, f);
    }
    targets.ax[i] += f.ax;
    targets.ay[i] += f.ay;
    targets.az[i] += f.az;
    targets.pot[i] += f.pot;
  }
  stats.p2c += end - begin;
  stats.p2c_padded += end - begin;  // inline evaluation pads nothing
}

// Apply an opened leaf's particles to every target in [begin, end).
inline void apply_leaf(const TreeView& src, const TreeNode& leaf, ParticleSet& targets,
                       std::uint32_t begin, std::uint32_t end, double eps2, bool self,
                       InteractionStats& stats) {
  for (std::uint32_t i = begin; i < end; ++i) {
    ForceAccum<double> f{};
    const double tx = targets.x[i], ty = targets.y[i], tz = targets.z[i];
    std::uint64_t applied = 0;
    for (std::uint32_t j = leaf.part_begin; j < leaf.part_end; ++j) {
      if (self && j == i) continue;  // exact self-interaction
      pp_kernel<double>(tx, ty, tz, src.x[j], src.y[j], src.z[j], src.m[j], eps2, f);
      ++applied;
    }
    targets.ax[i] += f.ax;
    targets.ay[i] += f.ay;
    targets.az[i] += f.az;
    targets.pot[i] += f.pot;
    stats.p2p += applied;
    stats.p2p_padded += applied;
  }
}

}  // namespace

InteractionStats traverse_one_group(const TreeView& src, ParticleSet& targets,
                                    const TargetGroup& group,
                                    const TraversalConfig& config, bool self) {
  InteractionStats stats;
  if (src.empty() || group.begin == group.end) return stats;
  const double eps2 = config.eps * config.eps;

  std::vector<std::int32_t> stack;
  stack.push_back(0);
  while (!stack.empty()) {
    const TreeNode& node = src.nodes[static_cast<std::size_t>(stack.back())];
    stack.pop_back();
    // Only a particle leaf is skippable when empty: LET internal nodes carry
    // no opened particles of their own but still hold live children, and
    // multipole leaves carry none by construction.
    if (node.count() == 0 && node.kind == NodeKind::kParticleLeaf) continue;

    if (mac_accept(group.box, node)) {
      apply_cell(node, targets, group.begin, group.end, eps2, config.quadrupole, stats);
      continue;
    }
    switch (node.kind) {
      case NodeKind::kInternal:
        for (std::uint8_t c = 0; c < node.num_children; ++c)
          stack.push_back(node.first_child + c);
        break;
      case NodeKind::kParticleLeaf:
        apply_leaf(src, node, targets, group.begin, group.end, eps2, self, stats);
        break;
      case NodeKind::kMultipoleLeaf:
        // Pruned LET branch: the sender guaranteed the MAC holds for every
        // point of our domain, so the multipole is always usable.
        apply_cell(node, targets, group.begin, group.end, eps2, config.quadrupole, stats);
        break;
    }
  }
  return stats;
}

InteractionStats traverse_one_group_batched(const TreeView& src, ParticleSet& targets,
                                            const TargetGroup& group,
                                            const TraversalConfig& config, bool self,
                                            InteractionQueue& queue) {
  if (src.empty() || group.begin == group.end) return InteractionStats{};
  WalkParams params;
  params.eps2 = config.eps * config.eps;
  params.quadrupole = config.quadrupole;
  params.self = self;
  queue.begin_walk(src, targets, params, config.backend, group.begin, group.end);

  // Same stack discipline and MAC decisions as traverse_one_group; the only
  // difference is that accepted cells and opened leaves are staged instead of
  // evaluated on the spot.
  std::vector<std::int32_t> stack;
  stack.push_back(0);
  while (!stack.empty()) {
    const TreeNode& node = src.nodes[static_cast<std::size_t>(stack.back())];
    stack.pop_back();
    if (node.count() == 0 && node.kind == NodeKind::kParticleLeaf) continue;

    if (mac_accept(group.box, node)) {
      queue.push_cell(node);
      continue;
    }
    switch (node.kind) {
      case NodeKind::kInternal:
        for (std::uint8_t c = 0; c < node.num_children; ++c)
          stack.push_back(node.first_child + c);
        break;
      case NodeKind::kParticleLeaf:
        queue.push_leaf(node);
        break;
      case NodeKind::kMultipoleLeaf:
        queue.push_cell(node);
        break;
    }
  }
  return queue.finish_walk();
}

InteractionStats traverse_groups_batched(const TreeView& src, ParticleSet& targets,
                                         std::span<const TargetGroup> groups,
                                         const TraversalConfig& config, bool self,
                                         InteractionQueue& queue) {
  InteractionStats stats;
  for (const TargetGroup& g : groups)
    stats += traverse_one_group_batched(src, targets, g, config, self, queue);
  return stats;
}

InteractionStats traverse_groups(const TreeView& src, ParticleSet& targets,
                                 std::span<const TargetGroup> groups,
                                 const TraversalConfig& config, bool self) {
  InteractionStats stats;
  for (const TargetGroup& g : groups)
    stats += traverse_one_group(src, targets, g, config, self);
  return stats;
}

InteractionStats traverse_single(const TreeView& src, ParticleSet& targets,
                                 std::uint32_t target_index,
                                 const TraversalConfig& config, bool self) {
  InteractionStats stats;
  if (src.empty()) return stats;
  const double eps2 = config.eps * config.eps;
  const Vec3d tpos = targets.pos(target_index);

  std::vector<std::int32_t> stack;
  stack.push_back(0);
  while (!stack.empty()) {
    const TreeNode& node = src.nodes[static_cast<std::size_t>(stack.back())];
    stack.pop_back();
    if (node.count() == 0 && node.kind == NodeKind::kParticleLeaf) continue;

    const bool accept = node.kind == NodeKind::kMultipoleLeaf || mac_accept(tpos, node);
    if (accept) {
      apply_cell(node, targets, target_index, target_index + 1, eps2, config.quadrupole,
                 stats);
      continue;
    }
    if (node.kind == NodeKind::kInternal) {
      for (std::uint8_t c = 0; c < node.num_children; ++c)
        stack.push_back(node.first_child + c);
    } else {
      apply_leaf(src, node, targets, target_index, target_index + 1, eps2, self, stats);
    }
  }
  return stats;
}

}  // namespace bonsai
