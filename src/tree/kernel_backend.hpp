// Pluggable force-kernel backends draining staged interaction lists.
//
// This is the paper's traversal/evaluation split (§III-A, §VI-A): the group
// walk no longer evaluates forces inline but *emits* interaction lists —
// (target-group × accepted-cell) and (target-group × leaf-particle) records —
// into an InteractionQueue, and a kernel backend burns the staged batches
// down as wide, regular FLOPs over structure-of-arrays buffers. The same
// seam is where a CUDA/SYCL backend drops in later: the queue is the host
// side of the device interaction buffer, the drain is the kernel launch.
//
// Backends:
//   scalar     — replays today's pp_kernel/pc_kernel per staged interaction,
//                in staged order: the correctness reference.
//   simd       — dense double-precision SoA inner loops over padded batches
//                (#pragma omp simd with explicit reductions, so the loops
//                vectorize under strict FP semantics).
//   simd-float — the paper's single-precision device path: float sources and
//                float batch arithmetic, accumulated into the double target
//                arrays once per batch.
//
// Batches are padded to the SIMD width with inert lanes (zero mass, far-away
// position) and self-interactions are masked per lane instead of branched
// around, so the inner loops are branch-free. InteractionStats carries both
// the useful and the padded interaction counts (util/flops.hpp) so the
// Gflop/s accounting stays honest.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "tree/octree.hpp"
#include "tree/particle.hpp"
#include "util/flops.hpp"

namespace bonsai {

enum class KernelBackend : std::uint8_t {
  kScalar = 0,
  kSimd = 1,
  kSimdFloat = 2,
};

// Stable CLI / wire / report names: "scalar", "simd", "simd-float".
const char* kernel_backend_name(KernelBackend backend);
std::optional<KernelBackend> kernel_backend_from_name(std::string_view name);

// Lanes a batch is padded to. 8 doubles = one AVX-512 vector (two AVX2).
inline constexpr std::size_t kKernelBatchPad = 8;

// Per-walk parameters shared by every batch of one group walk.
struct WalkParams {
  double eps2 = 0.0;
  bool quadrupole = true;
  bool self = false;  // targets alias the source particle array
};

// Staging queue for one worker thread. Usage per target group:
//
//   queue.begin_walk(src, targets, params, backend, target_begin, target_end);
//   ... push_cell / push_leaf while walking ...
//   InteractionStats s = queue.finish_walk();
//
// Staged data persists across walks (one drain can cover several groups);
// when the staged source slots exceed `capacity` the queue flushes — drains
// every pending batch through the backend and resets the buffers — so the
// staging memory stays bounded no matter how deep a walk opens the tree.
class InteractionQueue {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 14;

  explicit InteractionQueue(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void begin_walk(const TreeView& src, ParticleSet& targets, const WalkParams& params,
                  KernelBackend backend, std::uint32_t target_begin,
                  std::uint32_t target_end);

  // Stage one MAC-accepted cell (internal node or multipole leaf) against the
  // current walk's target range.
  void push_cell(const TreeNode& node);

  // Stage an opened particle leaf's source particles against the current
  // walk's target range.
  void push_leaf(const TreeNode& leaf);

  // Close the current walk's batches, drain everything still staged and
  // return (and reset) the interaction statistics accumulated since
  // begin_walk. The queue is reusable afterwards.
  InteractionStats finish_walk();

  std::size_t capacity() const { return capacity_; }

 private:
  struct Batch {
    std::uint32_t target_begin = 0, target_end = 0;
    std::uint32_t begin = 0;         // staged-slot range [begin, end)
    std::uint32_t end = 0;           // useful slots
    std::uint32_t padded_end = 0;    // end of the padded range
    std::uint64_t self_pairs = 0;    // masked self-interactions (leaf batches)
  };

  void close_cell_run();
  void close_leaf_run();
  void flush();
  void drain_cell_batch(const Batch& b) const;
  void drain_leaf_batch(const Batch& b) const;
  void pad_cells();
  void pad_leaves();

  std::size_t capacity_;

  // Walk context (set by begin_walk).
  TreeView src_{};
  ParticleSet* targets_ = nullptr;
  WalkParams params_{};
  KernelBackend backend_ = KernelBackend::kSimd;
  std::uint32_t target_begin_ = 0, target_end_ = 0;
  std::uint32_t cell_run_begin_ = 0, leaf_run_begin_ = 0;

  // Staged cell SoA: COM, mass and the six unique quadrupole entries
  // (order xx, xy, xz, yy, yz, zz, matching Quadrupole::q).
  std::vector<double> cx_, cy_, cz_, cm_;
  std::vector<double> cq_[6];
  std::vector<float> fcx_, fcy_, fcz_, fcm_;
  std::vector<float> fcq_[6];

  // Staged leaf-particle SoA. sidx_ holds the source's global particle index
  // for self-masking; kInvalidSource for non-self walks and padding lanes.
  std::vector<double> sx_, sy_, sz_, sm_;
  std::vector<float> fsx_, fsy_, fsz_, fsm_;
  std::vector<std::uint32_t> sidx_;

  std::vector<Batch> cell_batches_, leaf_batches_;
  InteractionStats stats_{};
};

}  // namespace bonsai
