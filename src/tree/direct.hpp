// Direct O(N^2) force summation — the brute-force reference the tree code is
// validated against, and the "Direct N-body" baseline of Fig. 1.
#pragma once

#include <cstdint>
#include <span>

#include "tree/particle.hpp"
#include "util/flops.hpp"

namespace bonsai {

// All-pairs forces within one set (self-interactions skipped).
// Overwrites ax/ay/az/pot.
InteractionStats direct_forces(ParticleSet& parts, double eps);

// Forces exerted by `sources` on `targets` (accumulated, not overwritten).
// The sets must be disjoint particle populations.
InteractionStats direct_forces_between(const ParticleSet& sources, ParticleSet& targets,
                                       double eps);

// Forces on a subset of target indices only (for spot-check validation of
// large systems without paying the full N^2).
InteractionStats direct_forces_subset(ParticleSet& parts, double eps,
                                      std::span<const std::uint32_t> target_indices);

}  // namespace bonsai
