// Particle storage.
//
// ParticleSet is structure-of-arrays: the tree walk streams positions and
// masses contiguously (Per.16/Per.19 of the Core Guidelines: compact data,
// predictable access), and per-array access is what the GPU kernels the paper
// describes operate on. Particle is the array-of-structs view used for
// serialization (initial conditions exchange, domain migration, snapshots).
#pragma once

#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "sfc/keys.hpp"
#include "util/aabb.hpp"
#include "util/check.hpp"
#include "util/vec3.hpp"

namespace bonsai {

// Plain-old-data particle used on the wire and in generators.
struct Particle {
  Vec3d pos;
  Vec3d vel;
  double mass = 0.0;
  std::uint64_t id = 0;
};

// SoA particle container with per-particle force/potential outputs and SFC
// keys. All arrays always have identical length.
class ParticleSet {
 public:
  ParticleSet() = default;
  explicit ParticleSet(std::size_t n) { resize(n); }

  std::size_t size() const { return x.size(); }
  bool empty() const { return x.empty(); }

  void resize(std::size_t n) {
    x.resize(n);
    y.resize(n);
    z.resize(n);
    vx.resize(n);
    vy.resize(n);
    vz.resize(n);
    ax.resize(n);
    ay.resize(n);
    az.resize(n);
    pot.resize(n);
    mass.resize(n);
    id.resize(n);
    key.resize(n);
  }

  void reserve(std::size_t n) {
    x.reserve(n);
    y.reserve(n);
    z.reserve(n);
    vx.reserve(n);
    vy.reserve(n);
    vz.reserve(n);
    ax.reserve(n);
    ay.reserve(n);
    az.reserve(n);
    pot.reserve(n);
    mass.reserve(n);
    id.reserve(n);
    key.reserve(n);
  }

  void clear() { resize(0); }

  void add(const Particle& p) {
    x.push_back(p.pos.x);
    y.push_back(p.pos.y);
    z.push_back(p.pos.z);
    vx.push_back(p.vel.x);
    vy.push_back(p.vel.y);
    vz.push_back(p.vel.z);
    ax.push_back(0.0);
    ay.push_back(0.0);
    az.push_back(0.0);
    pot.push_back(0.0);
    mass.push_back(p.mass);
    id.push_back(p.id);
    key.push_back(0);
  }

  Vec3d pos(std::size_t i) const { return {x[i], y[i], z[i]}; }
  Vec3d vel(std::size_t i) const { return {vx[i], vy[i], vz[i]}; }
  Vec3d acc(std::size_t i) const { return {ax[i], ay[i], az[i]}; }

  void set_pos(std::size_t i, const Vec3d& p) {
    x[i] = p.x;
    y[i] = p.y;
    z[i] = p.z;
  }
  void set_vel(std::size_t i, const Vec3d& v) {
    vx[i] = v.x;
    vy[i] = v.y;
    vz[i] = v.z;
  }

  Particle get(std::size_t i) const { return {pos(i), vel(i), mass[i], id[i]}; }

  // Tight bounding box of all particle positions.
  AABB bounds() const {
    AABB box;
    for (std::size_t i = 0; i < size(); ++i) box.expand(pos(i));
    return box;
  }

  double total_mass() const { return std::accumulate(mass.begin(), mass.end(), 0.0); }

  // Reorder all arrays so that entry i comes from old index perm[i].
  void apply_permutation(std::span<const std::uint32_t> perm) {
    BNS_CHECK(perm.size() == size());
    permute(x, perm);
    permute(y, perm);
    permute(z, perm);
    permute(vx, perm);
    permute(vy, perm);
    permute(vz, perm);
    permute(ax, perm);
    permute(ay, perm);
    permute(az, perm);
    permute(pot, perm);
    permute(mass, perm);
    permute(id, perm);
    permute(key, perm);
  }

  void zero_forces() {
    std::fill(ax.begin(), ax.end(), 0.0);
    std::fill(ay.begin(), ay.end(), 0.0);
    std::fill(az.begin(), az.end(), 0.0);
    std::fill(pot.begin(), pot.end(), 0.0);
  }

  std::vector<double> x, y, z;
  std::vector<double> vx, vy, vz;
  std::vector<double> ax, ay, az, pot;
  std::vector<double> mass;
  std::vector<std::uint64_t> id;
  std::vector<sfc::Key> key;

 private:
  template <typename T>
  static void permute(std::vector<T>& v, std::span<const std::uint32_t> perm) {
    std::vector<T> out(v.size());
    for (std::size_t i = 0; i < perm.size(); ++i) out[i] = v[perm[i]];
    v.swap(out);
  }
};

// Compute SFC keys for all particles and sort the set by key. Returns the
// permutation applied (new index -> old index). This is the "Sorting SFC"
// stage of Table II.
std::vector<std::uint32_t> sort_by_keys(ParticleSet& parts, const sfc::KeySpace& space);

}  // namespace bonsai
