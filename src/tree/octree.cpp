#include "tree/octree.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace bonsai {

namespace {

// Children of the cell [key_begin, key_end) at `level` are the eight equal
// key sub-ranges at level+1. Particle sub-ranges are located with
// std::upper_bound over the sorted key array.
struct BuildItem {
  std::int32_t node;
  std::uint8_t level;
};

}  // namespace

void Octree::build(const ParticleSet& parts, int nleaf) {
  BNS_CHECK(nleaf >= 1);
  const std::size_t n = parts.size();
  nodes_.clear();
  num_leaves_ = 0;
  max_depth_ = 0;

  BNS_CHECK(std::is_sorted(parts.key.begin(), parts.key.end()),
                   "particles must be SFC-sorted before tree construction");

  TreeNode root;
  root.key_begin = 0;
  root.key_end = sfc::kKeyEnd;
  root.part_begin = 0;
  root.part_end = static_cast<std::uint32_t>(n);
  root.level = 0;
  root.kind = NodeKind::kParticleLeaf;
  nodes_.push_back(root);
  if (n == 0) return;

  std::vector<BuildItem> stack;
  stack.push_back({0, 0});

  while (!stack.empty()) {
    const BuildItem item = stack.back();
    stack.pop_back();
    // Copy the fields needed before nodes_ may reallocate.
    const sfc::Key kb = nodes_[item.node].key_begin;
    const std::uint32_t pb = nodes_[item.node].part_begin;
    const std::uint32_t pe = nodes_[item.node].part_end;
    const int level = item.level;
    max_depth_ = std::max(max_depth_, level);

    if (pe - pb <= static_cast<std::uint32_t>(nleaf) || level == sfc::kMaxLevel) {
      ++num_leaves_;
      continue;  // stays a ParticleLeaf
    }

    const sfc::Key child_span = sfc::cell_key_span(level + 1);
    const auto first_child = static_cast<std::int32_t>(nodes_.size());
    std::uint8_t created = 0;

    std::uint32_t lo = pb;
    for (unsigned oct = 0; oct < 8; ++oct) {
      const sfc::Key child_end = kb + child_span * (oct + 1);
      const auto it = std::upper_bound(parts.key.begin() + lo, parts.key.begin() + pe,
                                       child_end - 1);
      const auto hi = static_cast<std::uint32_t>(it - parts.key.begin());
      if (hi > lo) {
        TreeNode child;
        child.key_begin = kb + child_span * oct;
        child.key_end = child_end;
        child.part_begin = lo;
        child.part_end = hi;
        child.level = static_cast<std::uint8_t>(level + 1);
        child.kind = NodeKind::kParticleLeaf;
        nodes_.push_back(child);
        ++created;
      }
      lo = hi;
    }
    BNS_DCHECK(lo == pe);

    nodes_[item.node].kind = NodeKind::kInternal;
    nodes_[item.node].first_child = first_child;
    nodes_[item.node].num_children = created;
    for (std::uint8_t c = 0; c < created; ++c)
      stack.push_back({first_child + c, static_cast<std::uint8_t>(level + 1)});
  }

  if constexpr (kDcheckEnabled) check_invariants();
}

void Octree::check_invariants() const {
  BNS_CHECK(!nodes_.empty(), "built tree must have a root");
  const TreeNode& root = nodes_.front();
  BNS_CHECK(root.part_begin == 0);
  BNS_CHECK(root.key_begin == 0 && root.key_end == sfc::kKeyEnd);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const TreeNode& node = nodes_[i];
    BNS_CHECK(node.part_begin <= node.part_end, "node ", i, " has inverted particle range");
    BNS_CHECK(node.key_begin < node.key_end, "node ", i, " has empty key range");
    if (node.is_leaf()) {
      BNS_CHECK(node.num_children == 0, "leaf node ", i, " claims children");
      continue;
    }
    BNS_CHECK(node.num_children >= 1 && node.num_children <= 8,
              "internal node ", i, " has ", int(node.num_children), " children");
    BNS_CHECK(node.first_child > static_cast<std::int32_t>(i),
              "child pointer of node ", i, " does not point forward");
    const auto end_child =
        static_cast<std::size_t>(node.first_child) + node.num_children;
    BNS_CHECK(end_child <= nodes_.size(), "child block of node ", i, " out of range");
    // Children partition the parent's particle range and nest in its key
    // range, in ascending key order, one level deeper.
    std::uint32_t part_cursor = node.part_begin;
    sfc::Key key_cursor = node.key_begin;
    for (std::uint8_t c = 0; c < node.num_children; ++c) {
      const TreeNode& ch = nodes_[static_cast<std::size_t>(node.first_child) + c];
      BNS_CHECK(ch.level == node.level + 1, "child of node ", i, " skips a level");
      BNS_CHECK(ch.part_begin == part_cursor,
                "children of node ", i, " leave a particle gap");
      BNS_CHECK(ch.part_end > ch.part_begin, "child of node ", i, " is empty");
      BNS_CHECK(ch.key_begin >= key_cursor && ch.key_end <= node.key_end,
                "child key range of node ", i, " escapes the parent");
      part_cursor = ch.part_end;
      key_cursor = ch.key_end;
    }
    BNS_CHECK(part_cursor == node.part_end,
              "children of node ", i, " do not cover the parent's particles");
  }
}

void Octree::compute_properties(const ParticleSet& parts, double theta) {
  BNS_CHECK(theta > 0.0);
  // Children always have larger indices than their parent (DFS pre-order
  // construction), so a reverse sweep is a valid bottom-up pass.
  for (auto it = nodes_.rbegin(); it != nodes_.rend(); ++it) {
    TreeNode& node = *it;
    node.box = AABB{};
    node.mp = Multipole{};

    if (node.is_leaf()) {
      for (std::uint32_t i = node.part_begin; i < node.part_end; ++i) {
        node.box.expand(parts.pos(i));
        node.mp.mass += parts.mass[i];
        node.mp.com += parts.mass[i] * parts.pos(i);
      }
      if (node.mp.mass > 0.0) node.mp.com /= node.mp.mass;
      for (std::uint32_t i = node.part_begin; i < node.part_end; ++i)
        node.mp.quad.add_outer(parts.pos(i) - node.mp.com, parts.mass[i]);
    } else {
      // Two-pass combine: monopole first, then quadrupoles shifted to the
      // parent COM (parallel-axis theorem).
      for (std::uint8_t c = 0; c < node.num_children; ++c) {
        const TreeNode& ch = nodes_[node.first_child + c];
        node.box.expand(ch.box);
        node.mp.mass += ch.mp.mass;
        node.mp.com += ch.mp.mass * ch.mp.com;
      }
      if (node.mp.mass > 0.0) node.mp.com /= node.mp.mass;
      for (std::uint8_t c = 0; c < node.num_children; ++c)
        node.mp.add_shifted(nodes_[node.first_child + c].mp);
    }

    if (node.count() > 0) {
      const double l = node.box.max_side();
      const double delta = norm(node.mp.com - node.box.center());
      node.rcrit = l / theta + delta;
    } else {
      node.rcrit = 0.0;
    }
  }
}

void set_opening_angle(std::vector<TreeNode>& nodes, double theta) {
  BNS_CHECK(theta > 0.0);
  for (TreeNode& node : nodes) {
    if (node.count() == 0) continue;
    const double l = node.box.max_side();
    const double delta = norm(node.mp.com - node.box.center());
    node.rcrit = l / theta + delta;
  }
}

}  // namespace bonsai
