#include "tree/octree.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace bonsai {

namespace {

// Children of the cell [key_begin, key_end) at `level` are the eight equal
// key sub-ranges at level+1. Particle sub-ranges are located with
// std::upper_bound over the sorted key array.
struct BuildItem {
  std::int32_t node;
  std::uint8_t level;
};

}  // namespace

void Octree::build(const ParticleSet& parts, int nleaf) {
  BONSAI_CHECK(nleaf >= 1);
  const std::size_t n = parts.size();
  nodes_.clear();
  num_leaves_ = 0;
  max_depth_ = 0;

  BONSAI_CHECK_MSG(std::is_sorted(parts.key.begin(), parts.key.end()),
                   "particles must be SFC-sorted before tree construction");

  TreeNode root;
  root.key_begin = 0;
  root.key_end = sfc::kKeyEnd;
  root.part_begin = 0;
  root.part_end = static_cast<std::uint32_t>(n);
  root.level = 0;
  root.kind = NodeKind::kParticleLeaf;
  nodes_.push_back(root);
  if (n == 0) return;

  std::vector<BuildItem> stack;
  stack.push_back({0, 0});

  while (!stack.empty()) {
    const BuildItem item = stack.back();
    stack.pop_back();
    // Copy the fields needed before nodes_ may reallocate.
    const sfc::Key kb = nodes_[item.node].key_begin;
    const std::uint32_t pb = nodes_[item.node].part_begin;
    const std::uint32_t pe = nodes_[item.node].part_end;
    const int level = item.level;
    max_depth_ = std::max(max_depth_, level);

    if (pe - pb <= static_cast<std::uint32_t>(nleaf) || level == sfc::kMaxLevel) {
      ++num_leaves_;
      continue;  // stays a ParticleLeaf
    }

    const sfc::Key child_span = sfc::cell_key_span(level + 1);
    const auto first_child = static_cast<std::int32_t>(nodes_.size());
    std::uint8_t created = 0;

    std::uint32_t lo = pb;
    for (unsigned oct = 0; oct < 8; ++oct) {
      const sfc::Key child_end = kb + child_span * (oct + 1);
      const auto it = std::upper_bound(parts.key.begin() + lo, parts.key.begin() + pe,
                                       child_end - 1);
      const auto hi = static_cast<std::uint32_t>(it - parts.key.begin());
      if (hi > lo) {
        TreeNode child;
        child.key_begin = kb + child_span * oct;
        child.key_end = child_end;
        child.part_begin = lo;
        child.part_end = hi;
        child.level = static_cast<std::uint8_t>(level + 1);
        child.kind = NodeKind::kParticleLeaf;
        nodes_.push_back(child);
        ++created;
      }
      lo = hi;
    }
    BONSAI_ASSERT(lo == pe);

    nodes_[item.node].kind = NodeKind::kInternal;
    nodes_[item.node].first_child = first_child;
    nodes_[item.node].num_children = created;
    for (std::uint8_t c = 0; c < created; ++c)
      stack.push_back({first_child + c, static_cast<std::uint8_t>(level + 1)});
  }
}

void Octree::compute_properties(const ParticleSet& parts, double theta) {
  BONSAI_CHECK(theta > 0.0);
  // Children always have larger indices than their parent (DFS pre-order
  // construction), so a reverse sweep is a valid bottom-up pass.
  for (auto it = nodes_.rbegin(); it != nodes_.rend(); ++it) {
    TreeNode& node = *it;
    node.box = AABB{};
    node.mp = Multipole{};

    if (node.is_leaf()) {
      for (std::uint32_t i = node.part_begin; i < node.part_end; ++i) {
        node.box.expand(parts.pos(i));
        node.mp.mass += parts.mass[i];
        node.mp.com += parts.mass[i] * parts.pos(i);
      }
      if (node.mp.mass > 0.0) node.mp.com /= node.mp.mass;
      for (std::uint32_t i = node.part_begin; i < node.part_end; ++i)
        node.mp.quad.add_outer(parts.pos(i) - node.mp.com, parts.mass[i]);
    } else {
      // Two-pass combine: monopole first, then quadrupoles shifted to the
      // parent COM (parallel-axis theorem).
      for (std::uint8_t c = 0; c < node.num_children; ++c) {
        const TreeNode& ch = nodes_[node.first_child + c];
        node.box.expand(ch.box);
        node.mp.mass += ch.mp.mass;
        node.mp.com += ch.mp.mass * ch.mp.com;
      }
      if (node.mp.mass > 0.0) node.mp.com /= node.mp.mass;
      for (std::uint8_t c = 0; c < node.num_children; ++c)
        node.mp.add_shifted(nodes_[node.first_child + c].mp);
    }

    if (node.count() > 0) {
      const double l = node.box.max_side();
      const double delta = norm(node.mp.com - node.box.center());
      node.rcrit = l / theta + delta;
    } else {
      node.rcrit = 0.0;
    }
  }
}

void set_opening_angle(std::vector<TreeNode>& nodes, double theta) {
  BONSAI_CHECK(theta > 0.0);
  for (TreeNode& node : nodes) {
    if (node.count() == 0) continue;
    const double l = node.box.max_side();
    const double delta = norm(node.mp.com - node.box.center());
    node.rcrit = l / theta + delta;
  }
}

}  // namespace bonsai
