// Deterministic, fast pseudo-random number generation.
//
// The Milky Way initial-condition generator must produce the *same* particle i
// no matter which rank generates it ("generate on the fly", §IV of the paper),
// so every sampler here is a pure function of an explicitly seeded engine.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

#include "util/vec3.hpp"

namespace bonsai {

// SplitMix64: used for seeding and for cheap per-id hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Stateless hash of a 64-bit value (e.g. a particle id) to a 64-bit value.
constexpr std::uint64_t hash64(std::uint64_t v) {
  std::uint64_t s = v;
  return splitmix64(s);
}

// Xoshiro256++ PRNG: fast, high quality, trivially seedable from a single
// 64-bit value via SplitMix64.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Standard normal via Box-Muller (cached second value).
  double gaussian() {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_ = r * std::sin(theta);
    have_cached_ = true;
    return r * std::cos(theta);
  }

  double gaussian(double mean, double sigma) { return mean + sigma * gaussian(); }

  // Uniform point on the unit sphere.
  Vec3d unit_sphere() {
    const double z = uniform(-1.0, 1.0);
    const double phi = uniform(0.0, 2.0 * std::numbers::pi);
    const double r = std::sqrt(std::max(0.0, 1.0 - z * z));
    return {r * std::cos(phi), r * std::sin(phi), z};
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double cached_ = 0.0;
  bool have_cached_ = false;
};

}  // namespace bonsai
