// Initial-condition generators. The Plummer sphere is the standard tree-code
// validation model: centrally concentrated like the paper's bulge component,
// with an analytic distribution function for self-consistent velocities
// (Aarseth, Hénon & Wielen 1974 sampling; G = 1 units).
#pragma once

#include <cmath>
#include <cstdint>

#include "tree/particle.hpp"
#include "util/random.hpp"

namespace bonsai {

// Equal-mass Plummer model with scale radius `scale` and the given total
// mass, truncated at `rmax_scales` scale radii. Deterministic in `seed`;
// particle ids are 0..n-1.
inline ParticleSet make_plummer(std::size_t n, std::uint64_t seed, double total_mass = 1.0,
                                double scale = 1.0, double rmax_scales = 10.0) {
  Xoshiro256 rng(seed);
  ParticleSet parts;
  parts.reserve(n);
  const double m = n > 0 ? total_mass / static_cast<double>(n) : 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    // Radius from the cumulative mass profile M(r) = M r^3 / (r^2+a^2)^{3/2}.
    double r;
    do {
      const double u = std::max(rng.uniform(), 1e-12);
      r = scale / std::sqrt(std::pow(u, -2.0 / 3.0) - 1.0);
    } while (r > rmax_scales * scale);

    // Speed fraction q = v/v_esc from f(q) ~ q^2 (1-q^2)^{7/2} by rejection
    // (the density maximum is ~0.092, so 0.1 bounds it).
    double q, g;
    do {
      q = rng.uniform();
      g = 0.1 * rng.uniform();
    } while (g > q * q * std::pow(1.0 - q * q, 3.5));
    const double vesc =
        std::sqrt(2.0 * total_mass) / std::pow(r * r + scale * scale, 0.25);

    parts.add({rng.unit_sphere() * r, rng.unit_sphere() * (q * vesc), m, i});
  }
  return parts;
}

}  // namespace bonsai
