// Column-aligned plain-text table printer. The benchmark binaries use it to
// emit the same rows/series the paper's tables and figures report.
#pragma once

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace bonsai {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header) { rows_.push_back(std::move(header)); }

  TextTable& add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  // Format a double with the given precision, trimming to a compact cell.
  static std::string num(double v, int precision = 3) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  static std::string sci(double v, int precision = 2) {
    std::ostringstream os;
    os << std::scientific << std::setprecision(precision) << v;
    return os.str();
  }

  void print(std::ostream& os) const {
    std::vector<std::size_t> width;
    for (const auto& row : rows_) {
      if (width.size() < row.size()) width.resize(row.size(), 0);
      for (std::size_t c = 0; c < row.size(); ++c)
        width[c] = std::max(width[c], row[c].size());
    }
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      os << "| ";
      for (std::size_t c = 0; c < width.size(); ++c) {
        const std::string& cell = c < rows_[r].size() ? rows_[r][c] : std::string{};
        os << std::left << std::setw(static_cast<int>(width[c])) << cell << " | ";
      }
      os << '\n';
      if (r == 0) {
        os << "|";
        for (std::size_t c = 0; c < width.size(); ++c)
          os << std::string(width[c] + 2, '-') << '|';
        os << '\n';
      }
    }
  }

 private:
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bonsai
