#include "util/check.hpp"

namespace bonsai::detail {

void check_failed(const char* expr, const char* file, int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace bonsai::detail
