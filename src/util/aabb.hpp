// Axis-aligned bounding boxes. Used for tree cells, particle groups, domain
// geometry and the multipole acceptance criterion.
#pragma once

#include <algorithm>
#include <limits>

#include "util/vec3.hpp"

namespace bonsai {

struct AABB {
  Vec3d lo{std::numeric_limits<double>::max(), std::numeric_limits<double>::max(),
           std::numeric_limits<double>::max()};
  Vec3d hi{std::numeric_limits<double>::lowest(), std::numeric_limits<double>::lowest(),
           std::numeric_limits<double>::lowest()};

  bool valid() const { return lo.x <= hi.x && lo.y <= hi.y && lo.z <= hi.z; }

  void expand(const Vec3d& p) {
    lo = min(lo, p);
    hi = max(hi, p);
  }

  void expand(const AABB& b) {
    lo = min(lo, b.lo);
    hi = max(hi, b.hi);
  }

  Vec3d center() const { return (lo + hi) * 0.5; }
  Vec3d size() const { return hi - lo; }

  double max_side() const {
    const Vec3d s = size();
    return std::max({s.x, s.y, s.z});
  }

  bool contains(const Vec3d& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y && p.z >= lo.z &&
           p.z <= hi.z;
  }

  bool overlaps(const AABB& b) const {
    return lo.x <= b.hi.x && hi.x >= b.lo.x && lo.y <= b.hi.y && hi.y >= b.lo.y &&
           lo.z <= b.hi.z && hi.z >= b.lo.z;
  }

  // Squared minimum distance from point p to this box (0 if inside).
  double min_dist2(const Vec3d& p) const {
    double d2 = 0.0;
    for (int i = 0; i < 3; ++i) {
      const double d = std::max({lo[i] - p[i], 0.0, p[i] - hi[i]});
      d2 += d * d;
    }
    return d2;
  }

  // Squared minimum distance between this box and box b (0 if overlapping).
  double min_dist2(const AABB& b) const {
    double d2 = 0.0;
    for (int i = 0; i < 3; ++i) {
      const double d = std::max({lo[i] - b.hi[i], 0.0, b.lo[i] - hi[i]});
      d2 += d * d;
    }
    return d2;
  }

  // Smallest cube with the same center that contains this box, inflated by
  // `pad` on each side. Cubic key spaces keep SFC cells geometrically cubic.
  AABB bounding_cube(double pad = 0.0) const {
    const Vec3d c = center();
    const double h = 0.5 * max_side() + pad;
    return {{c.x - h, c.y - h, c.z - h}, {c.x + h, c.y + h, c.z + h}};
  }
};

}  // namespace bonsai
