// Command-line flag parser with registered flags.
//
// Flags are declared up front — add_option() for value-taking flags,
// add_switch() for booleans — and then parse() walks argv. Registration is
// what lets the parser distinguish "--validate file.dat" (boolean switch
// followed by a positional) from "--bench file.json" (option consuming a
// value): switches never swallow the next token. Unknown flags, missing
// values and malformed numbers raise CliError with a message naming the
// offending flag instead of aborting through an uncaught std::stoll.
// help() renders the registered flags as the --help listing.
#pragma once

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace bonsai {

// User error on the command line (unknown flag, malformed value, ...).
class CliError : public std::runtime_error {
 public:
  explicit CliError(const std::string& what) : std::runtime_error(what) {}
};

class CommandLine {
 public:
  CommandLine() = default;

  // Register a value-taking flag: --name V or --name=V.
  void add_option(const std::string& name, const std::string& value_name,
                  const std::string& help) {
    specs_.push_back({name, value_name, help, /*is_switch=*/false});
  }

  // Register a boolean switch: --name (or --name=false to negate).
  void add_switch(const std::string& name, const std::string& help) {
    specs_.push_back({name, "", help, /*is_switch=*/true});
  }

  // Parse argv against the registered flags. Throws CliError on an unknown
  // flag or a registered option with no value.
  void parse(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(std::move(arg));
        continue;
      }
      arg.erase(0, 2);
      std::string value;
      bool have_value = false;
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        value = arg.substr(eq + 1);
        arg.erase(eq);
        have_value = true;
      }
      const Spec* spec = find(arg);
      if (!spec) throw CliError("unknown flag --" + arg + " (see --help)");
      if (!spec->is_switch && !have_value) {
        if (i + 1 >= argc || std::string(argv[i + 1]).rfind("--", 0) == 0)
          throw CliError("--" + arg + " expects a " +
                         (spec->value_name.empty() ? "value" : spec->value_name) +
                         " argument");
        value = argv[++i];
        have_value = true;
      }
      flags_[arg] = have_value ? value : "true";
    }
  }

  bool has(const std::string& name) const { return flags_.count(name) != 0; }

  std::string get(const std::string& name, const std::string& fallback) const {
    auto it = flags_.find(name);
    return it == flags_.end() ? fallback : it->second;
  }

  std::int64_t get_int(const std::string& name, std::int64_t fallback) const {
    auto it = flags_.find(name);
    if (it == flags_.end()) return fallback;
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(it->second.c_str(), &end, 10);
    if (errno != 0 || end == it->second.c_str() || *end != '\0')
      throw CliError("--" + name + ": expected an integer, got '" + it->second + "'");
    return v;
  }

  double get_double(const std::string& name, double fallback) const {
    auto it = flags_.find(name);
    if (it == flags_.end()) return fallback;
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (errno != 0 || end == it->second.c_str() || *end != '\0')
      throw CliError("--" + name + ": expected a number, got '" + it->second + "'");
    return v;
  }

  bool get_bool(const std::string& name, bool fallback) const {
    auto it = flags_.find(name);
    if (it == flags_.end()) return fallback;
    if (it->second == "true" || it->second == "1" || it->second == "yes") return true;
    if (it->second == "false" || it->second == "0" || it->second == "no") return false;
    throw CliError("--" + name + ": expected a boolean, got '" + it->second + "'");
  }

  const std::vector<std::string>& positional() const { return positional_; }

  // The --help listing generated from the registered flags.
  std::string help(const std::string& program, const std::string& intro) const {
    std::ostringstream os;
    os << program << " — " << intro << "\n";
    std::size_t width = 0;
    for (const Spec& s : specs_) width = std::max(width, left_column(s).size());
    for (const Spec& s : specs_) {
      const std::string left = left_column(s);
      os << "  " << left << std::string(width - left.size() + 2, ' ') << s.help << "\n";
    }
    return os.str();
  }

 private:
  struct Spec {
    std::string name, value_name, help;
    bool is_switch;
  };

  static std::string left_column(const Spec& s) {
    return "--" + s.name + (s.is_switch ? "" : " " + s.value_name);
  }

  const Spec* find(const std::string& name) const {
    for (const Spec& s : specs_)
      if (s.name == name) return &s;
    return nullptr;
  }

  std::vector<Spec> specs_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace bonsai
