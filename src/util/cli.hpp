// Minimal command-line flag parser for the examples and benchmark drivers.
// Supports --name=value and --name value forms plus boolean switches.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace bonsai {

class CommandLine {
 public:
  CommandLine(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(std::move(arg));
        continue;
      }
      arg.erase(0, 2);
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        flags_[arg] = argv[++i];
      } else {
        flags_[arg] = "true";
      }
    }
  }

  bool has(const std::string& name) const { return flags_.count(name) != 0; }

  std::string get(const std::string& name, const std::string& fallback) const {
    auto it = flags_.find(name);
    return it == flags_.end() ? fallback : it->second;
  }

  std::int64_t get_int(const std::string& name, std::int64_t fallback) const {
    auto it = flags_.find(name);
    return it == flags_.end() ? fallback : std::stoll(it->second);
  }

  double get_double(const std::string& name, double fallback) const {
    auto it = flags_.find(name);
    return it == flags_.end() ? fallback : std::stod(it->second);
  }

  bool get_bool(const std::string& name, bool fallback) const {
    auto it = flags_.find(name);
    if (it == flags_.end()) return fallback;
    return it->second == "true" || it->second == "1" || it->second == "yes";
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace bonsai
