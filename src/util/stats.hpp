// Small online/offline statistics helpers for diagnostics and benchmarks.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace bonsai {

// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0, m2_ = 0.0, min_ = 0.0, max_ = 0.0;
};

// Percentile of a copied, sorted sample set (q in [0,1]).
inline double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

// Relative error |a-b| / max(|b|, floor).
inline double relative_error(double a, double b, double floor = 1e-300) {
  return std::abs(a - b) / std::max(std::abs(b), floor);
}

}  // namespace bonsai
