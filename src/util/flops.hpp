// Floating-point operation accounting, following §VI-A of the paper exactly:
//
//   particle-particle (p-p): 4 sub, 3 mul, 6 fma, 1 rsqrt  -> 23 flops
//   particle-cell    (p-c): 4 sub, 6 add, 17 mul, 17 fma, 1 rsqrt -> 65 flops
//
// with the reciprocal square root counted as 4 flops. Performance numbers are
// obtained by multiplying recorded interaction counts by these constants and
// dividing by execution time, as the paper does (force-only flops).
#pragma once

#include <cstdint>

namespace bonsai {

// Flop cost of one particle-particle interaction (monopole, softened).
inline constexpr std::uint64_t kFlopsPerPP = 23;

// Flop cost of one particle-cell interaction (with quadrupole corrections).
inline constexpr std::uint64_t kFlopsPerPC = 65;

// Flop count attributed to one reciprocal-square-root instruction.
inline constexpr std::uint64_t kFlopsPerRsqrt = 4;

// Historical 38-flop p-p convention used by refs [28]-[32]; kept for
// comparisons in the benchmark output.
inline constexpr std::uint64_t kFlopsPerPPLegacy38 = 38;

// Interaction counters recorded during tree walks.
struct InteractionStats {
  std::uint64_t p2p = 0;  // particle-particle interactions evaluated
  std::uint64_t p2c = 0;  // particle-cell (multipole) interactions evaluated

  constexpr std::uint64_t flops() const { return p2p * kFlopsPerPP + p2c * kFlopsPerPC; }

  constexpr InteractionStats& operator+=(const InteractionStats& o) {
    p2p += o.p2p;
    p2c += o.p2c;
    return *this;
  }

  friend constexpr InteractionStats operator+(InteractionStats a, const InteractionStats& b) {
    return a += b;
  }

  // Average interactions per particle, the quantity Table II reports.
  constexpr double p2p_per_particle(std::uint64_t n) const {
    return n == 0 ? 0.0 : static_cast<double>(p2p) / static_cast<double>(n);
  }
  constexpr double p2c_per_particle(std::uint64_t n) const {
    return n == 0 ? 0.0 : static_cast<double>(p2c) / static_cast<double>(n);
  }
};

// flops -> Gflop/s given elapsed seconds.
constexpr double gflops_rate(std::uint64_t flops, double seconds) {
  return seconds > 0.0 ? static_cast<double>(flops) / seconds * 1e-9 : 0.0;
}

// flops -> Tflop/s given elapsed seconds.
constexpr double tflops_rate(std::uint64_t flops, double seconds) {
  return seconds > 0.0 ? static_cast<double>(flops) / seconds * 1e-12 : 0.0;
}

}  // namespace bonsai
