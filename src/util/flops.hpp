// Floating-point operation accounting, following §VI-A of the paper exactly:
//
//   particle-particle (p-p): 4 sub, 3 mul, 6 fma, 1 rsqrt  -> 23 flops
//   particle-cell    (p-c): 4 sub, 6 add, 17 mul, 17 fma, 1 rsqrt -> 65 flops
//
// with the reciprocal square root counted as 4 flops. Performance numbers are
// obtained by multiplying recorded interaction counts by these constants and
// dividing by execution time, as the paper does (force-only flops).
//
// Since the batched interaction-list engine (PR 7), counts come in two
// flavours: *useful* interactions (the physics: what the inline reference
// walk would have evaluated, self-pairs excluded) and *padded* interactions
// (every lane the device actually burned, including SIMD padding lanes and
// masked self-pairs). Gflop/s figures are derived from useful flops so
// padding can never inflate the reported rate; the padded count is reported
// alongside as the batch fill ratio.
#pragma once

#include <array>
#include <cstdint>

namespace bonsai {

// Flop cost of one particle-particle interaction (monopole, softened).
inline constexpr std::uint64_t kFlopsPerPP = 23;

// Flop cost of one particle-cell interaction (with quadrupole corrections).
inline constexpr std::uint64_t kFlopsPerPC = 65;

// Flop count attributed to one reciprocal-square-root instruction.
inline constexpr std::uint64_t kFlopsPerRsqrt = 4;

// Historical 38-flop p-p convention used by refs [28]-[32]; kept for
// comparisons in the benchmark output.
inline constexpr std::uint64_t kFlopsPerPPLegacy38 = 38;

// Buckets of the interactions-per-drained-batch histogram: bucket b counts
// batches whose useful interaction count lies in [2^b, 2^(b+1)).
inline constexpr std::size_t kBatchHistBuckets = 24;

// Interaction counters recorded during tree walks and batch drains.
struct InteractionStats {
  std::uint64_t p2p = 0;  // useful particle-particle interactions
  std::uint64_t p2c = 0;  // useful particle-cell (multipole) interactions

  // Lanes actually evaluated: useful plus SIMD padding and masked self-pairs.
  // The inline walk and the scalar backend pad nothing (padded == useful).
  std::uint64_t p2p_padded = 0;
  std::uint64_t p2c_padded = 0;

  // Drained interaction-list batches (zero for the inline reference walk).
  std::uint64_t pp_batches = 0;
  std::uint64_t pc_batches = 0;

  // log2 histogram of useful interactions per drained batch.
  std::array<std::uint64_t, kBatchHistBuckets> batch_hist{};

  constexpr std::uint64_t flops() const { return p2p * kFlopsPerPP + p2c * kFlopsPerPC; }
  constexpr std::uint64_t useful_flops() const { return flops(); }
  constexpr std::uint64_t padded_flops() const {
    return p2p_padded * kFlopsPerPP + p2c_padded * kFlopsPerPC;
  }

  constexpr std::uint64_t batches() const { return pp_batches + pc_batches; }

  // Useful fraction of the evaluated lanes (1.0 when nothing was padded).
  constexpr double fill_ratio() const {
    const std::uint64_t padded = p2p_padded + p2c_padded;
    return padded == 0 ? 1.0
                       : static_cast<double>(p2p + p2c) / static_cast<double>(padded);
  }

  // Record one drained batch with `interactions` useful interactions.
  constexpr void observe_batch(std::uint64_t interactions) {
    std::size_t b = 0;
    while ((interactions >> (b + 1)) != 0 && b + 1 < kBatchHistBuckets) ++b;
    ++batch_hist[b];
  }

  constexpr InteractionStats& operator+=(const InteractionStats& o) {
    p2p += o.p2p;
    p2c += o.p2c;
    p2p_padded += o.p2p_padded;
    p2c_padded += o.p2c_padded;
    pp_batches += o.pp_batches;
    pc_batches += o.pc_batches;
    for (std::size_t b = 0; b < kBatchHistBuckets; ++b) batch_hist[b] += o.batch_hist[b];
    return *this;
  }

  friend constexpr InteractionStats operator+(InteractionStats a, const InteractionStats& b) {
    return a += b;
  }

  // Average interactions per particle, the quantity Table II reports.
  constexpr double p2p_per_particle(std::uint64_t n) const {
    return n == 0 ? 0.0 : static_cast<double>(p2p) / static_cast<double>(n);
  }
  constexpr double p2c_per_particle(std::uint64_t n) const {
    return n == 0 ? 0.0 : static_cast<double>(p2c) / static_cast<double>(n);
  }
};

// flops -> Gflop/s given elapsed seconds.
constexpr double gflops_rate(std::uint64_t flops, double seconds) {
  return seconds > 0.0 ? static_cast<double>(flops) / seconds * 1e-9 : 0.0;
}

// flops -> Tflop/s given elapsed seconds.
constexpr double tflops_rate(std::uint64_t flops, double seconds) {
  return seconds > 0.0 ? static_cast<double>(flops) / seconds * 1e-12 : 0.0;
}

}  // namespace bonsai
