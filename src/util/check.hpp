// Invariant framework for the load-bearing seams (ROADMAP PR-10).
//
// BNS_CHECK is always on: violations mean corrupted results (malformed wire
// input, broken exchange accounting), so the cost of the branch is part of
// the contract. BNS_DCHECK compiles to nothing in plain Release builds — its
// condition is NOT evaluated — but is active in Debug and in every sanitizer
// build (the CMake sanitizer options define BONSAI_DCHECK_ON), which is where
// the expensive structural invariants (octree child links, LET cache mirrors,
// pool-slot accounting) earn their keep.
//
// Both throw CheckError — a typed std::logic_error carrying file:line, the
// failed expression text, and an optional streamed message:
//
//   BNS_CHECK(a == b, "population drifted: ", a, " vs ", b);
//   BNS_DCHECK(node.first_child > index);
//
// CheckError derives from std::logic_error so pre-existing catch sites and
// EXPECT_THROW(…, std::logic_error) tests keep working.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace bonsai {

// A failed BNS_CHECK / BNS_DCHECK. what() is
//   "<file>:<line>: check failed: <expr>[ — <message>]".
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

// Out of line so a check site costs one test + one call, not a string build.
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);

template <typename... Args>
std::string check_format(const Args&... args) {
  if constexpr (sizeof...(Args) == 0) {
    return {};
  } else {
    std::ostringstream os;
    (os << ... << args);
    return os.str();
  }
}

}  // namespace detail
}  // namespace bonsai

#define BNS_CHECK(expr, ...)                                         \
  do {                                                               \
    if (!(expr))                                                     \
      ::bonsai::detail::check_failed(                                \
          #expr, __FILE__, __LINE__,                                 \
          ::bonsai::detail::check_format(__VA_ARGS__));              \
  } while (0)

// Debug checks stay live under sanitizers: the sanitizer jobs re-prove the
// structural invariants on every PR, not just whoever last ran a Debug build.
#if !defined(NDEBUG) || defined(BONSAI_DCHECK_ON)
#define BNS_DCHECK_ENABLED 1
#define BNS_DCHECK(expr, ...) BNS_CHECK(expr __VA_OPT__(, ) __VA_ARGS__)
#else
#define BNS_DCHECK_ENABLED 0
// Arguments are not evaluated: a BNS_DCHECK may call O(n) validators.
#define BNS_DCHECK(expr, ...) ((void)0)
#endif

namespace bonsai {
// Compile-time mirror of the macro state, for code that wants to skip the
// setup work feeding a disabled check (e.g. collecting per-job rank counts).
inline constexpr bool kDcheckEnabled = BNS_DCHECK_ENABLED == 1;
}  // namespace bonsai
