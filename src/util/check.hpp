// Lightweight runtime checks.
//
// BONSAI_CHECK is always on (invariants whose violation means corrupted
// results); BONSAI_ASSERT compiles out in release builds (hot paths).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace bonsai::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace bonsai::detail

#define BONSAI_CHECK(expr)                                                \
  do {                                                                    \
    if (!(expr)) ::bonsai::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define BONSAI_CHECK_MSG(expr, msg)                                       \
  do {                                                                    \
    if (!(expr)) ::bonsai::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define BONSAI_ASSERT(expr) ((void)0)
#else
#define BONSAI_ASSERT(expr) BONSAI_CHECK(expr)
#endif
