#include "util/trace.hpp"

#include <algorithm>
#include <ostream>

namespace bonsai::trace {

// Fixed-capacity ring owned by one recording thread but kept alive by the
// registry (shared_ptr) so spans survive the thread's exit until drained.
struct Tracer::ThreadBuffer {
  std::mutex mutex;
  std::vector<RawSpan> ring;
  std::size_t head = 0;        // next overwrite position once full
  std::uint64_t dropped = 0;   // overwrites since last drain

  void push(const RawSpan& s) {
    std::lock_guard lock(mutex);
    if (ring.size() < Tracer::kRingCapacity) {
      ring.push_back(s);
    } else {
      ring[head] = s;
      head = (head + 1) % ring.size();
      ++dropped;
    }
  }

  // Moves out the recorded spans in recording order and resets the ring.
  void drain_into(std::vector<Span>& out) {
    std::lock_guard lock(mutex);
    const std::size_t n = ring.size();
    for (std::size_t i = 0; i < n; ++i) {
      const RawSpan& r = ring[(head + i) % n];
      Span s;
      s.name = r.name;
      s.begin_ns = r.begin_ns;
      s.end_ns = r.end_ns;
      s.rank = r.rank;
      s.lane = r.lane;
      s.step = r.step;
      s.peer = r.peer;
      s.bytes = r.bytes;
      out.push_back(std::move(s));
    }
    ring.clear();
    head = 0;
  }
};

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

std::shared_ptr<Tracer::ThreadBuffer> Tracer::this_thread_buffer() {
  // One slot per (thread, Tracer) pair; the registry keeps the buffer alive
  // after the thread exits so late drains still see its spans.
  thread_local std::shared_ptr<ThreadBuffer> buffer;
  if (!buffer) {
    buffer = std::make_shared<ThreadBuffer>();
    buffer->ring.reserve(256);
    std::lock_guard lock(registry_mutex_);
    buffers_.push_back(buffer);
  }
  return buffer;
}

void Tracer::emit(const RawSpan& s) { this_thread_buffer()->push(s); }

std::vector<Span> Tracer::drain_all() {
  std::vector<std::shared_ptr<ThreadBuffer>> bufs;
  {
    std::lock_guard lock(registry_mutex_);
    bufs = buffers_;
  }
  std::vector<Span> out;
  for (auto& b : bufs) b->drain_into(out);
  return out;
}

std::vector<Span> Tracer::drain_thread() {
  std::vector<Span> out;
  this_thread_buffer()->drain_into(out);
  return out;
}

std::uint64_t Tracer::dropped() {
  std::vector<std::shared_ptr<ThreadBuffer>> bufs;
  {
    std::lock_guard lock(registry_mutex_);
    bufs = buffers_;
  }
  std::uint64_t total = 0;
  for (auto& b : bufs) {
    std::lock_guard lock(b->mutex);
    total += b->dropped;
    b->dropped = 0;
  }
  return total;
}

std::int64_t estimate_clock_offset(const ClockSync& s) {
  // Classic NTP midpoint: the worker's (recv+send)/2 should coincide with the
  // coordinator's (post+arrive)/2 under symmetric delay; the difference is
  // the clock offset. Sum first to avoid losing the half-nanosecond.
  return ((s.coord_post_ns + s.coord_arrive_ns) -
          (s.worker_recv_ns + s.worker_send_ns)) /
         2;
}

void shift_spans(std::vector<Span>& spans, std::int64_t offset_ns) {
  for (Span& s : spans) {
    s.begin_ns += offset_ns;
    s.end_ns += offset_ns;
  }
}

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

// Chrome timestamps are microseconds; keep nanosecond precision as fractions.
void write_us(std::ostream& os, std::int64_t ns) {
  std::int64_t us = ns / 1000;
  std::int64_t rem = ns % 1000;
  if (rem < 0) {
    us -= 1;
    rem += 1000;
  }
  os << us << '.';
  os << static_cast<char>('0' + rem / 100)
     << static_cast<char>('0' + (rem / 10) % 10)
     << static_cast<char>('0' + rem % 10);
}

int pid_of(std::int32_t rank) { return rank + 1; }
int tid_of(std::int32_t lane) { return lane < 0 ? 0 : lane; }

}  // namespace

void write_chrome_trace(std::ostream& os, const std::vector<Span>& spans,
                        const std::map<int, std::string>& process_names) {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [rank, name] : process_names) {
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid_of(rank)
       << ",\"tid\":0,\"args\":{\"name\":";
    write_escaped(os, name);
    os << "}}";
  }
  for (const Span& s : spans) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":";
    write_escaped(os, s.name);
    os << ",\"ph\":\"X\",\"ts\":";
    write_us(os, s.begin_ns);
    os << ",\"dur\":";
    write_us(os, std::max<std::int64_t>(0, s.end_ns - s.begin_ns));
    os << ",\"pid\":" << pid_of(s.rank) << ",\"tid\":" << tid_of(s.lane)
       << ",\"args\":{";
    bool first_arg = true;
    auto arg = [&](const char* key, std::int64_t v) {
      if (!first_arg) os << ',';
      first_arg = false;
      os << '"' << key << "\":" << v;
    };
    if (s.step >= 0) arg("step", s.step);
    if (s.peer >= -1) arg("peer", s.peer);
    if (s.bytes >= 0) arg("bytes", s.bytes);
    os << "}}";
  }
  os << "]}\n";
}

}  // namespace bonsai::trace
