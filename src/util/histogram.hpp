// 1-D and 2-D fixed-bin histograms used by the analysis module (surface
// density maps, velocity-space "moving group" distributions of Fig. 3).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "util/check.hpp"

namespace bonsai {

// Fixed-width 1-D histogram over [lo, hi); out-of-range samples are dropped.
class Histogram1D {
 public:
  Histogram1D(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0.0) {
    BNS_CHECK(hi > lo);
    BNS_CHECK(bins > 0);
  }

  void add(double x, double weight = 1.0) {
    if (x < lo_ || x >= hi_) return;
    const auto b = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                            static_cast<double>(counts_.size()));
    counts_[std::min(b, counts_.size() - 1)] += weight;
  }

  std::size_t bins() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double bin_width() const { return (hi_ - lo_) / static_cast<double>(counts_.size()); }
  double bin_center(std::size_t b) const { return lo_ + (static_cast<double>(b) + 0.5) * bin_width(); }
  double count(std::size_t b) const { return counts_[b]; }
  double total() const {
    double t = 0.0;
    for (double c : counts_) t += c;
    return t;
  }
  std::size_t peak_bin() const {
    return static_cast<std::size_t>(
        std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
  }

 private:
  double lo_, hi_;
  std::vector<double> counts_;
};

// Fixed-width 2-D histogram over [xlo,xhi) x [ylo,yhi).
class Histogram2D {
 public:
  Histogram2D(double xlo, double xhi, std::size_t xbins,
              double ylo, double yhi, std::size_t ybins)
      : xlo_(xlo), xhi_(xhi), ylo_(ylo), yhi_(yhi),
        xbins_(xbins), ybins_(ybins), counts_(xbins * ybins, 0.0) {
    BNS_CHECK(xhi > xlo && yhi > ylo);
    BNS_CHECK(xbins > 0 && ybins > 0);
  }

  void add(double x, double y, double weight = 1.0) {
    if (x < xlo_ || x >= xhi_ || y < ylo_ || y >= yhi_) return;
    const auto bx = std::min(static_cast<std::size_t>((x - xlo_) / (xhi_ - xlo_) *
                                                      static_cast<double>(xbins_)),
                             xbins_ - 1);
    const auto by = std::min(static_cast<std::size_t>((y - ylo_) / (yhi_ - ylo_) *
                                                      static_cast<double>(ybins_)),
                             ybins_ - 1);
    counts_[by * xbins_ + bx] += weight;
  }

  std::size_t xbins() const { return xbins_; }
  std::size_t ybins() const { return ybins_; }
  double count(std::size_t bx, std::size_t by) const { return counts_[by * xbins_ + bx]; }
  double total() const {
    double t = 0.0;
    for (double c : counts_) t += c;
    return t;
  }
  double max_count() const { return *std::max_element(counts_.begin(), counts_.end()); }

  double x_center(std::size_t bx) const {
    return xlo_ + (static_cast<double>(bx) + 0.5) * (xhi_ - xlo_) / static_cast<double>(xbins_);
  }
  double y_center(std::size_t by) const {
    return ylo_ + (static_cast<double>(by) + 0.5) * (yhi_ - ylo_) / static_cast<double>(ybins_);
  }

 private:
  double xlo_, xhi_, ylo_, yhi_;
  std::size_t xbins_, ybins_;
  std::vector<double> counts_;
};

}  // namespace bonsai
