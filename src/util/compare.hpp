// Force-field comparison metrics shared by the validation CLI and the test
// suite, so the validator and the tests cannot silently diverge. Both sets
// must be index-aligned (same particle order, e.g. both sorted by id).
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "tree/particle.hpp"
#include "util/stats.hpp"

namespace bonsai {

// Median of |a_test - a_ref| / max(|a_ref|, floor) over all particles.
inline double median_acc_error(const ParticleSet& test, const ParticleSet& ref) {
  std::vector<double> err;
  err.reserve(ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    err.push_back(norm(test.acc(i) - ref.acc(i)) / std::max(norm(ref.acc(i)), 1e-300));
  return percentile(err, 0.5);
}

// Root-mean-square of the absolute acceleration difference.
inline double rms_acc_diff(const ParticleSet& a, const ParticleSet& b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += norm2(a.acc(i) - b.acc(i));
  return a.empty() ? 0.0 : std::sqrt(sum / static_cast<double>(a.size()));
}

}  // namespace bonsai
