// Low-overhead span tracer producing Chrome trace-event / Perfetto output.
//
// Each instrumented thread appends fixed-size RawSpan records into its own
// ring buffer; a global registry keeps every thread's buffer reachable so a
// driver can drain them after the step. When tracing is disabled (the
// default) ScopedSpan reduces to one relaxed atomic load per scope, so the
// instrumentation can stay compiled in everywhere.
//
// Spans carry the ids the async pipeline is organised around: rank, lane
// (thread of execution inside a process), step, peer and byte count. The
// cluster layer serializes drained spans into a Trace wire frame and the
// coordinator merges all ranks into one trace file, shifting worker
// timestamps by an NTP-style clock-offset estimate (estimate_clock_offset).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/timer.hpp"

namespace bonsai::trace {

// Owned form of a span: what drains, crosses the wire and gets merged.
// Unset argument fields are -1 (they are omitted from the trace JSON).
struct Span {
  std::string name;
  std::int64_t begin_ns = 0;
  std::int64_t end_ns = 0;
  std::int32_t rank = -1;  // -1 = coordinator / no rank
  std::int32_t lane = -1;
  std::int64_t step = -1;
  std::int64_t peer = -2;  // -2 = unset (-1 is a real id: the coordinator)
  std::int64_t bytes = -1;
};

// In-buffer form: the name must be a string literal (or otherwise outlive the
// drain), so recording a span never allocates.
struct RawSpan {
  const char* name = nullptr;
  std::int64_t begin_ns = 0;
  std::int64_t end_ns = 0;
  std::int32_t rank = -1;
  std::int32_t lane = -1;
  std::int64_t step = -1;
  std::int64_t peer = -2;
  std::int64_t bytes = -1;
};

// Process-wide tracer: an enabled flag, plus the registry of per-thread ring
// buffers. All methods are thread-safe.
class Tracer {
 public:
  static Tracer& instance();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  // Appends into the calling thread's ring buffer; when the ring is full the
  // oldest span is overwritten and the drop is counted.
  void emit(const RawSpan& s);

  // Removes and returns the recorded spans of every thread (including
  // threads that have since exited), in per-thread recording order.
  std::vector<Span> drain_all();

  // Removes and returns only the calling thread's recorded spans. Used by
  // cluster workers and the coordinator, whose spans are all emitted from
  // the driver thread, so concurrent in-process peers cannot steal them.
  std::vector<Span> drain_thread();

  // Spans overwritten since the last drain (all threads).
  std::uint64_t dropped();

  // Ring capacity per thread.
  static constexpr std::size_t kRingCapacity = 1 << 15;

 private:
  Tracer() = default;
  struct ThreadBuffer;
  std::shared_ptr<ThreadBuffer> this_thread_buffer();

  std::atomic<bool> enabled_{false};
  std::mutex registry_mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

// RAII span: samples now_ns() at construction and emits on destruction when
// tracing is enabled. `name` must be a string literal. Argument fields can be
// filled in any time before destruction.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, std::int32_t rank = -1,
                      std::int32_t lane = -1, std::int64_t step = -1)
      : armed_(Tracer::instance().enabled()) {
    if (!armed_) return;
    raw_.name = name;
    raw_.rank = rank;
    raw_.lane = lane;
    raw_.step = step;
    raw_.begin_ns = now_ns();
  }

  ~ScopedSpan() {
    if (!armed_) return;
    raw_.end_ns = now_ns();
    Tracer::instance().emit(raw_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void set_peer(std::int64_t peer) { raw_.peer = peer; }
  void set_bytes(std::int64_t bytes) { raw_.bytes = bytes; }
  void set_step(std::int64_t step) { raw_.step = step; }

 private:
  bool armed_;
  RawSpan raw_;
};

// One worker's clock handshake for a step: the coordinator's send/receive
// times and the worker's corresponding local receive/send times, all on each
// machine's own steady clock.
struct ClockSync {
  std::int64_t coord_post_ns = 0;    // coordinator: StepBegin posted
  std::int64_t coord_arrive_ns = 0;  // coordinator: Trace frame arrived
  std::int64_t worker_recv_ns = 0;   // worker: StepBegin decoded
  std::int64_t worker_send_ns = 0;   // worker: Trace frame encoded
};

// NTP-style offset estimate: add the result to a worker-local timestamp to
// express it on the coordinator's clock. Assumes symmetric network delay.
std::int64_t estimate_clock_offset(const ClockSync& s);

// Shifts every span's begin/end by offset_ns (in place).
void shift_spans(std::vector<Span>& spans, std::int64_t offset_ns);

// Writes merged spans as Chrome trace-event JSON ({"traceEvents": [...]}),
// loadable in Perfetto or chrome://tracing. pid = rank + 1 (the coordinator's
// rank -1 becomes pid 0), tid = lane (-1 maps to the driver thread 0).
// process_names optionally labels pids via metadata events, keyed by rank.
void write_chrome_trace(std::ostream& os, const std::vector<Span>& spans,
                        const std::map<int, std::string>& process_names = {});

}  // namespace bonsai::trace
