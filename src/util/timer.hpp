// Wall-clock timing helpers and the named time-breakdown accumulator used to
// reproduce the per-operation rows of Table II.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bonsai {

// Monotonic clock sample in nanoseconds. The single time source shared by the
// stage timers and the span tracer, so stage rows and trace spans are always
// on the same clock and directly comparable.
inline std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Simple monotonic wall-clock timer.
class WallTimer {
 public:
  WallTimer() : start_ns_(now_ns()) {}

  void reset() { start_ns_ = now_ns(); }

  // Seconds elapsed since construction or last reset().
  double elapsed() const {
    return static_cast<double>(now_ns() - start_ns_) * 1e-9;
  }

 private:
  std::int64_t start_ns_;
};

// Accumulates named timing buckets: breakdown.add("Tree-construction", dt).
// Insertion order is preserved so tables print in pipeline order.
class TimeBreakdown {
 public:
  void add(const std::string& name, double seconds) {
    auto it = index_.find(name);
    if (it == index_.end()) {
      index_.emplace(name, entries_.size());
      entries_.push_back({name, seconds});
    } else {
      entries_[it->second].seconds += seconds;
    }
  }

  double get(const std::string& name) const {
    auto it = index_.find(name);
    return it == index_.end() ? 0.0 : entries_[it->second].seconds;
  }

  double total() const {
    double t = 0.0;
    for (const auto& e : entries_) t += e.seconds;
    return t;
  }

  struct Entry {
    std::string name;
    double seconds;
  };

  const std::vector<Entry>& entries() const { return entries_; }

  void clear() {
    entries_.clear();
    index_.clear();
  }

  // Merge another breakdown into this one (summing shared buckets).
  void merge(const TimeBreakdown& other) {
    for (const auto& e : other.entries()) add(e.name, e.seconds);
  }

  // Scale all buckets (e.g. to average over steps).
  void scale(double factor) {
    for (auto& e : entries_) e.seconds *= factor;
  }

 private:
  std::vector<Entry> entries_;
  std::map<std::string, std::size_t> index_;
};

// RAII guard adding elapsed time into a breakdown bucket on destruction.
class ScopedTimer {
 public:
  ScopedTimer(TimeBreakdown& breakdown, std::string name)
      : breakdown_(breakdown), name_(std::move(name)) {}
  ~ScopedTimer() { breakdown_.add(name_, timer_.elapsed()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimeBreakdown& breakdown_;
  std::string name_;
  WallTimer timer_;
};

}  // namespace bonsai
