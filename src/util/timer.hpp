// Wall-clock timing helpers and the named time-breakdown accumulator used to
// reproduce the per-operation rows of Table II.
#pragma once

#include <chrono>
#include <map>
#include <string>
#include <vector>

namespace bonsai {

// Simple monotonic wall-clock timer.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  // Seconds elapsed since construction or last reset().
  double elapsed() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

// Accumulates named timing buckets: breakdown.add("Tree-construction", dt).
// Insertion order is preserved so tables print in pipeline order.
class TimeBreakdown {
 public:
  void add(const std::string& name, double seconds) {
    auto it = index_.find(name);
    if (it == index_.end()) {
      index_.emplace(name, entries_.size());
      entries_.push_back({name, seconds});
    } else {
      entries_[it->second].seconds += seconds;
    }
  }

  double get(const std::string& name) const {
    auto it = index_.find(name);
    return it == index_.end() ? 0.0 : entries_[it->second].seconds;
  }

  double total() const {
    double t = 0.0;
    for (const auto& e : entries_) t += e.seconds;
    return t;
  }

  struct Entry {
    std::string name;
    double seconds;
  };

  const std::vector<Entry>& entries() const { return entries_; }

  void clear() {
    entries_.clear();
    index_.clear();
  }

  // Merge another breakdown into this one (summing shared buckets).
  void merge(const TimeBreakdown& other) {
    for (const auto& e : other.entries()) add(e.name, e.seconds);
  }

  // Scale all buckets (e.g. to average over steps).
  void scale(double factor) {
    for (auto& e : entries_) e.seconds *= factor;
  }

 private:
  std::vector<Entry> entries_;
  std::map<std::string, std::size_t> index_;
};

// RAII guard adding elapsed time into a breakdown bucket on destruction.
class ScopedTimer {
 public:
  ScopedTimer(TimeBreakdown& breakdown, std::string name)
      : breakdown_(breakdown), name_(std::move(name)) {}
  ~ScopedTimer() { breakdown_.add(name_, timer_.elapsed()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimeBreakdown& breakdown_;
  std::string name_;
  WallTimer timer_;
};

}  // namespace bonsai
