// bench_kernels: times the interaction-list batch drain in isolation, without
// a simulation around it, so kernel regressions are visible per backend and
// per interaction kind.
//
// Two handcrafted source trees force the walk to emit exactly one kind of
// interaction:
//
//   p-p  — a single particle-leaf root with an infinite opening radius: every
//          group stages all n source particles as one leaf batch.
//   p-c  — an internal root (never MAC-accepted) whose children are multipole
//          leaves: every group stages every cell as one cell batch.
//
// Usage: bench_kernels [n] [iters]   (default n=16384, iters=8)
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "tree/octree.hpp"
#include "tree/traverse.hpp"
#include "util/ic.hpp"
#include "util/timer.hpp"

namespace {

using namespace bonsai;

// Pure p-p source: one particle leaf covering all of `parts`, with rcrit so
// large the group MAC can never accept it as a multipole.
std::vector<TreeNode> make_pp_tree(const ParticleSet& parts) {
  TreeNode root;
  root.kind = NodeKind::kParticleLeaf;
  root.part_begin = 0;
  root.part_end = static_cast<std::uint32_t>(parts.size());
  root.rcrit = 1e30;
  return {root};
}

// Pure p-c source: an unacceptable internal root over `ncells` multipole
// leaves, each carrying the moments of one slice of `parts`.
std::vector<TreeNode> make_pc_tree(const ParticleSet& parts, std::uint32_t ncells) {
  std::vector<TreeNode> nodes;
  TreeNode root;
  root.kind = NodeKind::kInternal;
  root.part_begin = 0;
  root.part_end = static_cast<std::uint32_t>(parts.size());
  root.first_child = 1;
  root.num_children = static_cast<std::uint8_t>(ncells);
  root.rcrit = 1e30;
  nodes.push_back(root);

  const auto n = static_cast<std::uint32_t>(parts.size());
  const std::uint32_t slice = (n + ncells - 1) / ncells;
  for (std::uint32_t c = 0; c < ncells; ++c) {
    const std::uint32_t begin = std::min(n, c * slice);
    const std::uint32_t end = std::min(n, begin + slice);
    TreeNode cell;
    cell.kind = NodeKind::kMultipoleLeaf;
    cell.level = 1;
    for (std::uint32_t i = begin; i < end; ++i) {
      cell.mp.com = cell.mp.com + parts.pos(i) * parts.mass[i];
      cell.mp.mass += parts.mass[i];
    }
    if (cell.mp.mass > 0.0) cell.mp.com = cell.mp.com * (1.0 / cell.mp.mass);
    for (std::uint32_t i = begin; i < end; ++i)
      cell.mp.quad.add_outer(parts.pos(i) - cell.mp.com, parts.mass[i]);
    nodes.push_back(cell);
  }
  return nodes;
}

struct BenchResult {
  double seconds = 0.0;
  InteractionStats stats;
};

BenchResult run_case(const std::vector<TreeNode>& nodes, ParticleSet& targets,
                     std::span<const TargetGroup> groups, KernelBackend backend,
                     bool self, int iters) {
  const TreeView src{nodes, targets.x, targets.y, targets.z, targets.mass};
  TraversalConfig config;
  config.backend = backend;
  config.eps = 1e-2;
  InteractionQueue queue;

  // One untimed warm-up pass so allocation of the staging buffers (and the
  // first page touches) stay out of the measurement.
  traverse_groups_batched(src, targets, groups, config, self, queue);

  BenchResult r;
  WallTimer timer;
  for (int it = 0; it < iters; ++it)
    r.stats += traverse_groups_batched(src, targets, groups, config, self, queue);
  r.seconds = timer.elapsed();
  return r;
}

void print_row(const char* kind, KernelBackend backend, const BenchResult& r) {
  std::cout << kind << "  " << kernel_backend_name(backend) << ": "
            << gflops_rate(r.stats.flops(), r.seconds) << " Gflop/s useful ("
            << gflops_rate(r.stats.padded_flops(), r.seconds) << " padded, fill "
            << 100.0 * r.stats.fill_ratio() << "%), "
            << r.stats.batches() << " batches, " << r.seconds << " s\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 16384;
  const int iters = argc > 2 ? std::atoi(argv[2]) : 8;
  if (n == 0 || iters <= 0) {
    std::cerr << "usage: bench_kernels [n] [iters]\n";
    return 2;
  }

  ParticleSet parts = make_plummer(n, 42);
  const std::vector<TargetGroup> groups = make_groups(parts, 64);
  const std::vector<TreeNode> pp_tree = make_pp_tree(parts);
  const std::vector<TreeNode> pc_tree =
      make_pc_tree(parts, static_cast<std::uint32_t>(std::min<std::size_t>(n, 192)));

  std::cout << "bench_kernels: n=" << n << " groups=" << groups.size()
            << " iters=" << iters << "\n";

  const KernelBackend backends[] = {KernelBackend::kScalar, KernelBackend::kSimd,
                                    KernelBackend::kSimdFloat};
  for (const KernelBackend backend : backends) {
    // Fresh accumulators per case so repeated accumulation cannot overflow
    // into NaN comparisons; forces are not inspected here, only timed.
    for (std::size_t i = 0; i < parts.size(); ++i)
      parts.ax[i] = parts.ay[i] = parts.az[i] = parts.pot[i] = 0.0;
    print_row("p-p", backend, run_case(pp_tree, parts, groups, backend, true, iters));
    for (std::size_t i = 0; i < parts.size(); ++i)
      parts.ax[i] = parts.ay[i] = parts.az[i] = parts.pot[i] = 0.0;
    print_row("p-c", backend, run_case(pc_tree, parts, groups, backend, false, iters));
  }
  return 0;
}
