// bonsai_sim: multi-rank gravitational tree-code driver.
//
// Runs the full per-step pipeline of the paper on a domain decomposition
// (see src/domain/) and prints per-stage timing tables in the style of
// Table II. Ranks live either in-process (--transport inproc, the default)
// or in separate worker processes connected over localhost TCP
// (--transport socket); both speak the same serialized wire frames.
// `--validate` additionally checks the multi-rank forces against a
// single-rank run and against direct summation. Invoked with --rank-id and
// --coordinator, the binary instead runs as one socket worker.
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "domain/cluster.hpp"
#include "domain/simulation.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/snapshot.hpp"
#include "tree/direct.hpp"
#include "util/cli.hpp"
#include "util/compare.hpp"
#include "util/ic.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

void register_flags(bonsai::CommandLine& cli) {
  cli.add_switch("help", "print this listing and exit");
  cli.add_option("n", "N", "particles (default 16384)");
  cli.add_option("ranks", "R", "ranks (default 4)");
  cli.add_option("steps", "S", "simulation steps (default 4)");
  cli.add_option("dt", "DT", "timestep; 0 = forces only (default 1e-3)");
  cli.add_option("theta", "T", "opening angle (default 0.4)");
  cli.add_option("eps", "E", "Plummer softening (default 1e-2)");
  cli.add_option("nleaf", "L", "leaf capacity (default 16)");
  cli.add_option("ncrit", "C", "target-group size (default 64)");
  cli.add_option("curve", "NAME", "hilbert | morton (default hilbert)");
  cli.add_option("threads", "T", "threads per rank (default: hardware/ranks)");
  cli.add_option("seed", "S", "RNG seed (default 42)");
  cli.add_switch("async", "overlapped per-rank pipeline (default)");
  cli.add_switch("no-async", "lockstep stage loop (the PR-1 schedule, for diffing)");
  cli.add_option("balance", "M", "count | cost (feedback on measured gravity time)");
  cli.add_option("kernel", "B",
                 "scalar | simd | simd-float: force backend draining the "
                 "batched interaction lists (default simd)");
  cli.add_option("let-cache", "M",
                 "off | on: incremental LET exchange — per-pair caches and "
                 "delta frames instead of full LETs every step (default off)");
  cli.add_option("let-churn", "R",
                 "let-cache: ship a full LET when the delta frame is not "
                 "below R x the full encoding (default 0.75)");
  cli.add_option("drift", "V",
                 "add a uniform bulk velocity of magnitude V to the initial "
                 "conditions (a drifting cloud; default 0)");
  cli.add_option("bench", "FILE", "write per-step reports as JSON to FILE");
  cli.add_option("trace", "FILE",
                 "record spans and write a merged Chrome trace-event JSON "
                 "(open in Perfetto) to FILE");
  cli.add_switch("validate", "compare forces vs 1-rank run and direct summation");
  cli.add_option("transport", "KIND",
                 "inproc | socket: where ranks live (default inproc)");
  cli.add_option("cluster", "MODE",
                 "hub | spmd: socket cluster style — coordinator-owned state "
                 "vs resident particles + peer migration (default hub)");
  cli.add_option("topology", "T",
                 "star | mesh: worker frames routed via the coordinator vs "
                 "direct worker pair sockets (default star)");
  cli.add_option("port", "P", "socket coordinator listen port (default: ephemeral)");
  cli.add_switch("no-spawn",
                 "socket coordinator: wait for externally launched workers");
  cli.add_option("rank-id", "K", "worker mode: serve rank K for a coordinator");
  cli.add_option("coordinator", "HOST:PORT", "worker mode: coordinator address");
  cli.add_option("listen-port", "P",
                 "worker mode, mesh topology: own listen port (default: ephemeral)");
  cli.add_option("snapshot-in", "FILE",
                 "read initial particles from a snapshot file instead of "
                 "generating a Plummer model");
  cli.add_option("snapshot-out", "FILE",
                 "write the final particle state as a snapshot file (also the "
                 "client-side sink for --job-snapshot / --job-wait)");
  cli.add_option("serve", "P",
                 "run as a resident job server on 127.0.0.1:P (0 = ephemeral)");
  cli.add_option("pool-slots", "S", "job server: total rank slots (default: hardware)");
  cli.add_option("max-jobs", "J", "job server: max resident jobs (default 8)");
  cli.add_option("max-particles", "N",
                 "job server: max resident particles across jobs (default 4194304)");
  cli.add_option("spool-dir", "DIR",
                 "job server: preemption checkpoint directory (default .)");
  cli.add_option("serve-bench", "DIR", "job server: write per-job bench JSON into DIR");
  cli.add_option("server", "HOST:PORT", "client mode: job server address");
  cli.add_switch("submit",
                 "client: submit a job described by --n/--steps/--theta/--eps/"
                 "--dt/--seed/--kernel (or --snapshot-in as the IC)");
  cli.add_option("job-name", "NAME", "client submit: job name label");
  cli.add_option("job-ranks", "R",
                 "client submit: explicit rank count (default 0: the scheduler "
                 "sizes the job by its share of resident particles)");
  cli.add_option("priority", "P",
                 "client submit: scheduling priority; a higher-priority job may "
                 "preempt a running lower-priority one (default 0)");
  cli.add_switch("wait", "client submit: block until the job finishes");
  cli.add_option("job-status", "ID", "client: poll one job's status");
  cli.add_option("job-wait", "ID", "client: block until job ID reaches a terminal state");
  cli.add_option("job-cancel", "ID", "client: cancel job ID");
  cli.add_option("job-snapshot", "ID",
                 "client: fetch job ID's current snapshot (--snapshot-out FILE)");
  cli.add_switch("server-metrics", "client: scrape the server metrics registry as JSON");
  cli.add_switch("server-shutdown", "client: stop the server");
}

// Parse HOST:PORT (shared by --coordinator and --server).
std::pair<std::string, std::uint16_t> parse_host_port(const std::string& value,
                                                      const char* flag) {
  const auto colon = value.rfind(':');
  if (colon == std::string::npos || colon + 1 == value.size())
    throw bonsai::CliError(std::string(flag) + " expects HOST:PORT, got '" + value + "'");
  const std::string port_str = value.substr(colon + 1);
  char* end = nullptr;
  const long port_val = std::strtol(port_str.c_str(), &end, 10);
  if (end == port_str.c_str() || *end != '\0' || port_val < 1 || port_val > 65535)
    throw bonsai::CliError(std::string(flag) + ": bad port '" + port_str + "'");
  return {value.substr(0, colon), static_cast<std::uint16_t>(port_val)};
}

// Write the --bench trajectory; returns false (with a message) on I/O error.
bool write_bench(const std::string& path, const bonsai::domain::RunInfo& info,
                 std::span<const bonsai::domain::StepReport> reports) {
  if (path.empty()) return true;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bonsai_sim: cannot open bench file: " << path << "\n";
    return false;
  }
  bonsai::domain::write_step_report_json(info, reports, out);
  std::cout << "bench: wrote " << reports.size() << " step report(s) to " << path << "\n";
  return true;
}

// Write the --trace file: every step's merged spans as one Chrome trace-event
// JSON, one pid per rank (coordinator first). Returns false on I/O error.
bool write_trace(const std::string& path,
                 std::span<const bonsai::domain::StepReport> reports) {
  if (path.empty()) return true;
  std::vector<bonsai::trace::Span> spans;
  for (const auto& rep : reports)
    spans.insert(spans.end(), rep.spans.begin(), rep.spans.end());
  std::map<int, std::string> names;
  for (const auto& s : spans)
    names.emplace(s.rank, s.rank < 0 ? std::string("coordinator")
                                     : "rank " + std::to_string(s.rank));
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bonsai_sim: cannot open trace file: " << path << "\n";
    return false;
  }
  bonsai::trace::write_chrome_trace(out, spans, names);
  std::cout << "trace: wrote " << spans.size() << " span(s) to " << path << "\n";
  return true;
}

// One validated forces-only step of `multi` (in-process or cluster driver)
// against a 1-rank run and direct summation.
template <typename SimT>
int run_validation(SimT& multi, const bonsai::domain::SimConfig& force_cfg,
                   const bonsai::ParticleSet& initial, const bonsai::domain::RunInfo& info,
                   const std::string& bench_path, const std::string& trace_path) {
  using namespace bonsai;
  multi.init(initial);
  domain::StepReport rep = multi.step();
  print_step_report(rep, std::cout);
  if (!write_bench(bench_path, info, {&rep, 1})) return 2;
  if (!write_trace(trace_path, {&rep, 1})) return 2;
  ParticleSet gathered = multi.gather();

  domain::SimConfig single_cfg = force_cfg;
  single_cfg.nranks = 1;
  domain::Simulation single(single_cfg);
  single.init(initial);
  single.step();
  ParticleSet reference = single.gather();

  const double rms = rms_acc_diff(gathered, reference);
  const double med_vs_single = median_acc_error(gathered, reference);

  // Direct-summation spot check on a deterministic subset.
  const std::size_t nsub = std::min<std::size_t>(gathered.size(), 256);
  std::vector<std::uint32_t> subset;
  Xoshiro256 rng(991);
  for (std::size_t i = 0; i < nsub; ++i)
    subset.push_back(static_cast<std::uint32_t>(rng() % gathered.size()));
  ParticleSet direct = gathered;
  direct_forces_subset(direct, force_cfg.eps, subset);
  std::vector<double> direct_err;
  for (const std::uint32_t i : subset)
    direct_err.push_back(norm(gathered.acc(i) - direct.acc(i)) /
                         std::max(norm(direct.acc(i)), 1e-300));
  const double med_vs_direct = percentile(direct_err, 0.5);

  std::cout << "validate: rms |a_multi - a_single| = " << rms
            << "  (median rel = " << med_vs_single << ")\n"
            << "validate: median rel error vs direct (subset of " << nsub
            << ") = " << med_vs_direct << "\n";

  // The group-MAC envelope for the shared theta (matching the bounds the
  // tier-1 traversal tests use), and the direct-sum theta tolerance.
  const double mac_bound = force_cfg.theta <= 0.3 ? 2e-4 : force_cfg.theta <= 0.5 ? 1e-3 : 5e-3;
  const double direct_bound = force_cfg.theta <= 0.3 ? 2e-5 : force_cfg.theta <= 0.5 ? 2e-4 : 2e-3;
  const bool ok = med_vs_single < mac_bound && med_vs_direct < direct_bound;
  std::cout << (ok ? "validate: PASS\n" : "validate: FAIL\n");
  return ok ? 0 : 1;
}

// The plain step loop with per-step reports and energy diagnostics.
template <typename SimT>
int run_steps(SimT& sim, const bonsai::ParticleSet& initial, int steps,
              const bonsai::domain::RunInfo& info, const std::string& bench_path,
              const std::string& trace_path) {
  sim.init(initial);
  std::vector<bonsai::domain::StepReport> reports;
  reports.reserve(static_cast<std::size_t>(std::max(steps, 0)));
  for (int s = 0; s < steps; ++s) {
    reports.push_back(sim.step());
    print_step_report(reports.back(), std::cout);
    const double ke = sim.kinetic_energy();
    const double pe = sim.potential_energy();
    std::cout << "energy: K=" << bonsai::TextTable::num(ke, 6)
              << " W=" << bonsai::TextTable::num(pe, 6)
              << " E=" << bonsai::TextTable::num(ke + pe, 6) << "\n\n";
  }
  if (!write_bench(bench_path, info, reports)) return 2;
  return write_trace(trace_path, reports) ? 0 : 2;
}

// Worker mode: --transport socket --rank-id K --coordinator HOST:PORT
// [--topology mesh --listen-port P].
int run_worker_mode(const bonsai::CommandLine& cli,
                    bonsai::domain::SocketTopology topology) {
  const auto [host, port] = parse_host_port(cli.get("coordinator", "127.0.0.1:0"),
                                            "--coordinator");
  const int rank_id = static_cast<int>(cli.get_int("rank-id", -1));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  const std::int64_t listen_port = cli.get_int("listen-port", 0);
  if (listen_port < 0 || listen_port > 65535)
    throw bonsai::CliError("--listen-port: expected 0-65535, got '" +
                           std::to_string(listen_port) + "'");
  return bonsai::domain::run_worker(host, port, rank_id, threads, topology,
                                    static_cast<std::uint16_t>(listen_port));
}

// Server mode: --serve P. Resident until a client sends --server-shutdown.
int run_serve_mode(const bonsai::CommandLine& cli) {
  const std::int64_t port = cli.get_int("serve", 0);
  if (port < 0 || port > 65535)
    throw bonsai::CliError("--serve: expected 0-65535, got '" + std::to_string(port) + "'");
  bonsai::serve::ServerConfig scfg;
  scfg.port = static_cast<std::uint16_t>(port);
  scfg.limits.pool_slots = static_cast<int>(cli.get_int("pool-slots", 0));
  scfg.limits.max_concurrent_jobs = static_cast<int>(cli.get_int("max-jobs", 8));
  scfg.limits.max_resident_particles =
      static_cast<std::uint64_t>(cli.get_int("max-particles", 4194304));
  scfg.spool_dir = cli.get("spool-dir", ".");
  scfg.bench_dir = cli.get("serve-bench", "");
  if (scfg.limits.max_concurrent_jobs < 1 || scfg.limits.max_resident_particles < 1)
    throw bonsai::CliError("--max-jobs/--max-particles must be at least 1");
  bonsai::serve::JobServer server(scfg);
  // Flushed line with the bound port, so scripts can wait for readiness.
  std::cout << "serve: job server on 127.0.0.1:" << server.port()
            << " pool_slots=" << server.pool_slots()
            << " max_jobs=" << scfg.limits.max_concurrent_jobs
            << " max_particles=" << scfg.limits.max_resident_particles << std::endl;
  server.wait_for_shutdown();
  std::cout << "serve: shutdown requested, draining\n";
  server.shutdown();
  return 0;
}

void print_job_status(const bonsai::domain::wire::JobStatusMsg& st) {
  std::cout << "job " << st.job_id << ": " << bonsai::domain::wire::job_state_name(st.state)
            << " steps " << st.steps_done << "/" << st.steps_total << " ranks=" << st.ranks
            << " priority=" << st.priority << " n=" << st.n;
  if (!st.reason.empty()) std::cout << " (" << st.reason << ")";
  std::cout << "\n";
}

// Render a terminal job result; writes the final state as a snapshot file
// when `snapshot_out` is given. Exit code 0 only for a completed job.
int print_job_result(const bonsai::domain::wire::JobResultMsg& res,
                     const std::string& snapshot_out) {
  namespace wire = bonsai::domain::wire;
  std::cout << "job " << res.job_id << ": " << wire::job_state_name(res.state)
            << " steps_done=" << res.steps_done;
  if (res.state == wire::JobState::kCompleted)
    std::cout << " K=" << bonsai::TextTable::num(res.kinetic, 6)
              << " W=" << bonsai::TextTable::num(res.potential, 6)
              << " E=" << bonsai::TextTable::num(res.kinetic + res.potential, 6);
  if (!res.reason.empty()) std::cout << " (" << res.reason << ")";
  std::cout << "\n";
  if (!snapshot_out.empty() && res.parts.size() > 0) {
    wire::SnapshotMsg snap;
    snap.job_id = res.job_id;
    snap.next_step = res.steps_done;
    snap.sets.push_back(res.parts);
    bonsai::serve::write_snapshot_file(snapshot_out, snap);
    std::cout << "snapshot: wrote " << res.parts.size() << " particle(s) to "
              << snapshot_out << "\n";
  }
  return res.state == wire::JobState::kCompleted ? 0 : 1;
}

// Client mode: --server HOST:PORT plus exactly one action flag.
int run_client_mode(const bonsai::CommandLine& cli) {
  namespace wire = bonsai::domain::wire;
  namespace serve = bonsai::serve;
  const auto [host, port] = parse_host_port(cli.get("server", ""), "--server");
  const std::string snapshot_out = cli.get("snapshot-out", "");

  if (cli.get_bool("server-shutdown", false)) {
    serve::request_shutdown(host, port);
    std::cout << "server: shutdown requested\n";
    return 0;
  }
  if (cli.get_bool("server-metrics", false)) {
    bonsai::metrics::to_json(std::cout, serve::fetch_metrics(host, port));
    std::cout << "\n";
    return 0;
  }
  if (cli.has("job-status")) {
    const auto st = serve::job_status(host, port,
                                      static_cast<std::int32_t>(cli.get_int("job-status", -1)));
    print_job_status(st);
    return st.state == wire::JobState::kRejected ? 1 : 0;
  }
  if (cli.has("job-cancel")) {
    const auto st = serve::cancel_job(host, port,
                                      static_cast<std::int32_t>(cli.get_int("job-cancel", -1)));
    print_job_status(st);
    return st.state == wire::JobState::kRejected ? 1 : 0;
  }
  if (cli.has("job-wait")) {
    return print_job_result(
        serve::wait_job(host, port, static_cast<std::int32_t>(cli.get_int("job-wait", -1))),
        snapshot_out);
  }
  if (cli.has("job-snapshot")) {
    const auto id = static_cast<std::int32_t>(cli.get_int("job-snapshot", -1));
    const wire::SnapshotMsg snap = serve::fetch_snapshot(host, port, id);
    std::size_t total = 0;
    for (const auto& s : snap.sets) total += s.size();
    std::cout << "job " << id << ": snapshot at step " << snap.next_step << " with "
              << snap.sets.size() << " rank set(s), " << total << " particle(s)\n";
    if (snapshot_out.empty())
      throw bonsai::CliError("--job-snapshot needs --snapshot-out FILE");
    serve::write_snapshot_file(snapshot_out, snap);
    std::cout << "snapshot: wrote " << total << " particle(s) to " << snapshot_out << "\n";
    return total > 0 ? 0 : 1;
  }
  if (cli.get_bool("submit", false)) {
    wire::JobSpec spec;
    spec.name = cli.get("job-name", "");
    spec.n = static_cast<std::uint64_t>(cli.get_int("n", 16384));
    spec.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
    spec.steps = static_cast<std::int32_t>(cli.get_int("steps", 4));
    spec.ranks = static_cast<std::int32_t>(cli.get_int("job-ranks", 0));
    spec.priority = static_cast<std::int32_t>(cli.get_int("priority", 0));
    spec.theta = cli.get_double("theta", 0.4);
    spec.eps = cli.get_double("eps", 1e-2);
    spec.dt = cli.get_double("dt", 1e-3);
    const std::string kernel_name = cli.get("kernel", "simd");
    const auto kernel = bonsai::kernel_backend_from_name(kernel_name);
    if (!kernel)
      throw bonsai::CliError("--kernel: expected scalar, simd or simd-float, got '" +
                             kernel_name + "'");
    spec.kernel = *kernel;
    const std::string snapshot_in = cli.get("snapshot-in", "");
    if (!snapshot_in.empty())
      spec.parts = serve::flatten_snapshot(serve::read_snapshot_file(snapshot_in));
    const auto st = serve::submit_job(host, port, spec);
    if (st.state == wire::JobState::kRejected) {
      std::cout << "rejected: " << st.reason << "\n";
      return 1;
    }
    std::cout << "submitted job " << st.job_id << " n=" << st.n << " steps="
              << st.steps_total << " priority=" << st.priority << std::endl;
    if (cli.get_bool("wait", false))
      return print_job_result(serve::wait_job(host, port, st.job_id), snapshot_out);
    return 0;
  }
  throw bonsai::CliError(
      "--server needs one of --submit, --job-status, --job-wait, --job-cancel, "
      "--job-snapshot, --server-metrics, --server-shutdown");
}

}  // namespace

int main(int argc, char** argv) {
  bonsai::CommandLine cli;
  register_flags(cli);
  try {
    cli.parse(argc, argv);

    if (cli.get_bool("help", false)) {
      std::cout << cli.help("bonsai_sim", "multi-rank Barnes-Hut gravity driver");
      return 0;
    }

    if (cli.has("serve")) return run_serve_mode(cli);
    if (cli.has("server")) return run_client_mode(cli);

    const std::string transport = cli.get("transport", "inproc");
    if (transport != "inproc" && transport != "socket")
      throw bonsai::CliError("--transport: expected inproc or socket, got '" + transport +
                             "'");
    const bool socket_mode = transport == "socket";

    const std::string cluster = cli.get("cluster", "hub");
    if (cluster != "hub" && cluster != "spmd")
      throw bonsai::CliError("--cluster: expected hub or spmd, got '" + cluster + "'");
    if (cli.has("cluster") && !socket_mode)
      throw bonsai::CliError(
          "--cluster applies to --transport socket (in-process ranks are "
          "already resident)");

    const std::string topology_str = cli.get("topology", "star");
    if (topology_str != "star" && topology_str != "mesh")
      throw bonsai::CliError("--topology: expected star or mesh, got '" + topology_str +
                             "'");
    if (cli.has("topology") && !socket_mode)
      throw bonsai::CliError(
          "--topology applies to --transport socket (in-process ranks share "
          "one address space)");
    const bonsai::domain::SocketTopology topology =
        topology_str == "mesh" ? bonsai::domain::SocketTopology::kMesh
                               : bonsai::domain::SocketTopology::kStar;

    if (cli.has("rank-id")) {
      if (!socket_mode)
        throw bonsai::CliError("--rank-id only applies to --transport socket workers");
      return run_worker_mode(cli, topology);
    }
    if (cli.has("listen-port"))
      throw bonsai::CliError("--listen-port only applies to --rank-id workers");

    bonsai::domain::SimConfig cfg;
    auto n = static_cast<std::size_t>(cli.get_int("n", 16384));
    cfg.nranks = static_cast<int>(cli.get_int("ranks", 4));
    cfg.theta = cli.get_double("theta", 0.4);
    cfg.eps = cli.get_double("eps", 1e-2);
    cfg.nleaf = static_cast<int>(cli.get_int("nleaf", bonsai::Octree::kDefaultNLeaf));
    cfg.ncrit = static_cast<int>(cli.get_int("ncrit", 64));
    cfg.dt = cli.get_double("dt", 1e-3);
    cfg.threads_per_rank = static_cast<std::size_t>(cli.get_int("threads", 0));
    cfg.curve = cli.get("curve", "hilbert") == "morton" ? bonsai::sfc::CurveType::kMorton
                                                        : bonsai::sfc::CurveType::kHilbert;
    cfg.async = cli.get_bool("async", true) && !cli.get_bool("no-async", false);
    cfg.balance = cli.get("balance", "count") == "cost" ? bonsai::domain::BalanceMode::kCost
                                                        : bonsai::domain::BalanceMode::kCount;
    const std::string kernel_name = cli.get("kernel", "simd");
    const auto kernel = bonsai::kernel_backend_from_name(kernel_name);
    if (!kernel)
      throw bonsai::CliError("--kernel: expected scalar, simd or simd-float, got '" +
                             kernel_name + "'");
    cfg.kernel = *kernel;
    const std::string let_cache_str = cli.get("let-cache", "off");
    if (let_cache_str != "off" && let_cache_str != "on")
      throw bonsai::CliError("--let-cache: expected off or on, got '" + let_cache_str +
                             "'");
    cfg.let_cache = let_cache_str == "on";
    cfg.let_churn = cli.get_double("let-churn", 0.75);
    if (!(cfg.let_churn > 0.0 && cfg.let_churn <= 1.0))
      throw bonsai::CliError("--let-churn: expected a ratio in (0, 1]");
    const std::string bench_path = cli.get("bench", "");
    const std::string trace_path = cli.get("trace", "");
    cfg.trace = !trace_path.empty();
    const auto steps = static_cast<int>(cli.get_int("steps", 4));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
    const bool validate = cli.get_bool("validate", false);

    const std::string snapshot_in = cli.get("snapshot-in", "");
    const std::string snapshot_out = cli.get("snapshot-out", "");
    if (!snapshot_out.empty() && validate)
      throw bonsai::CliError(
          "--snapshot-out applies to plain runs (it writes the final particle "
          "state after the last step, not the validation comparison)");

    bonsai::ParticleSet initial;
    if (!snapshot_in.empty()) {
      initial = bonsai::serve::flatten_snapshot(bonsai::serve::read_snapshot_file(snapshot_in));
      n = initial.size();
      std::cout << "snapshot: read " << n << " particle(s) from " << snapshot_in << "\n";
    } else {
      initial = bonsai::make_plummer(n, seed);
    }
    const double drift = cli.get_double("drift", 0.0);
    if (drift != 0.0) {
      // A bulk velocity keeps the cloud coherent while its bounding boxes and
      // tree geometry translate every step — the steady churn the incremental
      // LET cache is built for (and its linear motion is exactly what the
      // delta codec's polynomial predictor extrapolates).
      for (std::size_t i = 0; i < initial.size(); ++i) {
        initial.vx[i] += drift;
        initial.vy[i] += 0.5 * drift;
        initial.vz[i] += 0.25 * drift;
      }
    }

    bonsai::domain::RunInfo info;
    info.ranks = cfg.nranks;
    info.num_particles = n;
    info.theta = cfg.theta;
    info.transport = transport;
    info.topology = socket_mode ? topology_str : "none";
    info.cluster = socket_mode ? cluster : "none";
    info.balance = cfg.balance == bonsai::domain::BalanceMode::kCost ? "cost" : "count";
    info.kernel = bonsai::kernel_backend_name(cfg.kernel);
    info.async = cfg.async;
    info.let_cache = cfg.let_cache;

    std::cout << "bonsai_sim: n=" << n << " ranks=" << cfg.nranks << " theta=" << cfg.theta
              << " eps=" << cfg.eps << " dt=" << cfg.dt << " steps=" << steps
              << " transport=" << transport
              << " kernel=" << bonsai::kernel_backend_name(cfg.kernel)
              << (cfg.async ? " schedule=async" : " schedule=lockstep")
              << (cfg.balance == bonsai::domain::BalanceMode::kCost ? " balance=cost" : "")
              << (cfg.let_cache ? " let-cache=on" : "") << "\n";

    if (socket_mode) {
      if (!cfg.async)
        throw bonsai::CliError(
            "--no-async is in-process only: socket workers always run the "
            "per-arrival async pipeline");
      const std::int64_t port = cli.get_int("port", 0);
      if (port < 0 || port > 65535)
        throw bonsai::CliError("--port: expected 0-65535, got '" +
                               std::to_string(port) + "'");
      if (cli.get_bool("no-spawn", false) && port == 0)
        throw bonsai::CliError(
            "--no-spawn needs a fixed --port: external workers cannot learn "
            "an ephemeral port (the coordinator blocks before printing it)");
      bonsai::domain::ClusterConfig ccfg;
      ccfg.sim = cfg;
      if (validate) ccfg.sim.dt = 0.0;  // forces-only comparison
      ccfg.mode = cluster == "spmd" ? bonsai::domain::ClusterMode::kSpmd
                                    : bonsai::domain::ClusterMode::kHub;
      ccfg.topology = topology;
      ccfg.port = static_cast<std::uint16_t>(port);
      ccfg.spawn_workers = !cli.get_bool("no-spawn", false);
      ccfg.program = argv[0];
      ccfg.worker_threads = cfg.threads_per_rank;
      bonsai::domain::ClusterSimulation sim(ccfg);
      std::cout << "cluster: " << cluster << " (" << topology_str
                << " topology) coordinator on 127.0.0.1:" << sim.port() << " driving "
                << cfg.nranks << (ccfg.spawn_workers ? " spawned" : " external")
                << " worker process(es)\n";
      if (validate)
        return run_validation(sim, ccfg.sim, initial, info, bench_path, trace_path);
      const int rc = run_steps(sim, initial, steps, info, bench_path, trace_path);
      if (rc == 0 && !snapshot_out.empty()) {
        // Cluster snapshot: gather() collects the final state (forces
        // included) into one id-sorted set, so two runs that agree bitwise on
        // the physics write byte-identical files — `cmp`-able by CI.
        bonsai::domain::wire::SnapshotMsg snap;
        snap.job_id = -1;
        snap.next_step = steps;
        snap.sets.push_back(sim.gather());
        bonsai::serve::write_snapshot_file(snapshot_out, snap);
        std::cout << "snapshot: wrote " << snap.sets[0].size() << " particle(s) to "
                  << snapshot_out << "\n";
      }
      return rc;
    }

    // In-process ranks share this process's tracer (the cluster coordinator
    // enables its own, and ships the flag to workers in the Config frame).
    if (cfg.trace) bonsai::trace::Tracer::instance().set_enabled(true);
    if (validate) {
      bonsai::domain::SimConfig force_cfg = cfg;
      force_cfg.dt = 0.0;
      bonsai::domain::Simulation sim(force_cfg);
      return run_validation(sim, force_cfg, initial, info, bench_path, trace_path);
    }
    bonsai::domain::Simulation sim(cfg);
    const int rc = run_steps(sim, initial, steps, info, bench_path, trace_path);
    if (rc == 0 && !snapshot_out.empty()) {
      bonsai::domain::wire::SnapshotMsg snap;
      snap.job_id = -1;
      snap.next_step = sim.next_step();
      snap.sets = sim.checkpoint_sets();
      bonsai::serve::write_snapshot_file(snapshot_out, snap);
      std::cout << "snapshot: wrote " << sim.num_particles() << " particle(s) to "
                << snapshot_out << "\n";
    }
    return rc;
  } catch (const bonsai::CliError& e) {
    std::cerr << "bonsai_sim: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "bonsai_sim: fatal: " << e.what() << "\n";
    return 2;
  }
  return 0;
}
