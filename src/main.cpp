// bonsai_sim: multi-rank gravitational tree-code driver.
//
// Runs the full per-step pipeline of the paper on an in-process domain
// decomposition (see src/domain/) and prints per-stage timing tables in the
// style of Table II. `--validate` additionally checks the multi-rank forces
// against a single-rank run and against direct summation.
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "domain/simulation.hpp"
#include "tree/direct.hpp"
#include "util/cli.hpp"
#include "util/compare.hpp"
#include "util/ic.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

void print_usage() {
  std::cout <<
      "bonsai_sim — multi-rank Barnes-Hut gravity driver\n"
      "  --n N          particles (default 16384)\n"
      "  --ranks R      in-process ranks (default 4)\n"
      "  --steps S      simulation steps (default 4)\n"
      "  --dt DT        timestep; 0 = forces only (default 1e-3)\n"
      "  --theta T      opening angle (default 0.4)\n"
      "  --eps E        Plummer softening (default 1e-2)\n"
      "  --nleaf L      leaf capacity (default 16)\n"
      "  --ncrit C      target-group size (default 64)\n"
      "  --curve NAME   hilbert | morton (default hilbert)\n"
      "  --threads T    threads per rank (default: hardware/ranks)\n"
      "  --seed S       RNG seed (default 42)\n"
      "  --async        overlapped per-rank pipeline (default)\n"
      "  --no-async     lockstep stage loop (the PR-1 schedule, for diffing)\n"
      "  --balance M    count | cost (feedback on measured gravity time)\n"
      "  --bench FILE   write per-step reports as JSON to FILE\n"
      "  --validate     compare forces vs 1-rank run and direct summation\n";
}

// Write the --bench trajectory; returns false (with a message) on I/O error.
bool write_bench(const std::string& path,
                 std::span<const bonsai::domain::StepReport> reports) {
  if (path.empty()) return true;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bonsai_sim: cannot open bench file: " << path << "\n";
    return false;
  }
  bonsai::domain::write_step_report_json(reports, out);
  std::cout << "bench: wrote " << reports.size() << " step report(s) to " << path << "\n";
  return true;
}

int run_validation(const bonsai::domain::SimConfig& cfg, const bonsai::ParticleSet& initial,
                   const std::string& bench_path) {
  using namespace bonsai;
  domain::SimConfig force_cfg = cfg;
  force_cfg.dt = 0.0;  // forces-only comparison

  domain::Simulation multi(force_cfg);
  multi.init(initial);
  domain::StepReport rep = multi.step();
  print_step_report(rep, std::cout);
  if (!write_bench(bench_path, {&rep, 1})) return 2;
  ParticleSet gathered = multi.gather();

  domain::SimConfig single_cfg = force_cfg;
  single_cfg.nranks = 1;
  domain::Simulation single(single_cfg);
  single.init(initial);
  single.step();
  ParticleSet reference = single.gather();

  const double rms = rms_acc_diff(gathered, reference);
  const double med_vs_single = median_acc_error(gathered, reference);

  // Direct-summation spot check on a deterministic subset.
  const std::size_t nsub = std::min<std::size_t>(gathered.size(), 256);
  std::vector<std::uint32_t> subset;
  Xoshiro256 rng(991);
  for (std::size_t i = 0; i < nsub; ++i)
    subset.push_back(static_cast<std::uint32_t>(rng() % gathered.size()));
  ParticleSet direct = gathered;
  direct_forces_subset(direct, force_cfg.eps, subset);
  std::vector<double> direct_err;
  for (const std::uint32_t i : subset)
    direct_err.push_back(norm(gathered.acc(i) - direct.acc(i)) /
                         std::max(norm(direct.acc(i)), 1e-300));
  const double med_vs_direct = percentile(direct_err, 0.5);

  std::cout << "validate: rms |a_multi - a_single| = " << rms
            << "  (median rel = " << med_vs_single << ")\n"
            << "validate: median rel error vs direct (subset of " << nsub
            << ") = " << med_vs_direct << "\n";

  // The group-MAC envelope for the shared theta (matching the bounds the
  // tier-1 traversal tests use), and the direct-sum theta tolerance.
  const double mac_bound = force_cfg.theta <= 0.3 ? 2e-4 : force_cfg.theta <= 0.5 ? 1e-3 : 5e-3;
  const double direct_bound = force_cfg.theta <= 0.3 ? 2e-5 : force_cfg.theta <= 0.5 ? 2e-4 : 2e-3;
  const bool ok = med_vs_single < mac_bound && med_vs_direct < direct_bound;
  std::cout << (ok ? "validate: PASS\n" : "validate: FAIL\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bonsai::CommandLine cli(argc, argv);
  if (cli.has("help")) {
    print_usage();
    return 0;
  }

  bonsai::domain::SimConfig cfg;
  const auto n = static_cast<std::size_t>(cli.get_int("n", 16384));
  cfg.nranks = static_cast<int>(cli.get_int("ranks", 4));
  cfg.theta = cli.get_double("theta", 0.4);
  cfg.eps = cli.get_double("eps", 1e-2);
  cfg.nleaf = static_cast<int>(cli.get_int("nleaf", bonsai::Octree::kDefaultNLeaf));
  cfg.ncrit = static_cast<int>(cli.get_int("ncrit", 64));
  cfg.dt = cli.get_double("dt", 1e-3);
  cfg.threads_per_rank = static_cast<std::size_t>(cli.get_int("threads", 0));
  cfg.curve = cli.get("curve", "hilbert") == "morton" ? bonsai::sfc::CurveType::kMorton
                                                      : bonsai::sfc::CurveType::kHilbert;
  cfg.async = cli.get_bool("async", true) && !cli.get_bool("no-async", false);
  cfg.balance = cli.get("balance", "count") == "cost" ? bonsai::domain::BalanceMode::kCost
                                                      : bonsai::domain::BalanceMode::kCount;
  const std::string bench_path = cli.get("bench", "");
  const auto steps = static_cast<int>(cli.get_int("steps", 4));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  std::cout << "bonsai_sim: n=" << n << " ranks=" << cfg.nranks << " theta=" << cfg.theta
            << " eps=" << cfg.eps << " dt=" << cfg.dt << " steps=" << steps
            << (cfg.async ? " schedule=async" : " schedule=lockstep")
            << (cfg.balance == bonsai::domain::BalanceMode::kCost ? " balance=cost" : "")
            << "\n";

  const bonsai::ParticleSet initial = bonsai::make_plummer(n, seed);

  try {
    if (cli.get_bool("validate", false)) return run_validation(cfg, initial, bench_path);

    bonsai::domain::Simulation sim(cfg);
    sim.init(initial);
    std::vector<bonsai::domain::StepReport> reports;
    reports.reserve(static_cast<std::size_t>(std::max(steps, 0)));
    for (int s = 0; s < steps; ++s) {
      reports.push_back(sim.step());
      print_step_report(reports.back(), std::cout);
      const double ke = sim.kinetic_energy();
      const double pe = sim.potential_energy();
      std::cout << "energy: K=" << bonsai::TextTable::num(ke, 6)
                << " W=" << bonsai::TextTable::num(pe, 6)
                << " E=" << bonsai::TextTable::num(ke + pe, 6) << "\n\n";
    }
    if (!write_bench(bench_path, reports)) return 2;
  } catch (const std::exception& e) {
    std::cerr << "bonsai_sim: fatal: " << e.what() << "\n";
    return 2;
  }
  return 0;
}
