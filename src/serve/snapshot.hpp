// Snapshot files: one wire Snapshot frame written to disk, byte-for-byte the
// frame a Transport would carry. The same format serves three masters — the
// job server's preemption checkpoints (spool files), the CLI's
// --snapshot-out/--snapshot-in, and the client-facing Snapshot reply — so a
// suspended job's spool file can be copied out and resubmitted as an initial
// condition, and a --snapshot-out file can seed a served job.
#pragma once

#include <string>

#include "domain/wire.hpp"

namespace bonsai::serve {

// Write `snap` as one encoded Snapshot frame; throws std::runtime_error on
// I/O failure (the path names the problem).
void write_snapshot_file(const std::string& path, const domain::wire::SnapshotMsg& snap);

// Read and decode a snapshot file. Throws std::runtime_error when the file
// cannot be read and wire::WireError when its bytes are not a valid Snapshot
// frame (truncated, corrupted, wrong version — the wire validation applies
// to files exactly as to sockets).
domain::wire::SnapshotMsg read_snapshot_file(const std::string& path);

// Concatenate a snapshot's per-rank sets into one global set (array order:
// rank 0 first). The per-rank split only matters for bit-for-bit resume at
// the same rank count; as an initial condition any rank count works.
ParticleSet flatten_snapshot(const domain::wire::SnapshotMsg& snap);

}  // namespace bonsai::serve
