#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <utility>

#include "domain/decomposition.hpp"
#include "domain/rank.hpp"
#include "domain/simulation.hpp"
#include "serve/snapshot.hpp"
#include "util/check.hpp"
#include "util/ic.hpp"

namespace bonsai::serve {

namespace wire = domain::wire;

namespace {

bool terminal(wire::JobState s) {
  return s == wire::JobState::kCompleted || s == wire::JobState::kCancelled ||
         s == wire::JobState::kFailed || s == wire::JobState::kRejected;
}

bool resident(wire::JobState s) {
  return s == wire::JobState::kQueued || s == wire::JobState::kRunning ||
         s == wire::JobState::kSuspended;
}

}  // namespace

void check_pool_slots(int pool_slots, int free_slots, std::span<const int> running_ranks) {
  BNS_CHECK(pool_slots >= 1, "pool has no slots");
  BNS_CHECK(free_slots >= 0 && free_slots <= pool_slots,
            "free slot count ", free_slots, " outside [0, ", pool_slots, "]");
  int held = 0;
  for (const int r : running_ranks) {
    BNS_CHECK(r >= 1, "running job holds no slots");
    held += r;
  }
  BNS_CHECK(held == pool_slots - free_slots, "pool ledger out of balance: running jobs hold ",
            held, " slots but ", pool_slots - free_slots, " are handed out");
}

std::string with_job_label(std::string name, int job_id) {
  const std::string label = "job=" + std::to_string(job_id);
  if (!name.empty() && name.back() == '}') {
    name.pop_back();
    name += "," + label + "}";
  } else {
    name += "{" + label + "}";
  }
  return name;
}

metrics::Snapshot label_job_metrics(const metrics::Snapshot& m, int job_id) {
  metrics::Snapshot out;
  for (const auto& [name, v] : m.counters) out.counters[with_job_label(name, job_id)] = v;
  for (const auto& [name, v] : m.gauges) out.gauges[with_job_label(name, job_id)] = v;
  for (const auto& [name, h] : m.histograms) out.histograms[with_job_label(name, job_id)] = h;
  return out;
}

struct JobServer::Job {
  int id = 0;
  wire::JobSpec spec;
  std::uint64_t n_particles = 0;
  wire::JobState state = wire::JobState::kQueued;
  std::string reason;
  int steps_done = 0;
  int ranks = 0;  // fixed at first schedule; a resume must reuse it (the
                  // per-rank checkpoint split only replays at this count)
  bool cancel_requested = false;
  bool suspend_requested = false;
  bool snapshot_requested = false;
  wire::SnapshotMsg live_snapshot;  // filled at a step boundary on request
  std::string spool_path;
  bool has_checkpoint = false;
  double kinetic = 0.0, potential = 0.0;
  ParticleSet result;
  std::vector<domain::StepReport> reports;
  std::thread runner;
};

void JobServer::check_pool_locked() const {
  std::vector<int> running;
  for (const auto& [id, job] : jobs_)
    if (job->state == wire::JobState::kRunning) running.push_back(job->ranks);
  check_pool_slots(pool_slots_, free_slots_, running);
}

JobServer::JobServer(const ServerConfig& cfg) : cfg_(cfg), listener_(cfg.port) {
  pool_slots_ = cfg_.limits.pool_slots > 0
                    ? cfg_.limits.pool_slots
                    : std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  free_slots_ = pool_slots_;
  std::error_code ec;
  std::filesystem::create_directories(cfg_.spool_dir, ec);
  if (!cfg_.bench_dir.empty()) std::filesystem::create_directories(cfg_.bench_dir, ec);
  accept_thread_ = std::thread(&JobServer::accept_loop, this);
}

JobServer::~JobServer() { shutdown(); }

void JobServer::wait_for_shutdown() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return shutdown_requested_ || shutting_down_; });
}

void JobServer::shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (shutting_down_) return;  // idempotent: dtor after an explicit call
    shutting_down_ = true;
    for (auto& [id, job] : jobs_) {
      if (job->state == wire::JobState::kQueued || job->state == wire::JobState::kSuspended) {
        job->state = wire::JobState::kCancelled;
        job->reason = "server shutdown";
      } else if (job->state == wire::JobState::kRunning) {
        job->cancel_requested = true;  // the runner cancels at its boundary
      }
    }
    cv_.notify_all();
  }
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> runners;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [id, job] : jobs_)
      if (job->runner.joinable()) runners.push_back(std::move(job->runner));
    for (auto& t : retired_)
      if (t.joinable()) runners.push_back(std::move(t));
    retired_.clear();
  }
  for (auto& t : runners) t.join();
  {
    std::lock_guard<std::mutex> g(conn_mu_);
    for (FrameSocket* s : conns_) s->shutdown_rw();
  }
  for (auto& t : handlers_)
    if (t.joinable()) t.join();
}

void JobServer::accept_loop() {
  while (std::optional<FrameSocket> sock = listener_.accept()) {
    std::lock_guard<std::mutex> g(conn_mu_);
    handlers_.emplace_back(&JobServer::handle_client, this, std::move(*sock));
  }
}

void JobServer::handle_client(FrameSocket sock) {
  {
    std::lock_guard<std::mutex> g(conn_mu_);
    conns_.push_back(&sock);
  }
  while (true) {
    std::optional<std::vector<std::uint8_t>> frame;
    try {
      frame = sock.recv_or_eof();
    } catch (const NetError&) {
      break;
    }
    if (!frame) break;
    std::vector<std::uint8_t> reply;
    try {
      switch (wire::frame_type(*frame)) {
        case wire::FrameType::kJobSubmit:
          reply = wire::encode_job_status(handle_submit(wire::decode_job_submit(*frame)));
          break;
        case wire::FrameType::kJobStatus: {
          const wire::JobStatusMsg req = wire::decode_job_status(*frame);
          if (req.wait) {
            reply = wire::encode_job_result(wait_result(req.job_id));
          } else {
            std::lock_guard<std::mutex> lk(mu_);
            auto it = jobs_.find(req.job_id);
            wire::JobStatusMsg st;
            if (it != jobs_.end()) {
              st = describe_locked(*it->second);
            } else {
              st.job_id = req.job_id;
              st.state = wire::JobState::kRejected;
              st.reason = "unknown job id";
            }
            reply = wire::encode_job_status(st);
          }
          break;
        }
        case wire::FrameType::kJobCancel:
          reply = wire::encode_job_status(handle_cancel(wire::decode_job_cancel(*frame)));
          break;
        case wire::FrameType::kSnapshot:
          reply = wire::encode_snapshot(handle_snapshot(wire::decode_snapshot(*frame).job_id));
          break;
        case wire::FrameType::kMetricsQuery:
          reply = wire::encode_metrics_report(scrape_metrics());
          break;
        case wire::FrameType::kShutdown: {
          std::lock_guard<std::mutex> lk(mu_);
          shutdown_requested_ = true;
          cv_.notify_all();
          continue;  // no reply; the client just closes
        }
        default: {
          wire::JobStatusMsg err;
          err.state = wire::JobState::kRejected;
          err.reason = std::string("unexpected frame type ") +
                       wire::frame_type_name(wire::frame_type(*frame));
          reply = wire::encode_job_status(err);
          break;
        }
      }
    } catch (const std::exception& e) {
      wire::JobStatusMsg err;
      err.state = wire::JobState::kRejected;
      err.reason = std::string("bad request: ") + e.what();
      reply = wire::encode_job_status(err);
    }
    try {
      sock.send(reply);
    } catch (const NetError&) {
      break;
    }
  }
  std::lock_guard<std::mutex> g(conn_mu_);
  conns_.erase(std::remove(conns_.begin(), conns_.end(), &sock), conns_.end());
}

wire::JobStatusMsg JobServer::handle_submit(wire::JobSpec spec) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::uint64_t n = spec.parts.size() > 0 ? spec.parts.size() : spec.n;

  wire::JobStatusMsg rejected;
  rejected.state = wire::JobState::kRejected;
  rejected.n = n;
  if (shutting_down_) {
    rejected.reason = "server shutting down";
  } else if (n == 0) {
    rejected.reason = "empty job: n=0 and no initial particles";
  } else {
    int resident_jobs = 0;
    std::uint64_t resident_particles = 0;
    for (const auto& [id, job] : jobs_) {
      if (!resident(job->state)) continue;
      ++resident_jobs;
      resident_particles += job->n_particles;
    }
    if (resident_jobs >= cfg_.limits.max_concurrent_jobs) {
      rejected.reason = "job queue full: max_concurrent_jobs=" +
                        std::to_string(cfg_.limits.max_concurrent_jobs);
    } else if (resident_particles + n > cfg_.limits.max_resident_particles) {
      rejected.reason = "resident particles " + std::to_string(resident_particles) + "+" +
                        std::to_string(n) + " would exceed max_resident_particles=" +
                        std::to_string(cfg_.limits.max_resident_particles);
    }
  }
  if (!rejected.reason.empty()) {
    registry_.add_counter("server.jobs.rejected", 1);
    return rejected;
  }

  auto job = std::make_unique<Job>();
  job->id = next_job_id_++;
  job->spec = std::move(spec);
  job->n_particles = n;
  job->spool_path = cfg_.spool_dir + "/job-" + std::to_string(job->id) + ".ckpt";
  Job& ref = *job;
  jobs_.emplace(ref.id, std::move(job));
  registry_.add_counter("server.jobs.submitted", 1);
  schedule_locked();
  return describe_locked(ref);
}

wire::JobStatusMsg JobServer::handle_cancel(std::int32_t job_id) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    wire::JobStatusMsg st;
    st.job_id = job_id;
    st.state = wire::JobState::kRejected;
    st.reason = "unknown job id";
    return st;
  }
  Job& job = *it->second;
  if (job.state == wire::JobState::kQueued || job.state == wire::JobState::kSuspended) {
    // Holds no slots in either state — cancel immediately.
    finish_locked(job, wire::JobState::kCancelled, "cancelled by client");
  } else if (job.state == wire::JobState::kRunning) {
    job.cancel_requested = true;  // honored at the next step boundary
  }
  return describe_locked(job);
}

wire::JobResultMsg JobServer::wait_result(std::int32_t job_id) {
  std::unique_lock<std::mutex> lk(mu_);
  wire::JobResultMsg res;
  res.job_id = job_id;
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    res.state = wire::JobState::kRejected;
    res.reason = "unknown job id";
    return res;
  }
  Job& job = *it->second;
  cv_.wait(lk, [&] { return terminal(job.state); });
  res.state = job.state;
  res.steps_done = job.steps_done;
  res.kinetic = job.kinetic;
  res.potential = job.potential;
  res.reason = job.reason;
  res.parts = job.result;
  return res;
}

wire::SnapshotMsg JobServer::handle_snapshot(std::int32_t job_id) {
  std::unique_lock<std::mutex> lk(mu_);
  wire::SnapshotMsg out;
  out.job_id = job_id;
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return out;
  Job& job = *it->second;
  if (job.state == wire::JobState::kRunning) {
    // Ask the runner to capture at its next step boundary; a state change
    // (suspend/cancel/complete) also wakes us, and we fall through to the
    // handling for the new state.
    job.snapshot_requested = true;
    cv_.wait(lk, [&] { return !job.snapshot_requested || job.state != wire::JobState::kRunning; });
    if (!job.snapshot_requested && job.live_snapshot.job_id == job.id) return job.live_snapshot;
  }
  if (job.state == wire::JobState::kSuspended && job.has_checkpoint) {
    const std::string path = job.spool_path;
    lk.unlock();
    return read_snapshot_file(path);
  }
  if (job.state == wire::JobState::kCompleted) {
    out.next_step = job.steps_done;
    out.sets.push_back(job.result);
    return out;
  }
  out.next_step = job.steps_done;
  return out;
}

metrics::Snapshot JobServer::scrape_metrics() {
  std::lock_guard<std::mutex> lk(mu_);
  metrics::Snapshot out = registry_.snapshot();
  metrics::merge(out, job_metrics_);
  int resident_jobs = 0;
  for (const auto& [id, job] : jobs_)
    if (resident(job->state)) ++resident_jobs;
  out.gauges["server.pool.slots_total"] = pool_slots_;
  out.gauges["server.pool.slots_free"] = free_slots_;
  out.gauges["server.jobs.resident"] = resident_jobs;
  return out;
}

wire::JobStatusMsg JobServer::describe_locked(const Job& job) const {
  wire::JobStatusMsg st;
  st.job_id = job.id;
  st.state = job.state;
  st.steps_done = job.steps_done;
  st.steps_total = job.spec.steps;
  st.ranks = job.ranks;
  st.priority = job.spec.priority;
  st.n = job.n_particles;
  st.reason = job.reason;
  return st;
}

int JobServer::size_ranks_locked(const Job& job) const {
  const int cap = std::min(pool_slots_, 255);  // ranks are byte-addressed
  if (job.spec.ranks > 0) return std::clamp(job.spec.ranks, 1, cap);
  // Cost-balance reuse (the machinery that cuts the Hilbert curve by rank
  // cost): every resident job weighs in with its particle count, the floor
  // keeps small jobs from collapsing to zero, and this job's slot count is
  // its share of the floored weight.
  std::vector<double> weights;
  std::size_t mine = 0;
  for (const auto& [id, other] : jobs_) {
    if (!resident(other->state)) continue;
    if (other->id == job.id) mine = weights.size();
    weights.push_back(static_cast<double>(other->n_particles));
  }
  domain::apply_cost_floor(weights);
  double total = 0.0;
  for (double w : weights) total += w;
  const double share = total > 0.0 ? weights[mine] / total : 1.0;
  const int slots = static_cast<int>(std::lround(share * pool_slots_));
  return std::clamp(slots, 1, cap);
}

void JobServer::schedule_locked() {
  if (shutting_down_) return;
  while (true) {
    // Best startable job: highest priority, FIFO within a priority.
    Job* best = nullptr;
    for (auto& [id, job] : jobs_) {
      if (job->state != wire::JobState::kQueued && job->state != wire::JobState::kSuspended)
        continue;
      if (!best || job->spec.priority > best->spec.priority) best = job.get();
    }
    if (!best) {
      if constexpr (kDcheckEnabled) check_pool_locked();
      return;
    }
    if (best->ranks == 0) best->ranks = size_ranks_locked(*best);
    if (best->ranks <= free_slots_) {
      free_slots_ -= best->ranks;
      best->state = wire::JobState::kRunning;
      // A resumed job's previous runner already exited (or is unwinding its
      // own schedule_locked call); park the handle for shutdown to join.
      if (best->runner.joinable()) retired_.push_back(std::move(best->runner));
      best->runner = std::thread(&JobServer::run_job, this, std::ref(*best));
      continue;
    }
    // Not enough slots: preempt the lowest-priority running job, but only
    // for a strictly higher-priority waiter. The victim checkpoints at its
    // next step boundary and its freed slots re-run this scheduler.
    Job* victim = nullptr;
    for (auto& [id, job] : jobs_) {
      if (job->state != wire::JobState::kRunning) continue;
      if (job->suspend_requested || job->cancel_requested) continue;
      if (!victim || job->spec.priority < victim->spec.priority) victim = job.get();
    }
    if (victim && victim->spec.priority < best->spec.priority) victim->suspend_requested = true;
    if constexpr (kDcheckEnabled) check_pool_locked();
    return;
  }
}

void JobServer::finish_locked(Job& job, wire::JobState state, const std::string& reason) {
  job.state = state;
  if (!reason.empty()) job.reason = reason;
  switch (state) {
    case wire::JobState::kCompleted: registry_.add_counter("server.jobs.completed", 1); break;
    case wire::JobState::kCancelled: registry_.add_counter("server.jobs.cancelled", 1); break;
    case wire::JobState::kFailed: registry_.add_counter("server.jobs.failed", 1); break;
    default: break;
  }
  cv_.notify_all();
  schedule_locked();
}

void JobServer::run_job(Job& job) {
  bool slots_held = true;
  try {
    domain::SimConfig cfg;
    cfg.nranks = job.ranks;
    cfg.theta = job.spec.theta;
    cfg.eps = job.spec.eps;
    cfg.dt = job.spec.dt;
    cfg.kernel = job.spec.kernel;
    // Lockstep with one thread per rank and count balancing is the
    // deterministic schedule: a job preempted to disk and restored into a
    // fresh Simulation with this same config continues bit-for-bit (async
    // grafts remote forces in arrival order; wider device pools change
    // batch boundaries; cost cuts depend on non-replayable timings).
    cfg.async = false;
    cfg.threads_per_rank = 1;
    cfg.balance = domain::BalanceMode::kCount;
    domain::Simulation sim(cfg);

    bool resumed;
    {
      std::lock_guard<std::mutex> lk(mu_);
      resumed = job.has_checkpoint;
    }
    if (resumed) {
      wire::SnapshotMsg ckpt = read_snapshot_file(job.spool_path);
      sim.restore(std::move(ckpt.sets), ckpt.next_step);
      std::lock_guard<std::mutex> lk(mu_);
      registry_.add_counter("server.jobs.resumed", 1);
    } else {
      ParticleSet ic = job.spec.parts.size() > 0
                           ? std::move(job.spec.parts)
                           : make_plummer(job.spec.n, job.spec.seed);
      sim.init(std::move(ic));
    }

    for (int s = sim.next_step(); s < job.spec.steps; ++s) {
      bool suspend = false;
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (job.cancel_requested || shutting_down_) {
          free_slots_ += job.ranks;
          slots_held = false;
          finish_locked(job, wire::JobState::kCancelled, "cancelled by client");
          return;
        }
        suspend = job.suspend_requested;
      }
      if (suspend) {
        wire::SnapshotMsg ckpt;
        ckpt.job_id = job.id;
        ckpt.next_step = s;
        ckpt.sets = sim.checkpoint_sets();
        write_snapshot_file(job.spool_path, ckpt);
        std::lock_guard<std::mutex> lk(mu_);
        job.suspend_requested = false;
        job.has_checkpoint = true;
        job.state = wire::JobState::kSuspended;
        free_slots_ += job.ranks;
        slots_held = false;
        registry_.add_counter("server.jobs.preempted", 1);
        cv_.notify_all();
        schedule_locked();
        return;
      }
      domain::StepReport rep = sim.step();
      {
        std::lock_guard<std::mutex> lk(mu_);
        job.steps_done = s + 1;
        metrics::merge(job_metrics_, label_job_metrics(rep.metrics, job.id));
        registry_.set_gauge(with_job_label("job.num_particles", job.id),
                            static_cast<double>(rep.num_particles));
        registry_.set_gauge(with_job_label("job.steps_done", job.id), job.steps_done);
        if (job.snapshot_requested) {
          job.live_snapshot.job_id = job.id;
          job.live_snapshot.next_step = s + 1;
          job.live_snapshot.sets = sim.checkpoint_sets();
          job.snapshot_requested = false;
        }
        job.reports.push_back(std::move(rep));
        cv_.notify_all();
      }
    }

    ParticleSet result = sim.gather();
    const double ke = sim.kinetic_energy();
    const double pe = sim.potential_energy();
    if (!cfg_.bench_dir.empty()) write_job_bench(job);
    std::lock_guard<std::mutex> lk(mu_);
    job.result = std::move(result);
    job.kinetic = ke;
    job.potential = pe;
    free_slots_ += job.ranks;
    slots_held = false;
    finish_locked(job, wire::JobState::kCompleted, "");
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lk(mu_);
    if (slots_held) free_slots_ += job.ranks;
    finish_locked(job, wire::JobState::kFailed, e.what());
  }
}

void JobServer::write_job_bench(const Job& job) {
  domain::RunInfo info;
  info.ranks = job.ranks;
  info.num_particles = static_cast<std::size_t>(job.n_particles);
  info.theta = job.spec.theta;
  info.transport = "serve";
  info.topology = "none";
  info.cluster = "serve";
  info.balance = "count";
  info.kernel = kernel_backend_name(job.spec.kernel);
  info.async = false;
  const std::string path = cfg_.bench_dir + "/job-" + std::to_string(job.id) + ".json";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "serve: cannot write bench file " << path << "\n";
    return;
  }
  domain::write_step_report_json(info, job.reports, out);
}

}  // namespace bonsai::serve
