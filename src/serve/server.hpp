// Resident job server: the coordinator promoted to a multi-tenant service
// (`bonsai_sim --serve`). Clients speak the wire v6 job protocol over plain
// framed TCP (serve/net.hpp): submit a job spec, poll or block on status,
// cancel, fetch snapshots, scrape metrics.
//
// Structure:
//  * Admission control — a submit is rejected (with a reason naming the
//    limit) when the resident job count would exceed max_concurrent_jobs or
//    the resident particle total would exceed max_resident_particles.
//  * Rank-pool scheduler — the server owns `pool_slots` rank slots; each job
//    runs an in-process lockstep Simulation on its assigned slice (1 thread
//    per rank). Explicit `ranks` requests are honored (clamped to the pool);
//    auto-sized jobs reuse the cost-balance machinery: every resident job
//    weighs in with its particle count, apply_cost_floor() keeps small jobs
//    from collapsing to zero, and the job's share of the pool is its share
//    of the floored weight. Queued work starts in (priority desc, FIFO)
//    order as slots free up.
//  * Preemption — when the best waiting job cannot fit and a strictly
//    lower-priority job is running, the victim is asked to suspend: at its
//    next step boundary it checkpoints to a spool file (the wire Snapshot
//    frame on disk) and releases its slots. Jobs run the lockstep schedule
//    with count balancing, so a resumed job continues bit-for-bit — which is
//    what lets the queue oversubscribe the pool safely.
//  * Per-job isolation — every step's metrics land in the server registry
//    under a {job=N} label, and each completed job can write its own
//    --bench-shaped JSON (bench_dir/job-N.json). Nothing of one job appears
//    under another's label.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "domain/metrics.hpp"
#include "domain/wire.hpp"
#include "serve/net.hpp"

namespace bonsai::serve {

// Pool-slot accounting invariant: 0 <= free <= total, and the running jobs'
// rank counts sum to exactly the slots handed out (total - free). The
// scheduler re-proves this under mu_ after every transition in Debug and
// sanitizer builds; exposed as a free function so tests can probe it
// directly. Throws CheckError on violation.
void check_pool_slots(int pool_slots, int free_slots, std::span<const int> running_ranks);

// Admission and pool limits. Rejection messages name the violated limit.
struct ServerLimits {
  int max_concurrent_jobs = 8;  // resident jobs: queued + running + suspended
  std::uint64_t max_resident_particles = std::uint64_t{1} << 22;
  int pool_slots = 0;  // total rank slots; 0 = hardware_concurrency
};

struct ServerConfig {
  std::uint16_t port = 0;  // 0: ephemeral, read back via port()
  ServerLimits limits;
  std::string spool_dir = ".";  // preemption checkpoints: job-<id>.ckpt
  std::string bench_dir;        // per-job bench JSON: job-<id>.json ("" = off)
};

// Rewrite a metric name to carry a {job=N} label (appended to an existing
// label set, or opening a new one) — the per-job isolation scheme of the
// server registry.
std::string with_job_label(std::string name, int job_id);

// Label every metric in `m` with {job=N}.
metrics::Snapshot label_job_metrics(const metrics::Snapshot& m, int job_id);

// The resident server. Construction binds the listener and starts serving;
// destruction (or shutdown()) stops accepting, cancels unfinished jobs and
// joins every thread. wait_for_shutdown() parks the --serve main thread
// until a client sends a Shutdown frame.
class JobServer {
 public:
  explicit JobServer(const ServerConfig& cfg);
  ~JobServer();
  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }
  int pool_slots() const { return pool_slots_; }

  void wait_for_shutdown();
  void shutdown();

 private:
  struct Job;

  void accept_loop();
  void handle_client(FrameSocket sock);
  domain::wire::JobStatusMsg handle_submit(domain::wire::JobSpec spec);
  domain::wire::JobStatusMsg handle_cancel(std::int32_t job_id);
  domain::wire::JobResultMsg wait_result(std::int32_t job_id);
  domain::wire::SnapshotMsg handle_snapshot(std::int32_t job_id);
  metrics::Snapshot scrape_metrics();

  // Scheduler core; callers hold mu_.
  void schedule_locked();
  void check_pool_locked() const;
  int size_ranks_locked(const Job& job) const;
  domain::wire::JobStatusMsg describe_locked(const Job& job) const;

  // Job runner thread body.
  void run_job(Job& job);
  void finish_locked(Job& job, domain::wire::JobState state, const std::string& reason);
  void write_job_bench(const Job& job);

  ServerConfig cfg_;
  int pool_slots_ = 0;
  Listener listener_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<int, std::unique_ptr<Job>> jobs_;
  int next_job_id_ = 1;
  int free_slots_ = 0;
  bool shutting_down_ = false;
  bool shutdown_requested_ = false;
  // Per-job step metrics, merged under {job=N} labels; server-level counters
  // live in registry_. A scrape merges both.
  metrics::Snapshot job_metrics_;
  metrics::Registry registry_;

  // Runner threads whose job was resumed under a fresh thread: the old
  // handle is parked here for shutdown() to join.
  std::vector<std::thread> retired_;

  std::mutex conn_mu_;
  std::vector<FrameSocket*> conns_;  // live client sockets, for shutdown()
  std::vector<std::thread> handlers_;
  std::thread accept_thread_;
};

}  // namespace bonsai::serve
