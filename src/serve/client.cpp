#include "serve/client.hpp"

#include "serve/net.hpp"

namespace bonsai::serve {

namespace wire = domain::wire;

namespace {

// One round trip: dial, send the request, read the single reply frame.
std::vector<std::uint8_t> round_trip(const std::string& host, std::uint16_t port,
                                     const std::vector<std::uint8_t>& request) {
  FrameSocket sock = dial(host, port);
  sock.send(request);
  return sock.recv();
}

}  // namespace

wire::JobStatusMsg submit_job(const std::string& host, std::uint16_t port,
                              const wire::JobSpec& spec) {
  return wire::decode_job_status(round_trip(host, port, wire::encode_job_submit(spec)));
}

wire::JobStatusMsg job_status(const std::string& host, std::uint16_t port,
                              std::int32_t job_id) {
  wire::JobStatusMsg req;
  req.job_id = job_id;
  req.wait = false;
  return wire::decode_job_status(round_trip(host, port, wire::encode_job_status(req)));
}

wire::JobResultMsg wait_job(const std::string& host, std::uint16_t port,
                            std::int32_t job_id) {
  wire::JobStatusMsg req;
  req.job_id = job_id;
  req.wait = true;
  return wire::decode_job_result(round_trip(host, port, wire::encode_job_status(req)));
}

wire::JobStatusMsg cancel_job(const std::string& host, std::uint16_t port,
                              std::int32_t job_id) {
  return wire::decode_job_status(round_trip(host, port, wire::encode_job_cancel(job_id)));
}

wire::SnapshotMsg fetch_snapshot(const std::string& host, std::uint16_t port,
                                 std::int32_t job_id) {
  wire::SnapshotMsg req;
  req.job_id = job_id;  // empty sets: this is a request, not a payload
  return wire::decode_snapshot(round_trip(host, port, wire::encode_snapshot(req)));
}

metrics::Snapshot fetch_metrics(const std::string& host, std::uint16_t port) {
  return wire::decode_metrics_report(
      round_trip(host, port, wire::encode_metrics_query()));
}

void request_shutdown(const std::string& host, std::uint16_t port) {
  FrameSocket sock = dial(host, port);
  sock.send(wire::encode_shutdown());
}

}  // namespace bonsai::serve
