// Framed stream sockets for the job-server client protocol.
//
// The cluster's SocketTransport multiplexes rank-addressed frames over a
// routed fabric; the job server needs something simpler — a request/response
// stream per client connection — so this layer moves bare wire frames over
// one TCP socket. The 16-byte wire header is self-delimiting (magic, version,
// type, payload length), so no extra routing envelope is needed: the bytes on
// a client link are exactly the bytes wire.cpp encodes, and a received buffer
// is handed to the wire decoders for full validation.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace bonsai::serve {

// Connection-level failure (dial refused, peer vanished mid-frame, ...).
// Byte-level problems inside a received frame stay wire::WireError.
class NetError : public std::runtime_error {
 public:
  explicit NetError(const std::string& what) : std::runtime_error(what) {}
};

// Frames larger than this are refused before any payload allocation — a
// corrupt length field must not drive a multi-gigabyte resize.
inline constexpr std::uint64_t kMaxFrameBytes = std::uint64_t{1} << 30;

// One connected stream socket moving whole wire frames.
class FrameSocket {
 public:
  explicit FrameSocket(int fd) : fd_(fd) {}
  FrameSocket(FrameSocket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  FrameSocket& operator=(FrameSocket&& o) noexcept;
  FrameSocket(const FrameSocket&) = delete;
  FrameSocket& operator=(const FrameSocket&) = delete;
  ~FrameSocket() { close(); }

  // Write one complete frame; throws NetError on a broken connection.
  void send(std::span<const std::uint8_t> frame);

  // Read one complete frame; throws NetError on EOF or a broken connection.
  std::vector<std::uint8_t> recv();

  // Like recv(), but a clean EOF before the first header byte returns
  // nullopt instead of throwing (the way a client ends its session).
  std::optional<std::vector<std::uint8_t>> recv_or_eof();

  // Half-close both directions without releasing the fd. Safe to call from
  // another thread while this socket blocks in recv() — the blocked call
  // sees EOF and returns. (A plain close() from another thread does NOT
  // reliably unblock a pending recv on Linux.)
  void shutdown_rw();

  void close();

 private:
  int fd_ = -1;
};

// Dial HOST:PORT; throws NetError when the connection cannot be established.
FrameSocket dial(const std::string& host, std::uint16_t port);

// Listening socket on localhost. close() (from any thread) unblocks a
// pending accept(), which then returns nullopt.
class Listener {
 public:
  explicit Listener(std::uint16_t port);  // 0: ephemeral
  ~Listener() { close(); }
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  std::uint16_t port() const { return port_; }
  std::optional<FrameSocket> accept();
  void close();

 private:
  // close() is called from a different thread than the accept loop (server
  // shutdown), so the descriptor hands over atomically: close() exchanges it
  // for -1 and is the only side that shuts down / closes the old fd.
  std::atomic<int> fd_{-1};
  std::uint16_t port_ = 0;
};

}  // namespace bonsai::serve
