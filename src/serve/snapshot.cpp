#include "serve/snapshot.hpp"

#include <fstream>
#include <stdexcept>
#include <vector>

namespace bonsai::serve {

void write_snapshot_file(const std::string& path, const domain::wire::SnapshotMsg& snap) {
  const std::vector<std::uint8_t> frame = domain::wire::encode_snapshot(snap);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("snapshot: cannot open for writing: " + path);
  out.write(reinterpret_cast<const char*>(frame.data()),
            static_cast<std::streamsize>(frame.size()));
  out.flush();
  if (!out) throw std::runtime_error("snapshot: write failed: " + path);
}

domain::wire::SnapshotMsg read_snapshot_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("snapshot: cannot open for reading: " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> frame(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(frame.data()), size);
  if (!in) throw std::runtime_error("snapshot: read failed: " + path);
  return domain::wire::decode_snapshot(frame);
}

ParticleSet flatten_snapshot(const domain::wire::SnapshotMsg& snap) {
  ParticleSet out;
  std::size_t total = 0;
  for (const ParticleSet& s : snap.sets) total += s.size();
  out.reserve(total);
  for (const ParticleSet& s : snap.sets) {
    for (std::size_t i = 0; i < s.size(); ++i) {
      out.add(s.get(i));
      out.ax.back() = s.ax[i];
      out.ay.back() = s.ay[i];
      out.az.back() = s.az[i];
      out.pot.back() = s.pot[i];
      out.key.back() = s.key[i];
    }
  }
  return out;
}

}  // namespace bonsai::serve
