// Thin client calls for the job server: each call dials HOST:PORT, sends one
// request frame, reads one reply and returns it decoded. Stateless on
// purpose — the CLI (`bonsai_sim --server HOST:PORT --submit ...`) maps one
// invocation to one call, and CI scripts drive the server the same way.
// Connection failures throw NetError; malformed replies throw wire::WireError.
#pragma once

#include <cstdint>
#include <string>

#include "domain/metrics.hpp"
#include "domain/wire.hpp"

namespace bonsai::serve {

// Submit a job; the reply is kQueued (with the assigned job id) or kRejected
// (with the reason naming the violated limit).
domain::wire::JobStatusMsg submit_job(const std::string& host, std::uint16_t port,
                                      const domain::wire::JobSpec& spec);

// Non-blocking status poll.
domain::wire::JobStatusMsg job_status(const std::string& host, std::uint16_t port,
                                      std::int32_t job_id);

// Block until the job reaches a terminal state; the result carries the final
// particle set (with forces) and energies for a completed job.
domain::wire::JobResultMsg wait_job(const std::string& host, std::uint16_t port,
                                    std::int32_t job_id);

// Request cancellation. A queued or suspended job cancels immediately; a
// running job cancels at its next step boundary (the reply still shows
// kRunning — wait_job() observes the terminal state).
domain::wire::JobStatusMsg cancel_job(const std::string& host, std::uint16_t port,
                                      std::int32_t job_id);

// Fetch the job's current per-rank snapshot: a running job captures at its
// next step boundary, a suspended job replies from its spool checkpoint, a
// completed job replies its result as a single set. Empty sets mean the job
// is unknown or has no particles to show (queued/cancelled/failed).
domain::wire::SnapshotMsg fetch_snapshot(const std::string& host, std::uint16_t port,
                                         std::int32_t job_id);

// Live scrape of the server's metrics registry: per-job labeled step metrics
// plus server.jobs.* counters and server.pool.* gauges.
metrics::Snapshot fetch_metrics(const std::string& host, std::uint16_t port);

// Ask the server to stop serving (wait_for_shutdown() returns on the server
// side). Fire-and-forget: no reply.
void request_shutdown(const std::string& host, std::uint16_t port);

}  // namespace bonsai::serve
