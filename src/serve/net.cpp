#include "serve/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "domain/wire.hpp"

namespace bonsai::serve {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

void write_all(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("serve: send failed");
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

// Read exactly `len` bytes. Returns false on EOF at the first byte when
// `eof_ok`; EOF mid-buffer is always an error (a torn frame).
bool read_all(int fd, std::uint8_t* data, std::size_t len, bool eof_ok) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("serve: recv failed");
    }
    if (n == 0) {
      if (got == 0 && eof_ok) return false;
      throw NetError("serve: connection closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

std::uint64_t header_payload_length(const std::uint8_t* header) {
  std::uint64_t len = 0;
  for (int i = 0; i < 8; ++i)
    len |= static_cast<std::uint64_t>(header[8 + i]) << (8 * i);
  return len;
}

std::uint32_t header_magic(const std::uint8_t* header) {
  std::uint32_t magic = 0;
  for (int i = 0; i < 4; ++i)
    magic |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  return magic;
}

}  // namespace

FrameSocket& FrameSocket::operator=(FrameSocket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void FrameSocket::send(std::span<const std::uint8_t> frame) {
  if (fd_ < 0) throw NetError("serve: send on closed socket");
  write_all(fd_, frame.data(), frame.size());
}

std::vector<std::uint8_t> FrameSocket::recv() {
  std::optional<std::vector<std::uint8_t>> frame = recv_or_eof();
  if (!frame) throw NetError("serve: connection closed before a frame arrived");
  return std::move(*frame);
}

std::optional<std::vector<std::uint8_t>> FrameSocket::recv_or_eof() {
  if (fd_ < 0) throw NetError("serve: recv on closed socket");
  std::vector<std::uint8_t> buf(domain::wire::kHeaderBytes);
  if (!read_all(fd_, buf.data(), buf.size(), /*eof_ok=*/true)) return std::nullopt;
  // Magic and length are checked here so a garbage peer cannot make us
  // allocate or block arbitrarily; everything else (version, type, payload
  // structure) is the wire decoders' job on the complete buffer.
  if (header_magic(buf.data()) != domain::wire::kMagic)
    throw NetError("serve: stream out of sync (bad frame magic)");
  const std::uint64_t payload = header_payload_length(buf.data());
  if (payload > kMaxFrameBytes)
    throw NetError("serve: frame length " + std::to_string(payload) +
                   " exceeds limit " + std::to_string(kMaxFrameBytes));
  buf.resize(domain::wire::kHeaderBytes + static_cast<std::size_t>(payload));
  read_all(fd_, buf.data() + domain::wire::kHeaderBytes,
           static_cast<std::size_t>(payload), /*eof_ok=*/false);
  return buf;
}

void FrameSocket::shutdown_rw() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void FrameSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

FrameSocket dial(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("serve: socket failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw NetError("serve: bad host address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    fail("serve: connect to " + host + ":" + std::to_string(port) + " failed");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return FrameSocket(fd);
}

Listener::Listener(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("serve: socket failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    fail("serve: bind to port " + std::to_string(port) + " failed");
  if (::listen(fd, 64) != 0) fail("serve: listen failed");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    fail("serve: getsockname failed");
  port_ = ntohs(addr.sin_port);
  fd_.store(fd, std::memory_order_release);
}

std::optional<FrameSocket> Listener::accept() {
  while (true) {
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd < 0) return std::nullopt;  // close() won the handover
    const int client = ::accept(fd, nullptr, nullptr);
    if (client >= 0) {
      const int one = 1;
      ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return FrameSocket(client);
    }
    if (errno == EINTR) continue;
    // close() shut the listener down under us: a clean end of serving.
    return std::nullopt;
  }
}

void Listener::close() {
  // Exchange first so exactly one caller owns the old descriptor; shutdown()
  // unblocks a concurrent accept() before the fd number can be recycled.
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

}  // namespace bonsai::serve
