// bench_let: times the incremental LET exchange in isolation — per step, the
// LET build, the full encode, the delta encode (exporter diff against the
// peer's mirrored cache) and the patch-and-validate decode — on a drifting
// Plummer cloud, the steady-state workload the cache is built for. The
// compression ratio printed per step is the wire-byte cost of the cached
// exchange relative to shipping full frames.
//
// Every step also asserts the correctness bar: the patched LET must
// re-encode byte-identically to the fresh full export.
//
// Usage: bench_let [n] [steps]   (default n=16384, steps=12)
#include <cstdlib>
#include <iostream>
#include <vector>

#include "domain/let.hpp"
#include "domain/wire.hpp"
#include "tree/octree.hpp"
#include "util/ic.hpp"
#include "util/timer.hpp"

namespace {

using namespace bonsai;
namespace wire = domain::wire;

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 16384;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 12;
  if (n == 0 || steps <= 0) {
    std::cerr << "usage: bench_let [n] [steps]\n";
    return 2;
  }

  // A drifting cloud: bulk velocity on top of the Plummer dispersion, then a
  // leapfrog-style position update each step. Linear coherent motion is the
  // common case the delta codec's polynomial predictor targets.
  ParticleSet parts = make_plummer(n, 42);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    parts.vx[i] += 0.5;
    parts.vy[i] += 0.25;
  }
  const AABB remote{{4.0, 4.0, 4.0}, {6.0, 6.0, 6.0}};

  std::cout << "bench_let: n=" << n << " steps=" << steps << "\n";

  wire::LetCacheEntry send, recv;
  std::vector<std::uint8_t> scratch;
  double sum_build = 0.0, sum_full = 0.0, sum_delta = 0.0, sum_patch = 0.0;
  std::uint64_t cached_bytes = 0, full_bytes = 0;
  for (int step = 0; step < steps; ++step) {
    for (std::size_t i = 0; i < parts.size(); ++i) {
      parts.x[i] += 1e-3 * parts.vx[i];
      parts.y[i] += 1e-3 * parts.vy[i];
      parts.z[i] += 1e-3 * parts.vz[i];
    }

    WallTimer build_timer;
    const sfc::KeySpace space(parts.bounds());
    sort_by_keys(parts, space);
    Octree tree;
    tree.build(parts);
    tree.compute_properties(parts, 0.5);
    const domain::LetTree let = domain::build_let(tree.view(parts), remote);
    const double t_build = build_timer.elapsed();

    WallTimer full_timer;
    const std::vector<std::uint8_t> full = wire::encode_let({0, let, 0.0, 0});
    const double t_full = full_timer.elapsed();

    WallTimer delta_timer;
    const wire::LetEncodeResult enc =
        wire::encode_let_cached({0, let, 0.0, 0}, send, /*churn_ratio=*/0.75, &scratch);
    const double t_delta = delta_timer.elapsed();

    WallTimer patch_timer;
    const wire::LetMessage msg = wire::decode_let_cached(enc.frame, recv);
    const double t_patch = patch_timer.elapsed();

    // Correctness bar, asserted every step: the patched tree is
    // indistinguishable from the full export on the wire.
    if (wire::encode_let({0, msg.let, 0.0, 0}) != full) {
      std::cerr << "bench_let: FAIL — patched LET differs from the full export "
                   "at step " << step << "\n";
      return 1;
    }

    sum_build += t_build;
    sum_full += t_full;
    sum_delta += t_delta;
    sum_patch += t_patch;
    cached_bytes += enc.frame.size();
    full_bytes += full.size();
    std::cout << "step " << step << ": cells=" << let.num_cells()
              << " parts=" << let.num_particles() << " "
              << (enc.is_delta ? "delta" : "full") << "=" << enc.frame.size()
              << "B vs full=" << full.size() << "B (ratio "
              << static_cast<double>(enc.frame.size()) / static_cast<double>(full.size())
              << ") build=" << t_build * 1e3 << "ms encode_full=" << t_full * 1e3
              << "ms encode_delta=" << t_delta * 1e3 << "ms patch=" << t_patch * 1e3
              << "ms\n";
  }

  std::cout << "totals: build=" << sum_build * 1e3 << "ms encode_full=" << sum_full * 1e3
            << "ms encode_delta=" << sum_delta * 1e3 << "ms patch=" << sum_patch * 1e3
            << "ms wire_ratio="
            << static_cast<double>(cached_bytes) / static_cast<double>(full_bytes)
            << " (cached " << cached_bytes << "B vs full " << full_bytes << "B)\n"
            << "bench_let: PASS (patched == full re-export, every step)\n";
  return 0;
}
